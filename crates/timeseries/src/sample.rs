//! Uniform b-point sampling of accumulated patterns (Algorithm 1, line 6).
//!
//! Both sides of the protocol — the data center when building the WBF and
//! every base station when probing it — must sample the *same* positions, so
//! sampling is a deterministic function of the series length and the sample
//! count `b`. The final point is always included: on an accumulated series it
//! is the maximum, which Algorithm 1 uses for the weight assignment
//! (`w = v_ib / v_ab`).

use crate::accumulate::AccumulatedPattern;
use crate::error::{Result, TimeSeriesError};
use crate::pattern::Pattern;

/// One sampled point: its interval index in the original series and the
/// accumulated value there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplePoint {
    /// Zero-based interval index within the accumulated series.
    pub position: usize,
    /// Accumulated value at that interval.
    pub value: u64,
}

/// The deterministic sample positions for a series of `len` intervals.
///
/// Positions are evenly spaced and always include the final interval; when
/// `b >= len` every interval is returned. Returned positions are strictly
/// increasing.
///
/// # Errors
///
/// Returns [`TimeSeriesError::ZeroSamples`] if `b == 0` and
/// [`TimeSeriesError::Empty`] if `len == 0`.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::sample_positions;
///
/// # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
/// let positions = sample_positions(28, 4)?;
/// assert_eq!(positions, vec![6, 13, 20, 27]);
/// assert_eq!(*positions.last().unwrap(), 27); // final point always sampled
/// # Ok(())
/// # }
/// ```
pub fn sample_positions(len: usize, b: usize) -> Result<Vec<usize>> {
    if b == 0 {
        return Err(TimeSeriesError::ZeroSamples);
    }
    if len == 0 {
        return Err(TimeSeriesError::Empty);
    }
    if b >= len {
        return Ok((0..len).collect());
    }
    // Position of the i-th sample (1-based): ceil(i·len/b) − 1. Evenly
    // spaced, strictly increasing for b < len, and the b-th sample lands on
    // len − 1.
    Ok((1..=b).map(|i| (i * len).div_ceil(b) - 1).collect())
}

/// Accumulates and samples a raw pattern in one fused pass, without
/// materializing the accumulated series or a position list.
///
/// `emit` receives `(sample_index, point)` for each of the `min(b, len)`
/// sampled points in ascending position order — exactly the points
/// `SampledPattern::from_accumulated(&AccumulatedPattern::from_pattern(p)?, b)?`
/// would produce (property-tested), but with zero heap allocations. This is
/// the station-side scan's per-row sampling primitive: one running prefix
/// sum, positions computed on the fly.
///
/// # Errors
///
/// Returns [`TimeSeriesError::ZeroSamples`] if `b == 0`,
/// [`TimeSeriesError::Empty`] if the pattern is empty and
/// [`TimeSeriesError::Overflow`] if the running sum overflows.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::{for_each_sampled_point, Pattern};
///
/// # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
/// let mut seen = Vec::new();
/// for_each_sampled_point(&Pattern::from([1u64, 2, 3, 4]), 2, |i, p| {
///     seen.push((i, p.position, p.value));
/// })?;
/// assert_eq!(seen, vec![(0, 1, 3), (1, 3, 10)]); // accumulated: 1,3,6,10
/// # Ok(())
/// # }
/// ```
pub fn for_each_sampled_point<F>(pattern: &Pattern, b: usize, mut emit: F) -> Result<()>
where
    F: FnMut(usize, SamplePoint),
{
    if b == 0 {
        return Err(TimeSeriesError::ZeroSamples);
    }
    let len = pattern.len();
    if len == 0 {
        return Err(TimeSeriesError::Empty);
    }
    let mut acc = 0u64;
    if b >= len {
        for (position, v) in pattern.iter().enumerate() {
            acc = acc.checked_add(v).ok_or(TimeSeriesError::Overflow)?;
            emit(
                position,
                SamplePoint {
                    position,
                    value: acc,
                },
            );
        }
        return Ok(());
    }
    // Next sample (1-based index i) sits at position ceil(i·len/b) − 1, the
    // same formula as `sample_positions`; the b-th lands on len − 1, so the
    // loop always walks the full series and checks every add for overflow.
    let mut next_index = 1usize;
    let mut next_position = len.div_ceil(b) - 1;
    for (position, v) in pattern.iter().enumerate() {
        acc = acc.checked_add(v).ok_or(TimeSeriesError::Overflow)?;
        if position == next_position {
            emit(
                next_index - 1,
                SamplePoint {
                    position,
                    value: acc,
                },
            );
            next_index += 1;
            if next_index > b {
                debug_assert_eq!(position, len - 1);
                break;
            }
            next_position = (next_index * len).div_ceil(b) - 1;
        }
    }
    Ok(())
}

/// An accumulated pattern reduced to its `b` sampled points.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::{AccumulatedPattern, Pattern, SampledPattern};
///
/// # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
/// let acc = AccumulatedPattern::from_pattern(&Pattern::from([1u64, 2, 3, 4]))?;
/// let sampled = SampledPattern::from_accumulated(&acc, 2)?;
/// assert_eq!(sampled.len(), 2);
/// assert_eq!(sampled.max_value(), 10); // total volume, always sampled
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampledPattern {
    points: Vec<SamplePoint>,
}

impl SampledPattern {
    /// Samples `b` points from an accumulated pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::ZeroSamples`] if `b == 0` and
    /// [`TimeSeriesError::Empty`] if the pattern is empty.
    pub fn from_accumulated(acc: &AccumulatedPattern, b: usize) -> Result<SampledPattern> {
        let positions = sample_positions(acc.len(), b)?;
        let points = positions
            .into_iter()
            .map(|position| SamplePoint {
                position,
                value: acc.get(position).expect("position within length"),
            })
            .collect();
        Ok(SampledPattern { points })
    }

    /// The number of sampled points (`min(b, len)`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points were sampled. Never true for constructed values.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sampled points in increasing position order.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// The value of the final sampled point — the accumulated maximum,
    /// i.e. the pattern's total volume.
    pub fn max_value(&self) -> u64 {
        self.points.last().map(|p| p.value).unwrap_or(0)
    }

    /// Iterates over sampled values only.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.points.iter().map(|p| p.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn acc(values: &[u64]) -> AccumulatedPattern {
        AccumulatedPattern::from_pattern(&Pattern::from(values)).unwrap()
    }

    #[test]
    fn positions_include_last_and_are_increasing() {
        for len in 1..60 {
            for b in 1..20 {
                let pos = sample_positions(len, b).unwrap();
                assert_eq!(*pos.last().unwrap(), len - 1, "len={len} b={b}");
                assert!(pos.windows(2).all(|w| w[1] > w[0]), "len={len} b={b}");
                assert_eq!(pos.len(), b.min(len));
            }
        }
    }

    #[test]
    fn oversampling_returns_every_position() {
        assert_eq!(sample_positions(3, 12).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_samples_rejected() {
        assert_eq!(sample_positions(5, 0), Err(TimeSeriesError::ZeroSamples));
    }

    #[test]
    fn empty_series_rejected() {
        assert_eq!(sample_positions(0, 3), Err(TimeSeriesError::Empty));
    }

    #[test]
    fn sampled_pattern_reads_values_at_positions() {
        let a = acc(&[1, 2, 3, 4]); // accumulated: 1,3,6,10
        let s = SampledPattern::from_accumulated(&a, 2).unwrap();
        assert_eq!(
            s.points(),
            &[
                SamplePoint {
                    position: 1,
                    value: 3
                },
                SamplePoint {
                    position: 3,
                    value: 10
                }
            ]
        );
        assert_eq!(s.max_value(), 10);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![3, 10]);
    }

    #[test]
    fn max_value_equals_pattern_total() {
        let p = Pattern::from([5u64, 0, 7, 2, 9]);
        let a = AccumulatedPattern::from_pattern(&p).unwrap();
        for b in 1..8 {
            let s = SampledPattern::from_accumulated(&a, b).unwrap();
            assert_eq!(Some(s.max_value()), p.total());
        }
    }

    #[test]
    fn fused_pass_matches_two_step_pipeline() {
        // Exhaustive over lengths × sample counts with irregular values: the
        // fused pass must emit exactly the two-step pipeline's points.
        for len in 1..40usize {
            let p: Pattern = (0..len as u64).map(|i| (i * 7 + 3) % 23).collect();
            let a = AccumulatedPattern::from_pattern(&p).unwrap();
            for b in 1..20usize {
                let expected = SampledPattern::from_accumulated(&a, b).unwrap();
                let mut got = Vec::new();
                for_each_sampled_point(&p, b, |i, pt| got.push((i, pt))).unwrap();
                let want: Vec<(usize, SamplePoint)> =
                    expected.points().iter().copied().enumerate().collect();
                assert_eq!(got, want, "len={len} b={b}");
            }
        }
    }

    #[test]
    fn fused_pass_propagates_errors() {
        assert_eq!(
            for_each_sampled_point(&Pattern::from([1u64]), 0, |_, _| {}),
            Err(TimeSeriesError::ZeroSamples)
        );
        assert_eq!(
            for_each_sampled_point(&Pattern::default(), 3, |_, _| {}),
            Err(TimeSeriesError::Empty)
        );
        assert_eq!(
            for_each_sampled_point(&Pattern::from([u64::MAX, 1]), 1, |_, _| {}),
            Err(TimeSeriesError::Overflow)
        );
        // Overflow past the last sampled position is still detected when
        // b >= len (full walk) — and the b < len walk also reaches the end.
        assert_eq!(
            for_each_sampled_point(&Pattern::from([1u64, u64::MAX]), 4, |_, _| {}),
            Err(TimeSeriesError::Overflow)
        );
    }

    #[test]
    fn paper_default_b12_on_weekly_series() {
        // Section V-B fixes b = 12; a one-week series at 6-hour intervals has
        // 28 points.
        let pos = sample_positions(28, 12).unwrap();
        assert_eq!(pos.len(), 12);
        assert_eq!(*pos.last().unwrap(), 27);
    }
}
