//! Time-series pattern model for **DI-matching** (ICDCS 2012 reproduction).
//!
//! This crate implements everything the paper defines over communication
//! pattern time series, independent of filters and networking:
//!
//! * [`Pattern`] — integer per-interval series, with the element-wise
//!   aggregation `Vi = Σj Vi,j` that relates local fragments to a global
//!   pattern, and [`AttributeSeries`] / [`AttributeWeights`] implementing
//!   Definition 1 (weighted mean of calls, duration, partners).
//! * [`AccumulatedPattern`] — the Eq. 3 prefix-sum transform that makes
//!   same-multiset patterns distinguishable and whose final value is the
//!   pattern's total volume.
//! * [`SampledPattern`] / [`sample_positions`] — deterministic uniform
//!   b-point sampling shared by the data center and every base station.
//! * [`eps_match`] — the Eq. 2 per-interval L∞ similarity test, plus
//!   [`chebyshev_distance`] and [`l1_distance`].
//! * [`enumerate_combinations`] — the Eq. 4 subset-sum enumeration of local
//!   patterns.
//! * [`ToleranceMode`] — how the per-interval ε expands into bands over
//!   accumulated samples when populating a filter.
//! * [`stats`] — normalization, Pearson/periodicity scores and CDFs used by
//!   the paper's Figures 1 and 3.
//!
//! # Example
//!
//! ```
//! use dipm_timeseries::{
//!     enumerate_combinations, eps_match, AccumulatedPattern, Pattern,
//! };
//!
//! # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
//! // The paper's running decomposition: locals sum to the global {3,4,5}.
//! let locals = vec![Pattern::from([1u64, 2, 3]), Pattern::from([2u64, 2, 2])];
//! let combos = enumerate_combinations(&locals)?;
//! let global = &combos.last().unwrap().pattern;
//! assert!(eps_match(global, &Pattern::from([3u64, 4, 5]), 0));
//!
//! // Accumulation distinguishes {1,2,3} from {3,2,1}.
//! let acc = AccumulatedPattern::from_pattern(&locals[0])?;
//! assert_eq!(acc.values(), &[1, 3, 6]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod accumulate;
mod attributes;
mod combine;
mod error;
mod pattern;
mod sample;
mod similarity;
pub mod stats;
mod tolerance;

pub use accumulate::AccumulatedPattern;
pub use attributes::{AttributeRecord, AttributeSeries, AttributeWeights};
pub use combine::{combination_count, enumerate_combinations, CombinedPattern, MAX_LOCAL_PATTERNS};
pub use error::{Result, TimeSeriesError};
pub use pattern::Pattern;
pub use sample::{for_each_sampled_point, sample_positions, SamplePoint, SampledPattern};
pub use similarity::{chebyshev_distance, eps_match, l1_distance};
pub use tolerance::{BandValues, ToleranceMode};
