//! Error types for pattern construction and transformation.

use std::error::Error;
use std::fmt;

/// A convenient result alias used throughout [`dipm-timeseries`](crate).
pub type Result<T, E = TimeSeriesError> = std::result::Result<T, E>;

/// Errors produced by pattern construction and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// An operation combined two series of different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A pattern was empty where at least one interval is required.
    Empty,
    /// Accumulation or element-wise addition overflowed `u64`.
    Overflow,
    /// More local patterns were supplied than combination enumeration
    /// supports (the set grows as `2^e − 1`).
    TooManyLocals {
        /// Number of local patterns supplied.
        count: usize,
        /// Maximum supported.
        max: usize,
    },
    /// A value sequence claimed to be accumulated was not monotone
    /// non-decreasing.
    NotMonotone {
        /// Index of the first violation.
        index: usize,
    },
    /// A sampling request asked for zero points.
    ZeroSamples,
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::LengthMismatch { left, right } => {
                write!(f, "series lengths differ: {left} vs {right}")
            }
            TimeSeriesError::Empty => write!(f, "pattern must contain at least one interval"),
            TimeSeriesError::Overflow => write!(f, "series arithmetic overflowed 64 bits"),
            TimeSeriesError::TooManyLocals { count, max } => write!(
                f,
                "combination enumeration over {count} local patterns exceeds the maximum of {max}"
            ),
            TimeSeriesError::NotMonotone { index } => {
                write!(f, "accumulated series decreases at index {index}")
            }
            TimeSeriesError::ZeroSamples => write!(f, "sample count must be non-zero"),
        }
    }
}

impl Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = TimeSeriesError::LengthMismatch { left: 3, right: 5 };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('5'));
        assert!(TimeSeriesError::Overflow.to_string().contains("overflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimeSeriesError>();
    }
}
