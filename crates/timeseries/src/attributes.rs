//! Communication attributes and Definition 1 of the paper.
//!
//! A person's raw communication data within one time interval has three
//! attributes: the number of calls, the total call duration and the number of
//! distinct partners. Definition 1 combines them into a single pattern value
//! as the weighted mean `(1/m) Σ w_f · s_f` with `m = 3`.

use crate::error::{Result, TimeSeriesError};
use crate::pattern::Pattern;

/// Raw communication attributes within one time interval (from CDR records).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeRecord {
    /// Number of calls started in the interval.
    pub calls: u32,
    /// Total call duration in the interval, in seconds.
    pub duration_secs: u32,
    /// Number of distinct communication partners in the interval.
    pub partners: u32,
}

impl AttributeRecord {
    /// Creates a record from its three attributes.
    pub fn new(calls: u32, duration_secs: u32, partners: u32) -> AttributeRecord {
        AttributeRecord {
            calls,
            duration_secs,
            partners,
        }
    }

    /// Merges two records for the same interval observed at different base
    /// stations (calls and duration add; partners add as an upper-bound
    /// approximation since partner sets at distinct stations rarely overlap
    /// within one interval).
    pub fn merge(self, other: AttributeRecord) -> AttributeRecord {
        AttributeRecord {
            calls: self.calls.saturating_add(other.calls),
            duration_secs: self.duration_secs.saturating_add(other.duration_secs),
            partners: self.partners.saturating_add(other.partners),
        }
    }
}

/// Attribute weights `w_f` of Definition 1.
///
/// The paper's experiments take the plain mean of the three attributes
/// ([`AttributeWeights::default`] sets every weight to 1); operators can bias
/// the pattern toward any attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeWeights {
    calls: f64,
    duration: f64,
    partners: f64,
}

impl Default for AttributeWeights {
    fn default() -> Self {
        AttributeWeights {
            calls: 1.0,
            duration: 1.0,
            partners: 1.0,
        }
    }
}

impl AttributeWeights {
    /// Creates explicit weights.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Empty`] if any weight is negative or
    /// non-finite, or if all are zero (the pattern would be identically 0).
    pub fn new(calls: f64, duration: f64, partners: f64) -> Result<AttributeWeights> {
        let ok = |w: f64| w.is_finite() && w >= 0.0;
        if !(ok(calls) && ok(duration) && ok(partners)) || calls + duration + partners == 0.0 {
            return Err(TimeSeriesError::Empty);
        }
        Ok(AttributeWeights {
            calls,
            duration,
            partners,
        })
    }

    /// Applies Definition 1 to one record: `⌊(w_c·c + w_d·d + w_p·p)/3⌉`,
    /// rounded to the nearest integer (the paper works on integer patterns).
    pub fn combine(&self, record: AttributeRecord) -> u64 {
        let raw = (self.calls * record.calls as f64
            + self.duration * record.duration_secs as f64
            + self.partners * record.partners as f64)
            / 3.0;
        raw.round() as u64
    }
}

/// A per-interval attribute series, convertible to a [`Pattern`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeSeries {
    records: Vec<AttributeRecord>,
}

impl AttributeSeries {
    /// Creates a series from per-interval records.
    pub fn new(records: Vec<AttributeRecord>) -> AttributeSeries {
        AttributeSeries { records }
    }

    /// Creates a series of `len` empty intervals.
    pub fn zeros(len: usize) -> AttributeSeries {
        AttributeSeries {
            records: vec![AttributeRecord::default(); len],
        }
    }

    /// The number of intervals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the series has no intervals.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The per-interval records.
    pub fn records(&self) -> &[AttributeRecord] {
        &self.records
    }

    /// Mutable access to one interval's record (used by trace generators).
    pub fn record_mut(&mut self, interval: usize) -> Option<&mut AttributeRecord> {
        self.records.get_mut(interval)
    }

    /// Element-wise merge of two series of equal length (combining station
    /// fragments of the same person).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] if lengths differ.
    pub fn merge(&self, other: &AttributeSeries) -> Result<AttributeSeries> {
        if self.len() != other.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(AttributeSeries {
            records: self
                .records
                .iter()
                .zip(&other.records)
                .map(|(&a, &b)| a.merge(b))
                .collect(),
        })
    }

    /// Applies Definition 1 interval-by-interval, yielding the communication
    /// pattern time series.
    pub fn to_pattern(&self, weights: &AttributeWeights) -> Pattern {
        self.records.iter().map(|&r| weights.combine(r)).collect()
    }
}

impl FromIterator<AttributeRecord> for AttributeSeries {
    fn from_iter<I: IntoIterator<Item = AttributeRecord>>(iter: I) -> AttributeSeries {
        AttributeSeries::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_take_plain_mean() {
        let w = AttributeWeights::default();
        let r = AttributeRecord::new(2, 10, 3);
        assert_eq!(w.combine(r), 5); // (2 + 10 + 3) / 3 = 5
    }

    #[test]
    fn rounding_to_nearest() {
        let w = AttributeWeights::default();
        assert_eq!(w.combine(AttributeRecord::new(1, 1, 2)), 1); // 4/3 → 1
        assert_eq!(w.combine(AttributeRecord::new(1, 2, 2)), 2); // 5/3 → 2
    }

    #[test]
    fn custom_weights_bias_attributes() {
        let w = AttributeWeights::new(3.0, 0.0, 0.0).unwrap();
        assert_eq!(w.combine(AttributeRecord::new(7, 1000, 50)), 7);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(AttributeWeights::new(-1.0, 1.0, 1.0).is_err());
        assert!(AttributeWeights::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(AttributeWeights::new(0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn series_to_pattern() {
        let series = AttributeSeries::new(vec![
            AttributeRecord::new(3, 3, 3),
            AttributeRecord::new(0, 0, 0),
            AttributeRecord::new(6, 3, 0),
        ]);
        let p = series.to_pattern(&AttributeWeights::default());
        assert_eq!(p, Pattern::from([3u64, 0, 3]));
    }

    #[test]
    fn merge_adds_fragments() {
        let a = AttributeSeries::new(vec![AttributeRecord::new(1, 10, 1)]);
        let b = AttributeSeries::new(vec![AttributeRecord::new(2, 20, 2)]);
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.records()[0], AttributeRecord::new(3, 30, 3));
    }

    #[test]
    fn merge_length_mismatch() {
        let a = AttributeSeries::zeros(2);
        let b = AttributeSeries::zeros(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merged_pattern_close_to_summed_patterns() {
        // Definition 1 is linear up to rounding: merging attribute series
        // then converting matches converting then summing, within ±1 per
        // interval from independent rounding.
        let w = AttributeWeights::default();
        let a = AttributeSeries::new(vec![AttributeRecord::new(1, 4, 2)]);
        let b = AttributeSeries::new(vec![AttributeRecord::new(2, 3, 1)]);
        let merged_first = a.merge(&b).unwrap().to_pattern(&w);
        let summed_after = a.to_pattern(&w).checked_add(&b.to_pattern(&w)).unwrap();
        let diff = merged_first.values()[0].abs_diff(summed_after.values()[0]);
        assert!(diff <= 1);
    }

    #[test]
    fn zeros_series() {
        let s = AttributeSeries::zeros(4);
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.to_pattern(&AttributeWeights::default()),
            Pattern::zeros(4)
        );
    }
}
