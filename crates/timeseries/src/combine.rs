//! Combination enumeration over local patterns (Eq. 4 of the paper).
//!
//! A person whose traffic is split over fewer stations than the query's
//! decomposition will hold, at a single station, the element-wise *sum* of
//! several query fragments. Algorithm 1 therefore hashes every non-empty
//! subset-sum of the `e` given local patterns — `Ψ = Σⱼ C(e, j) = 2^e − 1`
//! combined patterns — so that any regrouping of the query decomposition is
//! matchable at a station.

use crate::error::{Result, TimeSeriesError};
use crate::pattern::Pattern;

/// The largest supported number of local patterns; the combination set grows
/// as `2^e − 1`, so `e` is capped to keep construction tractable.
pub const MAX_LOCAL_PATTERNS: usize = 20;

/// A subset-sum of the query's local patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CombinedPattern {
    /// Bitmask over the input local patterns: bit `i` set means local `i`
    /// participates in this combination.
    pub mask: u32,
    /// The element-wise sum of the selected local patterns.
    pub pattern: Pattern,
}

impl CombinedPattern {
    /// The number of local patterns merged into this combination.
    pub fn cardinality(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether this combination is the full set — i.e. the global pattern.
    pub fn is_global(&self, local_count: usize) -> bool {
        self.mask == full_mask(local_count)
    }
}

fn full_mask(local_count: usize) -> u32 {
    if local_count >= 32 {
        u32::MAX
    } else {
        (1u32 << local_count) - 1
    }
}

/// The number of combinations Eq. 4 produces for `e` local patterns.
pub fn combination_count(local_count: usize) -> u64 {
    if local_count >= 64 {
        u64::MAX
    } else {
        (1u64 << local_count) - 1
    }
}

/// Enumerates all `2^e − 1` non-empty subset-sums of `locals`, in ascending
/// mask order (so the final element is always the global pattern).
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] — `locals` is empty.
/// * [`TimeSeriesError::TooManyLocals`] — more than [`MAX_LOCAL_PATTERNS`].
/// * [`TimeSeriesError::LengthMismatch`] — the locals differ in length.
/// * [`TimeSeriesError::Overflow`] — a subset-sum overflows `u64`.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::{enumerate_combinations, Pattern};
///
/// # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
/// let locals = vec![Pattern::from([1u64, 2, 3]), Pattern::from([2u64, 2, 2])];
/// let combos = enumerate_combinations(&locals)?;
/// assert_eq!(combos.len(), 3); // 2^2 − 1
/// assert_eq!(combos[2].pattern, Pattern::from([3u64, 4, 5])); // the global
/// # Ok(())
/// # }
/// ```
pub fn enumerate_combinations(locals: &[Pattern]) -> Result<Vec<CombinedPattern>> {
    if locals.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if locals.len() > MAX_LOCAL_PATTERNS {
        return Err(TimeSeriesError::TooManyLocals {
            count: locals.len(),
            max: MAX_LOCAL_PATTERNS,
        });
    }
    let len = locals[0].len();
    for p in locals {
        if p.len() != len {
            return Err(TimeSeriesError::LengthMismatch {
                left: len,
                right: p.len(),
            });
        }
    }
    let total = combination_count(locals.len());
    let mut out = Vec::with_capacity(total as usize);
    for mask in 1u32..=full_mask(locals.len()) {
        // Reuse the previously computed subset: mask with its lowest bit
        // cleared has already been produced (masks are visited in order).
        let low = mask.trailing_zeros() as usize;
        let rest = mask & (mask - 1);
        let pattern = if rest == 0 {
            locals[low].clone()
        } else {
            let prev = &out[rest as usize - 1] as &CombinedPattern;
            prev.pattern.checked_add(&locals[low])?
        };
        out.push(CombinedPattern { mask, pattern });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locals() -> Vec<Pattern> {
        vec![
            Pattern::from([1u64, 1, 1]),
            Pattern::from([2u64, 2, 0]),
            Pattern::from([0u64, 1, 4]),
        ]
    }

    #[test]
    fn count_matches_eq4() {
        // Ψ = Σ C(l, j) = 2^l − 1.
        assert_eq!(combination_count(1), 1);
        assert_eq!(combination_count(3), 7);
        assert_eq!(combination_count(10), 1023);
        let combos = enumerate_combinations(&locals()).unwrap();
        assert_eq!(combos.len() as u64, combination_count(3));
    }

    #[test]
    fn every_combination_is_correct_subset_sum() {
        let ls = locals();
        let combos = enumerate_combinations(&ls).unwrap();
        for combo in &combos {
            let members: Vec<&Pattern> = (0..3)
                .filter(|i| combo.mask & (1 << i) != 0)
                .map(|i| &ls[i])
                .collect();
            let expect = Pattern::sum(members).unwrap();
            assert_eq!(combo.pattern, expect, "mask {:#b}", combo.mask);
        }
    }

    #[test]
    fn last_combination_is_global() {
        let ls = locals();
        let combos = enumerate_combinations(&ls).unwrap();
        let last = combos.last().unwrap();
        assert!(last.is_global(3));
        assert_eq!(last.pattern, Pattern::from([3u64, 4, 5]));
        assert_eq!(last.cardinality(), 3);
    }

    #[test]
    fn masks_are_unique_and_complete() {
        let combos = enumerate_combinations(&locals()).unwrap();
        let masks: Vec<u32> = combos.iter().map(|c| c.mask).collect();
        assert_eq!(masks, (1..=7).collect::<Vec<u32>>());
    }

    #[test]
    fn singleton_input() {
        let single = vec![Pattern::from([5u64, 5])];
        let combos = enumerate_combinations(&single).unwrap();
        assert_eq!(combos.len(), 1);
        assert!(combos[0].is_global(1));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(enumerate_combinations(&[]), Err(TimeSeriesError::Empty));
    }

    #[test]
    fn too_many_locals_is_error() {
        let many = vec![Pattern::from([1u64]); MAX_LOCAL_PATTERNS + 1];
        assert!(matches!(
            enumerate_combinations(&many),
            Err(TimeSeriesError::TooManyLocals { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_is_error() {
        let bad = vec![Pattern::from([1u64, 2]), Pattern::from([1u64])];
        assert!(matches!(
            enumerate_combinations(&bad),
            Err(TimeSeriesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn overflow_is_error() {
        let bad = vec![Pattern::from([u64::MAX]), Pattern::from([1u64])];
        assert_eq!(enumerate_combinations(&bad), Err(TimeSeriesError::Overflow));
    }
}
