//! The accumulation transform (Eq. 3 of the paper).
//!
//! `f(g) = f(g−1) + V(g)` turns a pattern into its prefix-sum form. The paper
//! motivates three merits (Section IV-A): the form is monotone (so patterns
//! with the same value multiset but different *order* become distinguishable,
//! e.g. `{1,2,3} → {1,3,6}` vs `{3,2,1} → {3,5,6}`), differences between
//! patterns grow along the series, and the final value equals the pattern's
//! total volume, which drives the weight assignment.

use std::fmt;

use crate::error::{Result, TimeSeriesError};
use crate::pattern::Pattern;

/// A pattern in accumulated (prefix-sum) form; monotone non-decreasing by
/// construction.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::{AccumulatedPattern, Pattern};
///
/// # fn main() -> Result<(), dipm_timeseries::TimeSeriesError> {
/// let acc = AccumulatedPattern::from_pattern(&Pattern::from([1u64, 2, 3]))?;
/// assert_eq!(acc.values(), &[1, 3, 6]);
/// assert_eq!(acc.deaccumulate(), Pattern::from([1u64, 2, 3]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccumulatedPattern {
    values: Vec<u64>,
}

impl AccumulatedPattern {
    /// Applies Eq. 3 to a raw pattern.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Overflow`] if the running sum overflows.
    pub fn from_pattern(pattern: &Pattern) -> Result<AccumulatedPattern> {
        let mut values = Vec::with_capacity(pattern.len());
        let mut acc = 0u64;
        for v in pattern.iter() {
            acc = acc.checked_add(v).ok_or(TimeSeriesError::Overflow)?;
            values.push(acc);
        }
        Ok(AccumulatedPattern { values })
    }

    /// Reconstructs an accumulated pattern from already-accumulated values.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::NotMonotone`] if the values ever decrease.
    pub fn from_values(values: Vec<u64>) -> Result<AccumulatedPattern> {
        for (i, pair) in values.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(TimeSeriesError::NotMonotone { index: i + 1 });
            }
        }
        Ok(AccumulatedPattern { values })
    }

    /// Inverts Eq. 3, recovering the original per-interval values.
    pub fn deaccumulate(&self) -> Pattern {
        let mut prev = 0u64;
        self.values
            .iter()
            .map(|&v| {
                let original = v - prev;
                prev = v;
                original
            })
            .collect()
    }

    /// The number of time intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pattern has no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The accumulated values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The value at `interval`, if in range.
    pub fn get(&self, interval: usize) -> Option<u64> {
        self.values.get(interval).copied()
    }

    /// The maximum accumulated value. Because the series is monotone this is
    /// the final point — the pattern's total volume, used as the weight
    /// numerator/denominator in Algorithm 1.
    pub fn max_value(&self) -> Option<u64> {
        self.values.last().copied()
    }

    /// Iterates over accumulated values.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u64>> {
        self.values.iter().copied()
    }
}

impl fmt::Display for AccumulatedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_accumulation() {
        // Section IV-A: {1,2,3} → {1,3,6} and {3,2,1} → {3,5,6}.
        let a = AccumulatedPattern::from_pattern(&Pattern::from([1u64, 2, 3])).unwrap();
        assert_eq!(a.values(), &[1, 3, 6]);
        let b = AccumulatedPattern::from_pattern(&Pattern::from([3u64, 2, 1])).unwrap();
        assert_eq!(b.values(), &[3, 5, 6]);
        // Same multiset, distinguishable after accumulation.
        assert_ne!(a, b);
    }

    #[test]
    fn deaccumulate_is_inverse() {
        let original = Pattern::from([0u64, 5, 0, 2, 7]);
        let acc = AccumulatedPattern::from_pattern(&original).unwrap();
        assert_eq!(acc.deaccumulate(), original);
    }

    #[test]
    fn accumulated_is_monotone() {
        let acc = AccumulatedPattern::from_pattern(&Pattern::from([4u64, 0, 1])).unwrap();
        let vals = acc.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn max_is_last_and_total() {
        let p = Pattern::from([4u64, 3, 2]);
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        assert_eq!(acc.max_value(), Some(9));
        assert_eq!(acc.max_value(), p.total());
    }

    #[test]
    fn overflow_detected() {
        let p = Pattern::from([u64::MAX, 1]);
        assert_eq!(
            AccumulatedPattern::from_pattern(&p),
            Err(TimeSeriesError::Overflow)
        );
    }

    #[test]
    fn from_values_validates_monotonicity() {
        assert!(AccumulatedPattern::from_values(vec![1, 3, 6]).is_ok());
        assert_eq!(
            AccumulatedPattern::from_values(vec![1, 3, 2]),
            Err(TimeSeriesError::NotMonotone { index: 2 })
        );
    }

    #[test]
    fn empty_pattern_accumulates_to_empty() {
        let acc = AccumulatedPattern::from_pattern(&Pattern::default()).unwrap();
        assert!(acc.is_empty());
        assert_eq!(acc.max_value(), None);
        assert_eq!(acc.deaccumulate(), Pattern::default());
    }

    #[test]
    fn accumulation_preserves_length() {
        let p = Pattern::from([1u64; 100]);
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        assert_eq!(acc.len(), 100);
        assert_eq!(acc.get(99), Some(100));
    }
}
