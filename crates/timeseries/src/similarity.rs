//! Pattern similarity (Eq. 2 of the paper).
//!
//! Two patterns match when they have the same length and every per-interval
//! difference is at most `ε` — the L∞ (Chebyshev) test. The paper argues for
//! this metric because mobile communication data is computed per interval and
//! two people are similar only if they are similar in *each* interval.

use crate::pattern::Pattern;

/// Whether `a` and `b` satisfy Eq. 2: equal length and `|aᵗ − bᵗ| ≤ ε` for
/// every interval `t`. With `ε = 0` this is exact equality.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::{eps_match, Pattern};
///
/// let a = Pattern::from([3u64, 4, 5]);
/// let b = Pattern::from([4u64, 3, 5]);
/// assert!(eps_match(&a, &b, 1));
/// assert!(!eps_match(&a, &b, 0));
/// ```
pub fn eps_match(a: &Pattern, b: &Pattern, eps: u64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.abs_diff(y) <= eps)
}

/// The Chebyshev (L∞) distance: the largest per-interval difference, or
/// `None` when the lengths differ.
pub fn chebyshev_distance(a: &Pattern, b: &Pattern) -> Option<u64> {
    if a.len() != b.len() {
        return None;
    }
    Some(
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.abs_diff(y))
            .max()
            .unwrap_or(0),
    )
}

/// The L1 (Manhattan) distance: the summed per-interval differences, or
/// `None` when the lengths differ or the sum overflows. Provided for the
/// paper's "more distance functions" future-work extension.
pub fn l1_distance(a: &Pattern, b: &Pattern) -> Option<u64> {
    if a.len() != b.len() {
        return None;
    }
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.abs_diff(y))
        .try_fold(0u64, |acc, d| acc.checked_add(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_zero_is_equality() {
        let a = Pattern::from([1u64, 2, 3]);
        assert!(eps_match(&a, &a, 0));
        assert!(!eps_match(&a, &Pattern::from([1u64, 2, 4]), 0));
    }

    #[test]
    fn eps_match_is_symmetric() {
        let a = Pattern::from([10u64, 0, 5]);
        let b = Pattern::from([8u64, 2, 6]);
        assert_eq!(eps_match(&a, &b, 2), eps_match(&b, &a, 2));
        assert!(eps_match(&a, &b, 2));
    }

    #[test]
    fn eps_match_requires_every_interval() {
        let a = Pattern::from([0u64, 0, 0]);
        let b = Pattern::from([1u64, 1, 5]);
        assert!(!eps_match(&a, &b, 1)); // last interval differs by 5
        assert!(eps_match(&a, &b, 5));
    }

    #[test]
    fn length_mismatch_never_matches() {
        let a = Pattern::from([1u64, 2]);
        let b = Pattern::from([1u64, 2, 3]);
        assert!(!eps_match(&a, &b, u64::MAX));
        assert_eq!(chebyshev_distance(&a, &b), None);
        assert_eq!(l1_distance(&a, &b), None);
    }

    #[test]
    fn chebyshev_is_max_difference() {
        let a = Pattern::from([3u64, 10, 7]);
        let b = Pattern::from([5u64, 4, 7]);
        assert_eq!(chebyshev_distance(&a, &b), Some(6));
    }

    #[test]
    fn chebyshev_consistent_with_eps_match() {
        let a = Pattern::from([3u64, 10, 7]);
        let b = Pattern::from([5u64, 4, 7]);
        let d = chebyshev_distance(&a, &b).unwrap();
        assert!(eps_match(&a, &b, d));
        assert!(!eps_match(&a, &b, d - 1));
    }

    #[test]
    fn l1_sums_differences() {
        let a = Pattern::from([1u64, 2, 3]);
        let b = Pattern::from([3u64, 2, 1]);
        assert_eq!(l1_distance(&a, &b), Some(4));
    }

    #[test]
    fn empty_patterns_match_trivially() {
        assert!(eps_match(&Pattern::default(), &Pattern::default(), 0));
        assert_eq!(
            chebyshev_distance(&Pattern::default(), &Pattern::default()),
            Some(0)
        );
    }
}
