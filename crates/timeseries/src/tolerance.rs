//! ε-tolerance bands on accumulated samples.
//!
//! Algorithm 1 "hash[es] all the possible approximate values into WBF" so
//! that the data center's filter accepts any pattern within ε of a query
//! pattern. The paper does not spell out how the per-interval tolerance ε
//! translates to *accumulated* values; this module implements the two natural
//! readings:
//!
//! * [`ToleranceMode::Accumulated`] — a pattern within ε per interval drifts
//!   by at most `(g+1)·ε` in the accumulated value at zero-based interval
//!   `g`, so the band at a sampled point widens with its position. This mode
//!   provably admits every truly ε-similar pattern (no false negatives) and
//!   is the default.
//! * [`ToleranceMode::Uniform`] — a constant `±ε` band at every sample.
//!   Cheaper (fewer hashed values, smaller filter) but can miss genuinely
//!   similar patterns whose early deviations compound; provided as an
//!   ablation.

use crate::sample::SamplePoint;

/// How a per-interval tolerance ε expands into bands on accumulated samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ToleranceMode {
    /// Exact band `±(position+1)·ε`: no false negatives (default).
    #[default]
    Accumulated,
    /// Constant band `±ε`: smaller filter, possible false negatives.
    Uniform,
}

impl ToleranceMode {
    /// The half-width of the band at a zero-based sample `position`.
    pub fn band_radius(self, eps: u64, position: usize) -> u64 {
        match self {
            ToleranceMode::Accumulated => eps.saturating_mul(position as u64 + 1),
            ToleranceMode::Uniform => eps,
        }
    }

    /// All accumulated values admitted at `point` for per-interval tolerance
    /// `eps` (inclusive band, clamped at zero).
    pub fn band_values(self, eps: u64, point: SamplePoint) -> BandValues {
        let radius = self.band_radius(eps, point.position);
        let lo = point.value.saturating_sub(radius);
        let hi = point.value.saturating_add(radius);
        BandValues {
            next: lo,
            hi,
            done: false,
        }
    }

    /// The number of values [`ToleranceMode::band_values`] yields at
    /// `position` (band width `2·radius + 1`, ignoring clamping at zero).
    pub fn band_len(self, eps: u64, position: usize) -> u64 {
        2 * self.band_radius(eps, position) + 1
    }
}

/// Iterator over the admitted accumulated values of one tolerance band,
/// created by [`ToleranceMode::band_values`].
#[derive(Debug, Clone)]
pub struct BandValues {
    next: u64,
    hi: u64,
    done: bool,
}

impl Iterator for BandValues {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let value = self.next;
        if self.next == self.hi {
            self.done = true;
        } else {
            self.next += 1;
        }
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            let rem = (self.hi - self.next + 1) as usize;
            (rem, Some(rem))
        }
    }
}

impl ExactSizeIterator for BandValues {}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(position: usize, value: u64) -> SamplePoint {
        SamplePoint { position, value }
    }

    #[test]
    fn accumulated_band_widens_with_position() {
        let mode = ToleranceMode::Accumulated;
        assert_eq!(mode.band_radius(2, 0), 2);
        assert_eq!(mode.band_radius(2, 3), 8);
        assert_eq!(mode.band_len(2, 3), 17);
    }

    #[test]
    fn uniform_band_is_constant() {
        let mode = ToleranceMode::Uniform;
        assert_eq!(mode.band_radius(2, 0), 2);
        assert_eq!(mode.band_radius(2, 100), 2);
    }

    #[test]
    fn band_values_enumerate_inclusive_range() {
        let vals: Vec<u64> = ToleranceMode::Uniform
            .band_values(1, point(5, 10))
            .collect();
        assert_eq!(vals, vec![9, 10, 11]);
    }

    #[test]
    fn band_clamps_at_zero() {
        let vals: Vec<u64> = ToleranceMode::Uniform.band_values(4, point(0, 2)).collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn zero_eps_band_is_exact_value() {
        let vals: Vec<u64> = ToleranceMode::Accumulated
            .band_values(0, point(7, 42))
            .collect();
        assert_eq!(vals, vec![42]);
    }

    #[test]
    fn accumulated_band_admits_worst_case_drift() {
        // A pattern differing by exactly ε at every interval drifts by
        // (g+1)·ε at accumulated index g; the band must contain it.
        let eps = 3u64;
        let base = [10u64, 10, 10, 10];
        let drifted: Vec<u64> = base.iter().map(|v| v + eps).collect();
        let acc = |xs: &[u64]| {
            xs.iter()
                .scan(0u64, |s, &v| {
                    *s += v;
                    Some(*s)
                })
                .collect::<Vec<u64>>()
        };
        let (acc_base, acc_drift) = (acc(&base), acc(&drifted));
        for g in 0..4 {
            let band: Vec<u64> = ToleranceMode::Accumulated
                .band_values(eps, point(g, acc_base[g]))
                .collect();
            assert!(
                band.contains(&acc_drift[g]),
                "interval {g}: drifted value {} outside band",
                acc_drift[g]
            );
        }
    }

    #[test]
    fn exact_size_iterator_contract() {
        let mut it = ToleranceMode::Uniform.band_values(2, point(0, 10));
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn saturating_band_near_u64_max() {
        let vals: Vec<u64> = ToleranceMode::Uniform
            .band_values(2, point(0, u64::MAX - 1))
            .collect();
        assert_eq!(
            vals,
            vec![u64::MAX - 3, u64::MAX - 2, u64::MAX - 1, u64::MAX]
        );
    }
}
