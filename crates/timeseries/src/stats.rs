//! Statistics used by the paper's data analysis (Figures 1 and 3).
//!
//! Figure 1(a) plots category patterns normalized to their mean and observes
//! daily periodicity; Figure 1(b) plots a CDF of local-pattern similarity;
//! Figure 3 shows that accumulation makes category curves divisible. The
//! helpers here compute those normalizations and summary statistics.

use crate::pattern::Pattern;

/// Normalizes a pattern to its mean value: `v_t / mean(v)`, the
/// normalization used in Figure 1(a). Returns an empty vector for an empty
/// or all-zero pattern.
pub fn normalize_to_mean(pattern: &Pattern) -> Vec<f64> {
    if pattern.is_empty() {
        return Vec::new();
    }
    let total: u64 = match pattern.total() {
        Some(t) if t > 0 => t,
        _ => return Vec::new(),
    };
    let mean = total as f64 / pattern.len() as f64;
    pattern.iter().map(|v| v as f64 / mean).collect()
}

/// Pearson correlation between two equal-length slices; `None` when the
/// lengths differ, are < 2, or either side has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

/// Mean Pearson correlation between consecutive windows of length `period`:
/// the paper's Observation 1 ("in each day, the pattern shapes are similar")
/// corresponds to a score near 1 at the daily period.
pub fn periodicity_score(series: &[f64], period: usize) -> Option<f64> {
    if period < 2 || series.len() < 2 * period {
        return None;
    }
    let windows: Vec<&[f64]> = series.chunks_exact(period).collect();
    let mut total = 0.0;
    let mut count = 0usize;
    for pair in windows.windows(2) {
        if let Some(r) = pearson(pair[0], pair[1]) {
            total += r;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

/// An empirical cumulative distribution function over integer observations
/// (Figure 1(b) plots one over "number of similar local patterns").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cdf {
    observations: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from raw observations.
    pub fn from_observations(mut observations: Vec<u64>) -> Cdf {
        observations.sort_unstable();
        Cdf { observations }
    }

    /// The number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the CDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// `P(X ≤ x)`; 0 for an empty CDF.
    pub fn at(&self, x: u64) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        let count = self.observations.partition_point(|&v| v <= x);
        count as f64 / self.observations.len() as f64
    }

    /// `P(X ≥ x)`; 0 for an empty CDF.
    pub fn at_least(&self, x: u64) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        let below = self.observations.partition_point(|&v| v < x);
        1.0 - below as f64 / self.observations.len() as f64
    }

    /// The distinct observed values with their cumulative fractions, for
    /// plotting.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        for &v in &self.observations {
            if out.last().map(|&(x, _)| x) != Some(v) {
                out.push((v, self.at(v)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_to_mean_has_unit_mean() {
        let p = Pattern::from([1u64, 2, 3, 6]);
        let norm = normalize_to_mean(&p);
        let mean: f64 = norm.iter().sum::<f64>() / norm.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_degenerate_patterns() {
        assert!(normalize_to_mean(&Pattern::default()).is_empty());
        assert!(normalize_to_mean(&Pattern::zeros(5)).is_empty());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn periodic_series_scores_high() {
        let day = [0.2, 1.5, 2.0, 0.4];
        let series: Vec<f64> = day.iter().copied().cycle().take(16).collect();
        let score = periodicity_score(&series, 4).unwrap();
        assert!(score > 0.99, "score {score}");
    }

    #[test]
    fn aperiodic_series_scores_low() {
        let series: Vec<f64> = (0..16).map(|i| ((i * 7919) % 13) as f64).collect();
        let score = periodicity_score(&series, 4).unwrap();
        assert!(score < 0.9, "score {score}");
    }

    #[test]
    fn periodicity_needs_two_windows() {
        assert_eq!(periodicity_score(&[1.0; 7], 4), None);
        assert_eq!(periodicity_score(&[1.0; 8], 1), None);
    }

    #[test]
    fn cdf_basic_properties() {
        let cdf = Cdf::from_observations(vec![0, 1, 1, 2, 4]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.at(0) - 0.2).abs() < 1e-12);
        assert!((cdf.at(1) - 0.6).abs() < 1e-12);
        assert!((cdf.at(4) - 1.0).abs() < 1e-12);
        assert!((cdf.at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_least_is_complement() {
        let cdf = Cdf::from_observations(vec![0, 1, 1, 2, 4]);
        // P(X ≥ 1) = 1 − P(X ≤ 0) = 0.8 — the paper's ">90% have at least
        // one similar local pattern" reads off this accessor.
        assert!((cdf.at_least(1) - 0.8).abs() < 1e-12);
        assert!((cdf.at_least(0) - 1.0).abs() < 1e-12);
        assert!((cdf.at_least(5) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::from_observations(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let points = cdf.points();
        assert!(points
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_observations(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(3), 0.0);
        assert_eq!(cdf.at_least(3), 0.0);
        assert!(cdf.points().is_empty());
    }
}
