//! Integer time-series patterns (Definition 1 of the paper).
//!
//! A pattern is one value per time interval: the weighted mean of a person's
//! communication attributes within that interval. All evaluation in the paper
//! uses integer values; decimals are explicitly left as future work, so the
//! model here is `u64` per interval.

use std::fmt;
use std::ops::Index;

use crate::error::{Result, TimeSeriesError};

/// An integer time series: one value per time interval.
///
/// # Examples
///
/// ```
/// use dipm_timeseries::Pattern;
///
/// let p = Pattern::from(vec![1u64, 2, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.total(), Some(6));
/// assert_eq!(p.max_value(), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pattern {
    values: Vec<u64>,
}

impl Pattern {
    /// Creates a pattern from per-interval values.
    pub fn new(values: Vec<u64>) -> Pattern {
        Pattern { values }
    }

    /// Creates a pattern of `len` zero intervals.
    pub fn zeros(len: usize) -> Pattern {
        Pattern {
            values: vec![0; len],
        }
    }

    /// The number of time intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pattern has no intervals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The per-interval values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The value at `interval`, if in range.
    pub fn get(&self, interval: usize) -> Option<u64> {
        self.values.get(interval).copied()
    }

    /// The largest per-interval value, or `None` for an empty pattern.
    pub fn max_value(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }

    /// The sum of all values — a pattern's "total volume", which determines
    /// its weight relative to a global pattern. `None` on overflow.
    pub fn total(&self) -> Option<u64> {
        self.values
            .iter()
            .try_fold(0u64, |acc, &v| acc.checked_add(v))
    }

    /// Element-wise sum with `other` — how local fragments at different base
    /// stations aggregate into a global pattern (`Vi = Σj Vi,j`).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] if lengths differ and
    /// [`TimeSeriesError::Overflow`] if any interval overflows.
    pub fn checked_add(&self, other: &Pattern) -> Result<Pattern> {
        if self.len() != other.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| a.checked_add(b).ok_or(TimeSeriesError::Overflow))
            .collect::<Result<Vec<u64>>>()?;
        Ok(Pattern { values })
    }

    /// Sums a non-empty collection of equal-length patterns element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Empty`] for an empty collection, and
    /// propagates [`Pattern::checked_add`] errors.
    pub fn sum<'a, I>(patterns: I) -> Result<Pattern>
    where
        I: IntoIterator<Item = &'a Pattern>,
    {
        let mut iter = patterns.into_iter();
        let first = iter.next().ok_or(TimeSeriesError::Empty)?;
        let mut acc = first.clone();
        for p in iter {
            acc = acc.checked_add(p)?;
        }
        Ok(acc)
    }

    /// Iterates over per-interval values.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u64>> {
        self.values.iter().copied()
    }

    /// Consumes the pattern, returning its values.
    pub fn into_values(self) -> Vec<u64> {
        self.values
    }
}

impl From<Vec<u64>> for Pattern {
    fn from(values: Vec<u64>) -> Pattern {
        Pattern::new(values)
    }
}

impl From<&[u64]> for Pattern {
    fn from(values: &[u64]) -> Pattern {
        Pattern::new(values.to_vec())
    }
}

impl<const N: usize> From<[u64; N]> for Pattern {
    fn from(values: [u64; N]) -> Pattern {
        Pattern::new(values.to_vec())
    }
}

impl FromIterator<u64> for Pattern {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Pattern {
        Pattern::new(iter.into_iter().collect())
    }
}

impl Extend<u64> for Pattern {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl Index<usize> for Pattern {
    type Output = u64;

    fn index(&self, interval: usize) -> &u64 {
        &self.values[interval]
    }
}

impl<'a> IntoIterator for &'a Pattern {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Pattern::from([3u64, 4, 5]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.get(1), Some(4));
        assert_eq!(p.get(3), None);
        assert_eq!(p[2], 5);
        assert_eq!(p.max_value(), Some(5));
        assert_eq!(p.total(), Some(12));
    }

    #[test]
    fn empty_pattern_behaviour() {
        let p = Pattern::default();
        assert!(p.is_empty());
        assert_eq!(p.max_value(), None);
        assert_eq!(p.total(), Some(0));
    }

    #[test]
    fn paper_running_example_aggregation() {
        // Section III-C: locals {1,1,1}, {2,2,0}, {0,1,4} aggregate to the
        // query global {3,4,5}.
        let locals = [
            Pattern::from([1u64, 1, 1]),
            Pattern::from([2u64, 2, 0]),
            Pattern::from([0u64, 1, 4]),
        ];
        let global = Pattern::sum(&locals).unwrap();
        assert_eq!(global, Pattern::from([3u64, 4, 5]));
    }

    #[test]
    fn paper_counter_example_aggregation() {
        // Section III-C: three stations each holding {3,4,5} aggregate to
        // {9,12,15}, which is *not* the query pattern {3,4,5}.
        let locals = vec![Pattern::from([3u64, 4, 5]); 3];
        let global = Pattern::sum(&locals).unwrap();
        assert_eq!(global, Pattern::from([9u64, 12, 15]));
        assert_ne!(global, Pattern::from([3u64, 4, 5]));
    }

    #[test]
    fn checked_add_length_mismatch() {
        let a = Pattern::from([1u64, 2]);
        let b = Pattern::from([1u64, 2, 3]);
        assert_eq!(
            a.checked_add(&b),
            Err(TimeSeriesError::LengthMismatch { left: 2, right: 3 })
        );
    }

    #[test]
    fn checked_add_overflow() {
        let a = Pattern::from([u64::MAX]);
        let b = Pattern::from([1u64]);
        assert_eq!(a.checked_add(&b), Err(TimeSeriesError::Overflow));
    }

    #[test]
    fn total_overflow_is_none() {
        let p = Pattern::from([u64::MAX, 1]);
        assert_eq!(p.total(), None);
    }

    #[test]
    fn sum_of_empty_collection_is_error() {
        let empty: Vec<Pattern> = vec![];
        assert_eq!(Pattern::sum(&empty), Err(TimeSeriesError::Empty));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Pattern::from([1u64, 2, 3]).to_string(), "{1, 2, 3}");
    }

    #[test]
    fn collect_and_extend() {
        let mut p: Pattern = (1u64..=3).collect();
        p.extend([4u64]);
        assert_eq!(p.values(), &[1, 2, 3, 4]);
        let doubled: Vec<u64> = (&p).into_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }
}
