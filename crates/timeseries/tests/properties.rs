//! Property-based tests for the time-series pattern model.

use dipm_timeseries::{
    chebyshev_distance, enumerate_combinations, eps_match, sample_positions, AccumulatedPattern,
    Pattern, SamplePoint, SampledPattern, ToleranceMode,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_pattern(max_len: usize) -> impl Strategy<Value = Pattern> {
    vec(0u64..10_000, 1..=max_len).prop_map(Pattern::new)
}

proptest! {
    // ---------- accumulation ----------

    #[test]
    fn accumulate_then_deaccumulate_is_identity(p in arb_pattern(64)) {
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        prop_assert_eq!(acc.deaccumulate(), p);
    }

    #[test]
    fn accumulated_is_monotone(p in arb_pattern(64)) {
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        prop_assert!(acc.values().windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn accumulated_max_is_total(p in arb_pattern(64)) {
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        prop_assert_eq!(acc.max_value(), p.total());
    }

    #[test]
    fn accumulation_is_injective(a in arb_pattern(16), b in arb_pattern(16)) {
        let acc_a = AccumulatedPattern::from_pattern(&a).unwrap();
        let acc_b = AccumulatedPattern::from_pattern(&b).unwrap();
        prop_assert_eq!(a == b, acc_a == acc_b);
    }

    // ---------- similarity ----------

    #[test]
    fn eps_match_reflexive(p in arb_pattern(32), eps in 0u64..100) {
        prop_assert!(eps_match(&p, &p, eps));
    }

    #[test]
    fn eps_match_symmetric(a in arb_pattern(16), b in arb_pattern(16), eps in 0u64..100) {
        prop_assert_eq!(eps_match(&a, &b, eps), eps_match(&b, &a, eps));
    }

    #[test]
    fn eps_match_iff_chebyshev_within(a in arb_pattern(16), b in arb_pattern(16), eps in 0u64..10_000) {
        if a.len() == b.len() {
            let d = chebyshev_distance(&a, &b).unwrap();
            prop_assert_eq!(eps_match(&a, &b, eps), d <= eps);
        } else {
            prop_assert!(!eps_match(&a, &b, eps));
        }
    }

    #[test]
    fn eps_match_monotone_in_eps(a in arb_pattern(16), b in arb_pattern(16), eps in 0u64..5_000) {
        if eps_match(&a, &b, eps) {
            prop_assert!(eps_match(&a, &b, eps + 1));
        }
    }

    // ---------- sampling ----------

    #[test]
    fn sample_positions_contract(len in 1usize..500, b in 1usize..40) {
        let pos = sample_positions(len, b).unwrap();
        prop_assert_eq!(pos.len(), b.min(len));
        prop_assert_eq!(*pos.last().unwrap(), len - 1);
        prop_assert!(pos.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(pos.iter().all(|&p| p < len));
    }

    #[test]
    fn sampled_values_come_from_series(p in arb_pattern(64), b in 1usize..20) {
        let acc = AccumulatedPattern::from_pattern(&p).unwrap();
        let s = SampledPattern::from_accumulated(&acc, b).unwrap();
        for SamplePoint { position, value } in s.points().iter().copied() {
            prop_assert_eq!(acc.get(position), Some(value));
        }
        prop_assert_eq!(Some(s.max_value()), p.total());
    }

    // ---------- combinations ----------

    #[test]
    fn combination_enumeration_contract(
        locals in vec(vec(0u64..1000, 4usize..5), 1..8)
    ) {
        let locals: Vec<Pattern> = locals.into_iter().map(Pattern::new).collect();
        let combos = enumerate_combinations(&locals).unwrap();
        prop_assert_eq!(combos.len(), (1usize << locals.len()) - 1);
        // Masks unique.
        let mut masks: Vec<u32> = combos.iter().map(|c| c.mask).collect();
        masks.sort_unstable();
        masks.dedup();
        prop_assert_eq!(masks.len(), combos.len());
        // Every combination is the element-wise subset sum it claims.
        for combo in &combos {
            let members: Vec<&Pattern> = (0..locals.len())
                .filter(|&i| combo.mask & (1 << i) != 0)
                .map(|i| &locals[i])
                .collect();
            let expect = Pattern::sum(members.into_iter()).unwrap();
            prop_assert_eq!(&combo.pattern, &expect);
        }
        // The last combination is the global pattern.
        let global = Pattern::sum(locals.iter()).unwrap();
        prop_assert_eq!(&combos.last().unwrap().pattern, &global);
    }

    // ---------- tolerance ----------

    #[test]
    fn accumulated_band_admits_every_eps_similar_pattern(
        base in vec(0u64..500, 2usize..24),
        deltas in vec(-3i64..=3, 24usize..25),
        b in 1usize..12,
    ) {
        let eps = 3u64;
        let p = Pattern::new(base.clone());
        let q: Pattern = base
            .iter()
            .zip(&deltas)
            .map(|(&v, &d)| v.saturating_add_signed(d))
            .collect();
        prop_assume!(eps_match(&p, &q, eps));

        let acc_p = AccumulatedPattern::from_pattern(&p).unwrap();
        let acc_q = AccumulatedPattern::from_pattern(&q).unwrap();
        let sp = SampledPattern::from_accumulated(&acc_p, b).unwrap();
        let sq = SampledPattern::from_accumulated(&acc_q, b).unwrap();
        // Same positions, and every sampled q value lies inside p's band.
        for (pp, qq) in sp.points().iter().zip(sq.points()) {
            prop_assert_eq!(pp.position, qq.position);
            let band: Vec<u64> = ToleranceMode::Accumulated
                .band_values(eps, *pp)
                .collect();
            prop_assert!(band.contains(&qq.value));
        }
    }

    #[test]
    fn band_values_match_band_len(
        eps in 0u64..6,
        position in 0usize..30,
        value in 1000u64..2000,
    ) {
        let mode = ToleranceMode::Accumulated;
        let point = SamplePoint { position, value };
        let count = mode.band_values(eps, point).count() as u64;
        prop_assert_eq!(count, mode.band_len(eps, position));
    }
}
