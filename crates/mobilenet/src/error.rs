//! Error types for trace generation.

use std::error::Error;
use std::fmt;

/// A convenient result alias used throughout [`dipm-mobilenet`](crate).
pub type Result<T, E = MobileNetError> = std::result::Result<T, E>;

/// Errors produced by trace configuration and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MobileNetError {
    /// The trace configuration was rejected.
    InvalidConfig {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// A lookup referenced a user or station absent from the dataset.
    UnknownId {
        /// Description of the missing identifier.
        what: String,
    },
}

impl MobileNetError {
    pub(crate) fn invalid_config(reason: impl Into<String>) -> Self {
        MobileNetError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MobileNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobileNetError::InvalidConfig { reason } => {
                write!(f, "invalid trace configuration: {reason}")
            }
            MobileNetError::UnknownId { what } => write!(f, "unknown identifier: {what}"),
        }
    }
}

impl Error for MobileNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MobileNetError::invalid_config("need at least 3 stations");
        assert!(err.to_string().contains("3 stations"));
    }
}
