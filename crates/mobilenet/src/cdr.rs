//! Call Detail Records and Cell Detail List entries.
//!
//! The paper's raw inputs (Section V-A): CDR rows carry the caller, callee,
//! call type, start moment and duration, recorded at the serving base
//! station; CDL rows map stations to physical locations. The trace generator
//! can emit these raw rows, and [`records_to_series`] folds them into the
//! per-interval [`AttributeSeries`] that Definition 1 consumes.

use std::collections::{BTreeSet, HashMap};

use dipm_timeseries::AttributeSeries;

use crate::ids::{StationId, UserId};

/// The call direction recorded in a CDR row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CallType {
    /// The recorded phone originated the call.
    Outgoing,
    /// The recorded phone received the call.
    Incoming,
}

/// One Call Detail Record row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CdrRecord {
    /// The phone whose traffic this row records.
    pub phone: UserId,
    /// The direction of the call.
    pub call_type: CallType,
    /// The opposite party.
    pub peer: UserId,
    /// The serving base station.
    pub station: StationId,
    /// Zero-based time interval in which the call started.
    pub interval: u32,
    /// Call duration in seconds.
    pub duration_secs: u32,
}

/// One Cell Detail List row: a station and its planar location.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CdlRecord {
    /// The station this row describes.
    pub station: StationId,
    /// Easting coordinate, km.
    pub x: f64,
    /// Northing coordinate, km.
    pub y: f64,
}

/// Folds raw CDR rows into one [`AttributeSeries`] per `(user, station)`
/// pair, counting calls, total duration and *distinct* partners per interval
/// — exactly the three attributes of Definition 1.
///
/// `intervals` fixes the series length; rows whose interval falls outside
/// `0..intervals` are ignored.
pub fn records_to_series(
    records: &[CdrRecord],
    intervals: usize,
) -> HashMap<(UserId, StationId), AttributeSeries> {
    let mut partners: HashMap<(UserId, StationId), Vec<BTreeSet<UserId>>> = HashMap::new();
    let mut series: HashMap<(UserId, StationId), AttributeSeries> = HashMap::new();
    for record in records {
        let interval = record.interval as usize;
        if interval >= intervals {
            continue;
        }
        let key = (record.phone, record.station);
        let entry = series
            .entry(key)
            .or_insert_with(|| AttributeSeries::zeros(intervals));
        let slot = entry
            .record_mut(interval)
            .expect("interval bounded by series length");
        slot.calls += 1;
        slot.duration_secs = slot.duration_secs.saturating_add(record.duration_secs);
        let partner_sets = partners
            .entry(key)
            .or_insert_with(|| vec![BTreeSet::new(); intervals]);
        if partner_sets[interval].insert(record.peer) {
            slot.partners += 1;
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(phone: u64, peer: u64, station: u32, interval: u32, secs: u32) -> CdrRecord {
        CdrRecord {
            phone: UserId(phone),
            call_type: CallType::Outgoing,
            peer: UserId(peer),
            station: StationId(station),
            interval,
            duration_secs: secs,
        }
    }

    #[test]
    fn counts_calls_duration_and_distinct_partners() {
        let rows = vec![
            row(1, 100, 5, 0, 60),
            row(1, 100, 5, 0, 30), // same partner, same interval
            row(1, 200, 5, 0, 10), // second distinct partner
            row(1, 100, 5, 1, 20), // next interval: partner counts anew
        ];
        let series = records_to_series(&rows, 4);
        let s = &series[&(UserId(1), StationId(5))];
        let r0 = s.records()[0];
        assert_eq!(r0.calls, 3);
        assert_eq!(r0.duration_secs, 100);
        assert_eq!(r0.partners, 2);
        let r1 = s.records()[1];
        assert_eq!(r1.calls, 1);
        assert_eq!(r1.partners, 1);
    }

    #[test]
    fn splits_by_user_and_station() {
        let rows = vec![
            row(1, 9, 5, 0, 60),
            row(1, 9, 6, 0, 60),
            row(2, 9, 5, 0, 60),
        ];
        let series = records_to_series(&rows, 1);
        assert_eq!(series.len(), 3);
    }

    #[test]
    fn out_of_range_intervals_ignored() {
        let rows = vec![row(1, 9, 5, 10, 60)];
        let series = records_to_series(&rows, 4);
        assert!(series.is_empty());
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(records_to_series(&[], 8).is_empty());
    }
}
