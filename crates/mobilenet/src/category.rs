//! Population categories and their daily communication profiles.
//!
//! The paper classifies its 310 surveyed persons into six occupation-based
//! categories whose members "have the similar communication patterns"
//! (Section V-A), and observes that category curves are daily-periodic and
//! divisible (Observation 1, Figures 1(a) and 3). This module defines six
//! synthetic stand-ins with distinct hourly curves and mobility habits,
//! calibrated to reproduce those statistical properties.

use std::fmt;

use dipm_timeseries::Pattern;

use crate::ids::StationId;

/// The six population categories of the paper's Dataset 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Category {
    /// Daytime office commuter: morning/evening call peaks, work-hour plateau.
    OfficeWorker,
    /// University student: late-morning start, evening-heavy traffic.
    Student,
    /// Night-shift worker: inverted day, peaks around midnight.
    NightShift,
    /// Retiree: mild mid-morning and late-afternoon activity near home.
    Retiree,
    /// Field salesperson: heavy all-day traffic from changing locations.
    Salesperson,
    /// Shop/service worker: steady daytime traffic at one work location.
    ServiceWorker,
}

impl Category {
    /// All six categories, in a stable order.
    pub const ALL: [Category; 6] = [
        Category::OfficeWorker,
        Category::Student,
        Category::NightShift,
        Category::Retiree,
        Category::Salesperson,
        Category::ServiceWorker,
    ];

    /// A stable small integer index (0..6).
    pub fn index(self) -> usize {
        Category::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category present in ALL")
    }

    /// The category's communication and mobility profile.
    pub fn profile(self) -> &'static CategoryProfile {
        &PROFILES[self.index()]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::OfficeWorker => "office-worker",
            Category::Student => "student",
            Category::NightShift => "night-shift",
            Category::Retiree => "retiree",
            Category::Salesperson => "salesperson",
            Category::ServiceWorker => "service-worker",
        };
        f.write_str(name)
    }
}

/// Where a user is (and therefore which base station records their traffic)
/// during a given hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StationRole {
    /// The user's residential cell.
    Home,
    /// The user's workplace cell.
    Work,
    /// A third frequented cell (shopping, commute hub, campus…).
    Other,
}

impl StationRole {
    /// Resolves the role to a concrete station for one user.
    pub fn station(self, home: StationId, work: StationId, other: StationId) -> StationId {
        match self {
            StationRole::Home => home,
            StationRole::Work => work,
            StationRole::Other => other,
        }
    }
}

/// Expected communication attributes within one hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlyRates {
    /// Expected number of calls.
    pub calls: f64,
    /// Expected total call duration, in minutes.
    pub duration_mins: f64,
    /// Expected number of distinct partners.
    pub partners: f64,
}

/// A category's daily behaviour: hourly attribute rates and hourly location.
#[derive(Debug, Clone)]
pub struct CategoryProfile {
    /// Base intensity multiplier applied to the hourly shape, per attribute.
    calls_scale: f64,
    duration_scale: f64,
    partners_scale: f64,
    /// 24 relative intensities, one per hour of day.
    shape: [f64; 24],
    /// 24 locations, one per hour of day.
    location: [StationRole; 24],
}

impl CategoryProfile {
    /// Expected attribute rates in the given hour of day (0..24).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn rates(&self, hour: usize) -> HourlyRates {
        assert!(hour < 24, "hour of day out of range");
        let intensity = self.shape[hour];
        HourlyRates {
            calls: self.calls_scale * intensity,
            duration_mins: self.duration_scale * intensity,
            partners: self.partners_scale * intensity,
        }
    }

    /// Where a member of this category is during the given hour of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn location(&self, hour: usize) -> StationRole {
        assert!(hour < 24, "hour of day out of range");
        self.location[hour]
    }

    /// The deterministic (noise-free) expected pattern over `days` days at
    /// `intervals_per_day` resolution — the curves plotted in Figures 1(a)
    /// and 3.
    pub fn expected_pattern(&self, days: usize, intervals_per_day: usize) -> Pattern {
        (0..days * intervals_per_day)
            .map(|g| self.expected_interval_value(g % intervals_per_day, intervals_per_day))
            .collect()
    }

    /// The expected Definition-1 pattern value for one interval of the day.
    pub fn expected_interval_value(&self, interval_of_day: usize, intervals_per_day: usize) -> u64 {
        let r = self.expected_interval_rates(interval_of_day, intervals_per_day);
        ((r.calls + r.duration_mins + r.partners) / 3.0).round() as u64
    }

    /// The expected attribute totals over one interval of the day, obtained
    /// by integrating the hourly rates across the interval's hour span.
    pub fn expected_interval_rates(
        &self,
        interval_of_day: usize,
        intervals_per_day: usize,
    ) -> HourlyRates {
        let start = interval_of_day as f64 * 24.0 / intervals_per_day as f64;
        let end = (interval_of_day + 1) as f64 * 24.0 / intervals_per_day as f64;
        let mut total = HourlyRates {
            calls: 0.0,
            duration_mins: 0.0,
            partners: 0.0,
        };
        let mut hour = start;
        while hour < end - 1e-9 {
            let idx = (hour.floor() as usize) % 24;
            let span = (hour.floor() + 1.0).min(end) - hour;
            let r = self.rates(idx);
            total.calls += r.calls * span;
            total.duration_mins += r.duration_mins * span;
            total.partners += r.partners * span;
            hour = hour.floor() + 1.0;
        }
        total
    }

    /// Where a member of this category spends the given interval of the day
    /// (the location at the interval's starting hour; the trace generator
    /// books the whole interval's traffic to one station).
    pub fn interval_role(&self, interval_of_day: usize, intervals_per_day: usize) -> StationRole {
        let start_hour = (interval_of_day * 24 / intervals_per_day) % 24;
        self.location(start_hour)
    }
}

const H: StationRole = StationRole::Home;
const W: StationRole = StationRole::Work;
const O: StationRole = StationRole::Other;

static PROFILES: [CategoryProfile; 6] = [
    // OfficeWorker: commute spikes at 8 and 18, plateau at work.
    CategoryProfile {
        calls_scale: 15.0,
        duration_scale: 45.0,
        partners_scale: 11.25,
        shape: [
            0.1, 0.05, 0.05, 0.05, 0.05, 0.1, 0.3, 0.8, 1.4, 1.0, 0.9, 1.0, //
            1.2, 1.0, 0.9, 0.9, 1.0, 1.3, 1.5, 1.0, 0.8, 0.6, 0.4, 0.2,
        ],
        location: [
            H, H, H, H, H, H, H, O, W, W, W, W, //
            W, W, W, W, W, W, O, H, H, H, H, H,
        ],
    },
    // Student: slow morning, strong evening.
    CategoryProfile {
        calls_scale: 19.5,
        duration_scale: 30.0,
        partners_scale: 16.5,
        shape: [
            0.3, 0.15, 0.1, 0.05, 0.05, 0.05, 0.1, 0.3, 0.6, 0.8, 0.9, 1.0, //
            1.1, 1.0, 0.9, 1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 1.6, 1.2, 0.7,
        ],
        location: [
            H, H, H, H, H, H, H, H, W, W, W, W, //
            O, W, W, W, W, O, O, H, H, H, H, H,
        ],
    },
    // NightShift: inverted day.
    CategoryProfile {
        calls_scale: 13.5,
        duration_scale: 37.5,
        partners_scale: 9.0,
        shape: [
            1.3, 1.2, 1.1, 1.0, 0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.1, 0.1, //
            0.2, 0.3, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0, 1.1, 1.2, 1.3,
        ],
        location: [
            W, W, W, W, W, W, O, H, H, H, H, H, //
            H, H, H, H, O, O, H, H, O, W, W, W,
        ],
    },
    // Retiree: gentle bimodal day, mostly home.
    CategoryProfile {
        calls_scale: 9.0,
        duration_scale: 52.5,
        partners_scale: 6.0,
        shape: [
            0.05, 0.05, 0.05, 0.05, 0.05, 0.1, 0.3, 0.6, 0.9, 1.1, 1.2, 1.0, //
            0.8, 0.7, 0.8, 1.0, 1.2, 1.1, 0.9, 0.7, 0.5, 0.3, 0.15, 0.1,
        ],
        location: [
            H, H, H, H, H, H, H, H, H, O, O, H, //
            H, H, H, O, O, H, H, H, H, H, H, H,
        ],
    },
    // Salesperson: heavy, flat daytime traffic, frequent movement.
    CategoryProfile {
        calls_scale: 30.0,
        duration_scale: 60.0,
        partners_scale: 26.25,
        shape: [
            0.1, 0.05, 0.05, 0.05, 0.05, 0.1, 0.4, 0.9, 1.2, 1.3, 1.3, 1.3, //
            1.2, 1.3, 1.3, 1.3, 1.3, 1.2, 1.1, 0.9, 0.7, 0.5, 0.3, 0.2,
        ],
        location: [
            H, H, H, H, H, H, H, O, W, O, W, O, //
            W, O, W, O, W, O, O, H, H, H, H, H,
        ],
    },
    // ServiceWorker: steady at shop from 10 to 20.
    CategoryProfile {
        calls_scale: 11.25,
        duration_scale: 26.25,
        partners_scale: 7.5,
        shape: [
            0.1, 0.05, 0.05, 0.05, 0.05, 0.05, 0.2, 0.4, 0.7, 0.9, 1.0, 1.0, //
            1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.9, 0.7, 0.5, 0.3, 0.2,
        ],
        location: [
            H, H, H, H, H, H, H, H, O, W, W, W, //
            W, W, W, W, W, W, W, W, O, H, H, H,
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use dipm_timeseries::stats::{normalize_to_mean, periodicity_score};

    #[test]
    fn six_categories_with_stable_indices() {
        assert_eq!(Category::ALL.len(), 6);
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Category::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn rates_are_nonnegative_every_hour() {
        for c in Category::ALL {
            for hour in 0..24 {
                let r = c.profile().rates(hour);
                assert!(r.calls >= 0.0 && r.duration_mins >= 0.0 && r.partners >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hour_out_of_range_panics() {
        Category::OfficeWorker.profile().rates(24);
    }

    #[test]
    fn expected_patterns_are_daily_periodic() {
        // Observation 1 / Figure 1(a): at 6-hour resolution over 2 days the
        // normalized curves repeat daily.
        for c in Category::ALL {
            let p = c.profile().expected_pattern(2, 4);
            assert_eq!(p.len(), 8);
            let norm = normalize_to_mean(&p);
            let score = periodicity_score(&norm, 4).unwrap();
            assert!(score > 0.99, "{c}: periodicity {score}");
        }
    }

    #[test]
    fn categories_are_divisible_after_accumulation() {
        // Figure 3: weekly accumulated curves of different categories
        // separate. Check the totals are pairwise distinct by a margin.
        let totals: Vec<u64> = Category::ALL
            .iter()
            .map(|c| c.profile().expected_pattern(7, 4).total().unwrap())
            .collect();
        for i in 0..totals.len() {
            for j in (i + 1)..totals.len() {
                let (a, b) = (totals[i] as f64, totals[j] as f64);
                let rel = (a - b).abs() / a.max(b);
                assert!(rel > 0.02, "categories {i} and {j} too close: {a} vs {b}");
            }
        }
    }

    #[test]
    fn every_category_uses_home_and_work() {
        for c in Category::ALL {
            let profile = c.profile();
            let roles: std::collections::HashSet<_> =
                (0..24).map(|h| profile.location(h)).collect();
            assert!(roles.contains(&StationRole::Home), "{c} never home");
            assert!(roles.len() >= 2, "{c} never moves");
        }
    }

    #[test]
    fn station_role_resolution() {
        let (h, w, o) = (StationId(1), StationId(2), StationId(3));
        assert_eq!(StationRole::Home.station(h, w, o), h);
        assert_eq!(StationRole::Work.station(h, w, o), w);
        assert_eq!(StationRole::Other.station(h, w, o), o);
    }

    #[test]
    fn interval_value_integrates_hours() {
        // At 4 intervals/day each interval spans 6 hours; the value must be
        // the mean-of-attributes integral over those hours.
        let p = Category::OfficeWorker.profile();
        let v = p.expected_interval_value(2, 4); // hours 12..18
        let mut calls = 0.0;
        let mut dur = 0.0;
        let mut par = 0.0;
        for h in 12..18 {
            let r = p.rates(h);
            calls += r.calls;
            dur += r.duration_mins;
            par += r.partners;
        }
        assert_eq!(v, ((calls + dur + par) / 3.0).round() as u64);
    }
}
