//! Seeded synthetic trace generation.
//!
//! Stands in for the paper's proprietary city-scale CDR corpus (Section II-A:
//! 3.6 M users, 5120 stations, one year). The generator reproduces the three
//! statistical properties the evaluation depends on — daily-periodic category
//! curves (Observation 1), category-correlated station splits that yield
//! "similar global ⇒ similar local" behaviour (Observation 2), and
//! integer-valued per-interval attributes — at laptop scale, deterministically
//! from a seed.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dipm_timeseries::{AttributeRecord, AttributeSeries};

use crate::category::Category;
use crate::dataset::Dataset;
use crate::error::{MobileNetError, Result};
use crate::ids::{StationId, UserId};
use crate::user::UserSpec;

/// Upper bound on `days * intervals_per_day`, to keep traces laptop-sized.
pub const MAX_INTERVALS: usize = 4096;

/// Configuration for one synthetic trace (builder style).
///
/// # Examples
///
/// ```
/// use dipm_mobilenet::TraceConfig;
///
/// # fn main() -> Result<(), dipm_mobilenet::MobileNetError> {
/// let dataset = TraceConfig::new(120, 8)
///     .days(2)
///     .intervals_per_day(8)
///     .noise(1)
///     .seed(42)
///     .generate()?;
/// assert_eq!(dataset.users().len(), 120);
/// assert_eq!(dataset.intervals(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    users: usize,
    stations: u32,
    days: usize,
    intervals_per_day: usize,
    noise: u32,
    seed: u64,
}

impl TraceConfig {
    /// Starts a configuration for `users` phones over `stations` cells.
    pub fn new(users: usize, stations: u32) -> TraceConfig {
        TraceConfig {
            users,
            stations,
            days: 2,
            intervals_per_day: 8,
            noise: 1,
            seed: 0,
        }
    }

    /// Sets the number of simulated days (default 2).
    pub fn days(&mut self, days: usize) -> &mut TraceConfig {
        self.days = days;
        self
    }

    /// Sets the number of intervals per day (default 8, i.e. 3-hour slots).
    pub fn intervals_per_day(&mut self, intervals_per_day: usize) -> &mut TraceConfig {
        self.intervals_per_day = intervals_per_day;
        self
    }

    /// Sets the per-attribute integer jitter amplitude (default 1): each
    /// attribute deviates from its category expectation by a uniform integer
    /// in `[-noise, +noise]`.
    pub fn noise(&mut self, noise: u32) -> &mut TraceConfig {
        self.noise = noise;
        self
    }

    /// Sets the master seed (default 0); equal seeds give identical traces.
    pub fn seed(&mut self, seed: u64) -> &mut TraceConfig {
        self.seed = seed;
        self
    }

    /// The total number of time intervals this configuration spans.
    pub fn intervals(&self) -> usize {
        self.days * self.intervals_per_day
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MobileNetError::InvalidConfig`] when there are no users,
    /// fewer than 3 stations (a routine needs distinct home/work/other
    /// candidates), a zero day/interval count, or more than
    /// [`MAX_INTERVALS`] total intervals.
    pub fn generate(&self) -> Result<Dataset> {
        self.validate()?;
        let intervals = self.intervals();
        let mut users = Vec::with_capacity(self.users);
        let mut series: BTreeMap<StationId, BTreeMap<UserId, AttributeSeries>> = BTreeMap::new();

        for i in 0..self.users {
            let id = UserId(i as u64);
            let category = Category::ALL[i % Category::ALL.len()];
            // Independent per-user stream so traces are insensitive to user
            // iteration order and to other users' parameters.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let spec = self.assign_stations(id, category, &mut rng);
            users.push(spec);
            self.generate_user_traffic(&spec, &mut rng, intervals, &mut series);
        }
        Ok(Dataset::from_parts(
            users,
            (0..self.stations).map(StationId).collect(),
            series,
            intervals,
            self.intervals_per_day,
        ))
    }

    fn validate(&self) -> Result<()> {
        if self.users == 0 {
            return Err(MobileNetError::invalid_config("at least one user required"));
        }
        if self.stations < 3 {
            return Err(MobileNetError::invalid_config(
                "at least 3 stations required for home/work/other assignment",
            ));
        }
        if self.days == 0 || self.intervals_per_day == 0 {
            return Err(MobileNetError::invalid_config(
                "days and intervals per day must be non-zero",
            ));
        }
        if self.intervals() > MAX_INTERVALS {
            return Err(MobileNetError::invalid_config(format!(
                "trace spans {} intervals, above the maximum of {MAX_INTERVALS}",
                self.intervals()
            )));
        }
        Ok(())
    }

    fn assign_stations(&self, id: UserId, category: Category, rng: &mut StdRng) -> UserSpec {
        let home = StationId(rng.gen_range(0..self.stations));
        let work = loop {
            let s = StationId(rng.gen_range(0..self.stations));
            if s != home {
                break s;
            }
        };
        let other = loop {
            let s = StationId(rng.gen_range(0..self.stations));
            if s != home && s != work {
                break s;
            }
        };
        UserSpec {
            id,
            category,
            home,
            work,
            other,
        }
    }

    fn generate_user_traffic(
        &self,
        spec: &UserSpec,
        rng: &mut StdRng,
        intervals: usize,
        series: &mut BTreeMap<StationId, BTreeMap<UserId, AttributeSeries>>,
    ) {
        let profile = spec.category.profile();
        for g in 0..intervals {
            let interval_of_day = g % self.intervals_per_day;
            let role = profile.interval_role(interval_of_day, self.intervals_per_day);
            let station = role.station(spec.home, spec.work, spec.other);
            let rates = profile.expected_interval_rates(interval_of_day, self.intervals_per_day);

            let jitter = |rng: &mut StdRng| -> i64 {
                if self.noise == 0 {
                    0
                } else {
                    rng.gen_range(-(self.noise as i64)..=self.noise as i64)
                }
            };
            let calls = (rates.calls.round() as i64 + jitter(rng)).max(0) as u32;
            // Duration covers incoming traffic too, so it does not collapse
            // when outgoing calls jitter to zero; partners never exceed the
            // interval's call count.
            let duration = (rates.duration_mins.round() as i64 + jitter(rng)).max(0) as u32;
            let partners = ((rates.partners.round() as i64 + jitter(rng)).max(0) as u32).min(calls);

            let record = AttributeRecord::new(calls, duration, partners);
            let station_entry = series.entry(station).or_default();
            let user_series = station_entry
                .entry(spec.id)
                .or_insert_with(|| AttributeSeries::zeros(intervals));
            *user_series
                .record_mut(g)
                .expect("interval within series length") = record;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        TraceConfig::new(24, 6).seed(7).generate().unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceConfig::new(30, 5).seed(99).generate().unwrap();
        let b = TraceConfig::new(30, 5).seed(99).generate().unwrap();
        for user in a.users() {
            assert_eq!(a.global(user.id), b.global(user.id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceConfig::new(30, 5).seed(1).generate().unwrap();
        let b = TraceConfig::new(30, 5).seed(2).generate().unwrap();
        let same = a
            .users()
            .iter()
            .filter(|u| a.global(u.id) == b.global(u.id))
            .count();
        assert!(same < a.users().len(), "all users identical across seeds");
    }

    #[test]
    fn users_are_balanced_across_categories() {
        let d = tiny();
        for c in Category::ALL {
            let n = d.users().iter().filter(|u| u.category == c).count();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn home_work_other_are_distinct() {
        let d = tiny();
        for u in d.users() {
            assert_ne!(u.home, u.work);
            assert_ne!(u.home, u.other);
            assert_ne!(u.work, u.other);
        }
    }

    #[test]
    fn every_user_has_multi_station_fragments() {
        let d = tiny();
        for u in d.users() {
            let frags = d.fragments(u.id).unwrap();
            assert!(frags.len() >= 2, "{} traffic confined to one station", u.id);
        }
    }

    #[test]
    fn global_is_sum_of_fragments() {
        let d = tiny();
        for u in d.users() {
            let frags = d.fragments(u.id).unwrap();
            let sum = dipm_timeseries::Pattern::sum(frags.iter().map(|(_, p)| p)).unwrap();
            assert_eq!(&sum, d.global(u.id).unwrap());
        }
    }

    #[test]
    fn same_category_users_have_similar_globals() {
        // Jitter ≤ ±1 per attribute ⇒ pattern values differ by ≤ 2 after the
        // Definition-1 mean (two jittered attributes out of three, coupling
        // effects at near-zero intervals included); ε = 4 must match.
        let d = tiny();
        let users = d.users();
        for a in users {
            for b in users {
                if a.category == b.category {
                    let ga = d.global(a.id).unwrap();
                    let gb = d.global(b.id).unwrap();
                    assert!(
                        dipm_timeseries::eps_match(ga, gb, 4),
                        "{} vs {} of {}: {:?} vs {:?}",
                        a.id,
                        b.id,
                        a.category,
                        ga,
                        gb
                    );
                }
            }
        }
    }

    #[test]
    fn different_categories_have_distant_globals() {
        let d = tiny();
        let office = d
            .users()
            .iter()
            .find(|u| u.category == Category::OfficeWorker)
            .unwrap();
        let night = d
            .users()
            .iter()
            .find(|u| u.category == Category::NightShift)
            .unwrap();
        let dist = dipm_timeseries::chebyshev_distance(
            d.global(office.id).unwrap(),
            d.global(night.id).unwrap(),
        )
        .unwrap();
        assert!(dist > 4, "office vs night-shift distance only {dist}");
    }

    #[test]
    fn zero_noise_makes_category_twins_identical() {
        let d = TraceConfig::new(12, 5).noise(0).seed(3).generate().unwrap();
        for a in d.users() {
            for b in d.users() {
                if a.category == b.category {
                    assert_eq!(d.global(a.id), d.global(b.id));
                }
            }
        }
    }

    #[test]
    fn config_validation() {
        assert!(TraceConfig::new(0, 5).generate().is_err());
        assert!(TraceConfig::new(5, 2).generate().is_err());
        assert!(TraceConfig::new(5, 5).days(0).generate().is_err());
        assert!(TraceConfig::new(5, 5)
            .days(1000)
            .intervals_per_day(24)
            .generate()
            .is_err());
    }
}
