//! User (mobile phone) specifications.

use crate::category::Category;
use crate::ids::{StationId, UserId};

/// One simulated mobile phone user: a category plus the three base stations
/// their daily routine visits.
///
/// The paper's Observation 2 — that people with similar global patterns also
/// share at least one similar *local* pattern — emerges from this structure:
/// two users of the same category follow the same hourly routine, so their
/// per-station fragments have the same shape even when the concrete stations
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserSpec {
    /// The user's identifier.
    pub id: UserId,
    /// The user's population category.
    pub category: Category,
    /// The residential cell.
    pub home: StationId,
    /// The workplace cell.
    pub work: StationId,
    /// The third frequented cell.
    pub other: StationId,
}

impl UserSpec {
    /// The stations this user's routine can touch, deduplicated, in
    /// role order (home, work, other).
    pub fn stations(&self) -> Vec<StationId> {
        let mut out = vec![self.home];
        if self.work != self.home {
            out.push(self.work);
        }
        if self.other != self.home && self.other != self.work {
            out.push(self.other);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stations_deduplicates() {
        let u = UserSpec {
            id: UserId(1),
            category: Category::Student,
            home: StationId(1),
            work: StationId(2),
            other: StationId(1),
        };
        assert_eq!(u.stations(), vec![StationId(1), StationId(2)]);
    }

    #[test]
    fn stations_distinct_keeps_three() {
        let u = UserSpec {
            id: UserId(1),
            category: Category::Retiree,
            home: StationId(1),
            work: StationId(2),
            other: StationId(3),
        };
        assert_eq!(u.stations().len(), 3);
    }
}
