//! Materialized synthetic datasets.
//!
//! A [`Dataset`] is the ground-truth world the experiments run against: the
//! per-station local patterns (what each base station stores), the per-user
//! global patterns (which exist nowhere in the real system — only the
//! simulator can see them), and the category labels used as Dataset-2-style
//! ground truth.

use std::collections::BTreeMap;

use dipm_timeseries::{AttributeSeries, AttributeWeights, Pattern};

use crate::category::Category;
use crate::error::Result;
use crate::generator::TraceConfig;
use crate::ids::{StationId, UserId};
use crate::user::UserSpec;

/// A fully materialized synthetic trace.
#[derive(Debug, Clone)]
pub struct Dataset {
    users: Vec<UserSpec>,
    user_index: BTreeMap<UserId, usize>,
    stations: Vec<StationId>,
    locals: BTreeMap<StationId, BTreeMap<UserId, Pattern>>,
    fragments: BTreeMap<UserId, Vec<(StationId, Pattern)>>,
    globals: BTreeMap<UserId, Pattern>,
    intervals: usize,
    intervals_per_day: usize,
}

impl Dataset {
    pub(crate) fn from_parts(
        users: Vec<UserSpec>,
        stations: Vec<StationId>,
        series: BTreeMap<StationId, BTreeMap<UserId, AttributeSeries>>,
        intervals: usize,
        intervals_per_day: usize,
    ) -> Dataset {
        let weights = AttributeWeights::default();
        let mut locals: BTreeMap<StationId, BTreeMap<UserId, Pattern>> = BTreeMap::new();
        let mut fragments: BTreeMap<UserId, Vec<(StationId, Pattern)>> = BTreeMap::new();
        for (station, per_user) in &series {
            for (user, attr_series) in per_user {
                let pattern = attr_series.to_pattern(&weights);
                locals
                    .entry(*station)
                    .or_default()
                    .insert(*user, pattern.clone());
                fragments
                    .entry(*user)
                    .or_default()
                    .push((*station, pattern));
            }
        }
        let globals = fragments
            .iter()
            .map(|(user, frags)| {
                let sum = Pattern::sum(frags.iter().map(|(_, p)| p))
                    .expect("every user generates at least one fragment");
                (*user, sum)
            })
            .collect();
        let user_index = users.iter().enumerate().map(|(i, u)| (u.id, i)).collect();
        Dataset {
            users,
            user_index,
            stations,
            locals,
            fragments,
            globals,
            intervals,
            intervals_per_day,
        }
    }

    /// All users, in id order.
    pub fn users(&self) -> &[UserSpec] {
        &self.users
    }

    /// Looks up one user's specification.
    pub fn user(&self, id: UserId) -> Option<&UserSpec> {
        self.user_index.get(&id).map(|&i| &self.users[i])
    }

    /// The user's category label (Dataset-2 ground truth).
    pub fn category_of(&self, id: UserId) -> Option<Category> {
        self.user(id).map(|u| u.category)
    }

    /// All base stations.
    pub fn stations(&self) -> &[StationId] {
        &self.stations
    }

    /// The number of time intervals each pattern spans.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// The number of intervals per simulated day.
    pub fn intervals_per_day(&self) -> usize {
        self.intervals_per_day
    }

    /// The local patterns stored at one base station (user → pattern).
    /// Stations that never served any traffic return `None`.
    pub fn station_locals(&self, station: StationId) -> Option<&BTreeMap<UserId, Pattern>> {
        self.locals.get(&station)
    }

    /// One user's global pattern — `Σj Vi,j`, materialized only inside the
    /// simulator.
    pub fn global(&self, id: UserId) -> Option<&Pattern> {
        self.globals.get(&id)
    }

    /// One user's local fragments as `(station, pattern)` pairs in station
    /// order — the decomposition a query built from this user carries.
    pub fn fragments(&self, id: UserId) -> Option<&[(StationId, Pattern)]> {
        self.fragments.get(&id).map(Vec::as_slice)
    }

    /// Iterates over every `(station, user, local pattern)` triple.
    pub fn iter_locals(&self) -> impl Iterator<Item = (StationId, UserId, &Pattern)> + '_ {
        self.locals.iter().flat_map(|(station, per_user)| {
            per_user
                .iter()
                .map(move |(user, pattern)| (*station, *user, pattern))
        })
    }

    /// The raw size of all station-resident data in bytes (8 bytes per
    /// interval value plus an 8-byte user id per fragment) — the baseline
    /// storage cost the naive method ships to the center (Fig. 4c/4d).
    pub fn raw_data_bytes(&self) -> u64 {
        self.locals
            .values()
            .flat_map(|per_user| per_user.values())
            .map(|p| 8 + 8 * p.len() as u64)
            .sum()
    }

    /// The Dataset-2 stand-in: 310 surveyed persons across the six
    /// categories, one day at 3-hour resolution, mild noise (Section V-A of
    /// the paper; Table II evaluates one such trace per survey day).
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is statically valid.
    pub fn survey_310(seed: u64) -> Dataset {
        TraceConfig::new(310, 24)
            .days(1)
            .intervals_per_day(8)
            .noise(1)
            .seed(seed)
            .generate()
            .expect("preset configuration is valid")
    }

    /// A small, fast preset used by tests and examples.
    ///
    /// # Panics
    ///
    /// Never panics: the preset configuration is statically valid.
    pub fn small(seed: u64) -> Dataset {
        TraceConfig::new(60, 8)
            .days(1)
            .intervals_per_day(8)
            .noise(1)
            .seed(seed)
            .generate()
            .expect("preset configuration is valid")
    }

    /// A Dataset-1-style city slice: `users` phones over `stations` cells,
    /// two days at 3-hour resolution.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceConfig::generate`] validation errors.
    pub fn city_slice(users: usize, stations: u32, seed: u64) -> Result<Dataset> {
        TraceConfig::new(users, stations)
            .days(2)
            .intervals_per_day(8)
            .noise(1)
            .seed(seed)
            .generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_preset_has_310_users_in_six_categories() {
        let d = Dataset::survey_310(1);
        assert_eq!(d.users().len(), 310);
        let categories: std::collections::HashSet<Category> =
            d.users().iter().map(|u| u.category).collect();
        assert_eq!(categories.len(), 6);
        assert_eq!(d.intervals(), 8);
    }

    #[test]
    fn lookup_accessors_agree() {
        let d = Dataset::small(5);
        let first = d.users()[0];
        assert_eq!(d.user(first.id), Some(&first));
        assert_eq!(d.category_of(first.id), Some(first.category));
        assert!(d.global(first.id).is_some());
        assert!(d.user(UserId(9999)).is_none());
        assert!(d.global(UserId(9999)).is_none());
    }

    #[test]
    fn station_locals_cover_all_fragments() {
        let d = Dataset::small(5);
        let mut count = 0usize;
        for station in d.stations() {
            if let Some(per_user) = d.station_locals(*station) {
                count += per_user.len();
            }
        }
        let via_fragments: usize = d
            .users()
            .iter()
            .map(|u| d.fragments(u.id).map(|f| f.len()).unwrap_or(0))
            .sum();
        assert_eq!(count, via_fragments);
    }

    #[test]
    fn iter_locals_matches_station_maps() {
        let d = Dataset::small(9);
        let total = d.iter_locals().count();
        let by_station: usize = d
            .stations()
            .iter()
            .filter_map(|s| d.station_locals(*s))
            .map(BTreeMap::len)
            .sum();
        assert_eq!(total, by_station);
    }

    #[test]
    fn raw_data_bytes_counts_every_value() {
        let d = Dataset::small(2);
        let expect: u64 = d
            .iter_locals()
            .map(|(_, _, p)| 8 + 8 * p.len() as u64)
            .sum();
        assert_eq!(d.raw_data_bytes(), expect);
        assert!(d.raw_data_bytes() > 0);
    }

    #[test]
    fn patterns_span_dataset_intervals() {
        let d = Dataset::small(3);
        for (_, _, p) in d.iter_locals() {
            assert_eq!(p.len(), d.intervals());
        }
        for u in d.users() {
            assert_eq!(d.global(u.id).unwrap().len(), d.intervals());
        }
    }
}
