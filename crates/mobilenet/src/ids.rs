//! Identifier newtypes for the simulated mobile network.

use std::fmt;

/// A mobile phone / person identifier (the paper uses the terms
/// interchangeably).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user:{}", self.0)
    }
}

impl From<u64> for UserId {
    fn from(raw: u64) -> UserId {
        UserId(raw)
    }
}

/// A base station (cell) identifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StationId(pub u32);

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "station:{}", self.0)
    }
}

impl From<u32> for StationId {
    fn from(raw: u32) -> StationId {
        StationId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(UserId(7).to_string(), "user:7");
        assert_eq!(StationId(3).to_string(), "station:3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(UserId(1) < UserId(2));
        assert!(StationId(1) < StationId(2));
    }

    #[test]
    fn conversions() {
        assert_eq!(UserId::from(9u64), UserId(9));
        assert_eq!(StationId::from(4u32), StationId(4));
    }
}
