//! Synthetic city-scale mobile network substrate for **DI-matching**
//! (ICDCS 2012 reproduction).
//!
//! The paper evaluates on a proprietary corpus — 3.6 million phones, 5120
//! base stations, one year of CDR data from a Chinese city — which cannot be
//! obtained. This crate substitutes a seeded generator that reproduces the
//! statistical properties the evaluation actually relies on:
//!
//! * **Observation 1** (daily periodicity, divisibility): six occupation
//!   [`Category`]s with distinct hourly communication curves
//!   ([`CategoryProfile`]) whose expected patterns repeat daily and separate
//!   after accumulation.
//! * **Observation 2** (similar global ⇒ similar local): users follow
//!   category-driven routines across home/work/other stations
//!   ([`UserSpec`], [`StationRole`]), so same-category users produce
//!   similarly shaped per-station fragments.
//! * Integer per-interval attributes (calls / duration / partners) with
//!   bounded jitter, folded through Definition 1 into patterns.
//!
//! [`TraceConfig`] builds a [`Dataset`] deterministically from a seed;
//! [`ground_truth`] answers "who really matches" for evaluation; [`cdr`]
//! models the raw record formats (CDR/CDL) the real pipeline would ingest.
//!
//! # Example
//!
//! ```
//! use dipm_mobilenet::{ground_truth, Dataset};
//!
//! let dataset = Dataset::small(42);
//! let probe = dataset.users()[0];
//! let relevant =
//!     ground_truth::eps_similar_users(&dataset, dataset.global(probe.id).unwrap(), 3);
//! assert!(relevant.contains(&probe.id));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod category;
pub mod cdr;
mod dataset;
mod error;
mod generator;
pub mod ground_truth;
mod ids;
mod user;

pub use category::{Category, CategoryProfile, HourlyRates, StationRole};
pub use dataset::Dataset;
pub use error::{MobileNetError, Result};
pub use generator::{TraceConfig, MAX_INTERVALS};
pub use ids::{StationId, UserId};
pub use user::UserSpec;
