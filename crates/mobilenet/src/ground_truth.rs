//! Ground-truth oracles for evaluation.
//!
//! Only the simulator can see global patterns, so only it can answer "which
//! users *really* match the query" — the relevant sets behind the paper's
//! precision/recall numbers (Fig. 4a, Table II) and the Observation-2
//! statistics (Fig. 1b).

use std::collections::BTreeSet;

use dipm_timeseries::{eps_match, Pattern};

use crate::category::Category;
use crate::dataset::Dataset;
use crate::ids::UserId;

/// Users whose **global** pattern ε-matches `query` (Eq. 2) — the relevant
/// set for precision/recall against a pattern query.
pub fn eps_similar_users(dataset: &Dataset, query: &Pattern, eps: u64) -> BTreeSet<UserId> {
    dataset
        .users()
        .iter()
        .filter(|u| {
            dataset
                .global(u.id)
                .is_some_and(|g| eps_match(g, query, eps))
        })
        .map(|u| u.id)
        .collect()
}

/// Members of one category — the relevant set for Dataset-2-style
/// effectiveness evaluation (Table II).
pub fn category_members(dataset: &Dataset, category: Category) -> BTreeSet<UserId> {
    dataset
        .users()
        .iter()
        .filter(|u| u.category == category)
        .map(|u| u.id)
        .collect()
}

/// How many of `b`'s local fragments ε-match at least one of `a`'s local
/// fragments — the quantity whose CDF the paper plots in Figure 1(b).
pub fn similar_local_count(dataset: &Dataset, a: UserId, b: UserId, eps: u64) -> usize {
    let (Some(fa), Some(fb)) = (dataset.fragments(a), dataset.fragments(b)) else {
        return 0;
    };
    fb.iter()
        .filter(|(_, pb)| fa.iter().any(|(_, pa)| eps_match(pa, pb, eps)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_similar_includes_self() {
        let d = Dataset::small(11);
        let probe = d.users()[0];
        let similar = eps_similar_users(&d, d.global(probe.id).unwrap(), 0);
        assert!(similar.contains(&probe.id));
    }

    #[test]
    fn eps_similar_grows_with_eps() {
        let d = Dataset::small(11);
        let probe = d.users()[0];
        let tight = eps_similar_users(&d, d.global(probe.id).unwrap(), 0);
        let loose = eps_similar_users(&d, d.global(probe.id).unwrap(), 10);
        assert!(tight.is_subset(&loose));
        assert!(loose.len() >= tight.len());
    }

    #[test]
    fn same_category_users_are_similar_at_moderate_eps() {
        let d = Dataset::small(11);
        let probe = d.users()[0];
        let similar = eps_similar_users(&d, d.global(probe.id).unwrap(), 4);
        let members = category_members(&d, probe.category);
        assert!(
            members.is_subset(&similar),
            "category members missing from the ε=4 relevant set"
        );
    }

    #[test]
    fn category_members_partition_users() {
        let d = Dataset::small(4);
        let total: usize = Category::ALL
            .iter()
            .map(|&c| category_members(&d, c).len())
            .sum();
        assert_eq!(total, d.users().len());
    }

    #[test]
    fn similar_local_count_self_is_full() {
        let d = Dataset::small(8);
        for u in d.users().iter().take(6) {
            let n = d.fragments(u.id).unwrap().len();
            assert_eq!(similar_local_count(&d, u.id, u.id, 0), n);
        }
    }

    #[test]
    fn observation_2_holds_within_categories() {
        // Similar globals share at least one similar local in > 90 % of
        // pairs (Fig. 1b) — with category-driven routines it holds for
        // essentially all same-category pairs.
        let d = Dataset::small(13);
        let users = d.users();
        let mut pairs = 0usize;
        let mut with_similar_local = 0usize;
        for a in users {
            for b in users {
                if a.id != b.id && a.category == b.category {
                    pairs += 1;
                    if similar_local_count(&d, a.id, b.id, 4) >= 1 {
                        with_similar_local += 1;
                    }
                }
            }
        }
        assert!(pairs > 0);
        let fraction = with_similar_local as f64 / pairs as f64;
        assert!(fraction > 0.9, "observation 2 fraction {fraction}");
    }

    #[test]
    fn unknown_users_have_zero_similar_locals() {
        let d = Dataset::small(8);
        assert_eq!(similar_local_count(&d, UserId(0), UserId(99_999), 5), 0);
    }
}
