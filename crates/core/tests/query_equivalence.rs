//! Equivalence properties for the shared probe core.
//!
//! The borrowed/in-place query API (`query_into`, `query_sequence_into`)
//! and the owned API (`query`, `query_sequence`) run through one shared
//! core. These properties pin that core against an independent reference
//! model — plain `BTreeSet` bookkeeping over the same `HashFamily` probes
//! with membership-first semantics — and pin the weighted and counting
//! filters to each other, so neither the scratch reuse nor the word-level
//! membership fast path can drift the accepted sets.

use std::collections::{BTreeMap, BTreeSet};

use dipm_core::{
    CountingWbf, FilterParams, HashFamily, Kernel, PrecomputedProbes, QueryScratch, Weight,
    WeightedBloomFilter,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Independent model of the weighted filter: per-bit weight sets, probed
/// with the same seeded family, queried membership-first.
struct ModelFilter {
    bits: BTreeSet<usize>,
    weights: BTreeMap<usize, BTreeSet<Weight>>,
    family: HashFamily,
    m: usize,
}

impl ModelFilter {
    fn new(params: FilterParams, seed: u64) -> ModelFilter {
        ModelFilter {
            bits: BTreeSet::new(),
            weights: BTreeMap::new(),
            family: HashFamily::new(params.hashes(), seed),
            m: params.bits(),
        }
    }

    fn insert(&mut self, key: u64, weight: Weight) {
        for idx in self.family.probes(key, self.m) {
            self.bits.insert(idx);
            self.weights.entry(idx).or_default().insert(weight);
        }
    }

    /// Membership first, then the weight intersection — `None` is a missing
    /// bit, `Some(empty)` is a weight-inconsistent reject.
    fn query(&self, key: u64) -> Option<BTreeSet<Weight>> {
        if !self
            .family
            .probes(key, self.m)
            .all(|idx| self.bits.contains(&idx))
        {
            return None;
        }
        let mut acc: Option<BTreeSet<Weight>> = None;
        for idx in self.family.probes(key, self.m) {
            let at = &self.weights[&idx];
            acc = Some(match acc {
                None => at.clone(),
                Some(cur) => cur.intersection(at).copied().collect(),
            });
        }
        acc
    }

    /// Sequence-level membership first — *every* key's bits are checked
    /// before any weight set is read — then the fold, with the early exit
    /// on an empty intersection.
    fn query_sequence(&self, keys: &[u64]) -> Option<BTreeSet<Weight>> {
        for &key in keys {
            if !self
                .family
                .probes(key, self.m)
                .all(|idx| self.bits.contains(&idx))
            {
                return None;
            }
        }
        let mut acc: Option<BTreeSet<Weight>> = None;
        for &key in keys {
            let set = self.query(key).expect("membership verified above");
            let next = match acc {
                None => set,
                Some(cur) => cur.intersection(&set).copied().collect(),
            };
            if next.is_empty() {
                return Some(next);
            }
            acc = Some(next);
        }
        acc
    }
}

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1u64..=12, 1u64..=12).prop_map(|(a, b)| Weight::new(a.min(b), a.max(b)).unwrap())
}

fn arb_geometry() -> impl Strategy<Value = (FilterParams, u64)> {
    (6usize..=9, 1u16..=6, any::<u64>())
        .prop_map(|(log2m, k, seed)| (FilterParams::new(1 << log2m, k).unwrap(), seed))
}

fn sorted(set: &dipm_core::WeightSet) -> Vec<Weight> {
    set.iter().collect()
}

proptest! {
    // Single-key: owned query, in-place query and the model agree exactly,
    // including the None (missing bit) vs Some(empty) (weight clash) split.
    #[test]
    fn query_matches_reference_model(
        (params, seed) in arb_geometry(),
        inserts in vec((0u64..48, arb_weight()), 0..40),
        probes in vec(0u64..64, 1..30),
    ) {
        let mut wbf = WeightedBloomFilter::new(params, seed);
        let mut model = ModelFilter::new(params, seed);
        for &(key, w) in &inserts {
            wbf.insert(key, w);
            model.insert(key, w);
        }
        let mut out = dipm_core::WeightSet::new();
        for &key in &probes {
            let expect = model.query(key);
            let got = wbf.query(key);
            prop_assert_eq!(
                got.as_ref().map(sorted),
                expect.clone().map(|s| s.into_iter().collect::<Vec<_>>()),
                "key {}", key
            );
            // The in-place variant reuses `out` across probes and must agree.
            let got_into = wbf.query_into(key, &mut out).map(|()| sorted(&out));
            prop_assert_eq!(got_into, expect.map(|s| s.into_iter().collect::<Vec<_>>()));
        }
    }

    // Sequences: the owned path, the scratch path (reused across calls) and
    // the model agree, for both the weighted and the counting filter.
    #[test]
    fn query_sequence_into_matches_owned_and_model(
        (params, seed) in arb_geometry(),
        inserts in vec((0u64..48, arb_weight()), 0..40),
        sequences in vec(vec(0u64..64, 1..8), 1..12),
    ) {
        let mut wbf = WeightedBloomFilter::new(params, seed);
        let mut counting = CountingWbf::new(params, seed);
        let mut model = ModelFilter::new(params, seed);
        for &(key, w) in &inserts {
            wbf.insert(key, w);
            counting.insert(key, w).unwrap();
            model.insert(key, w);
        }
        let mut scratch = QueryScratch::new();
        let mut counting_scratch = QueryScratch::new();
        for keys in &sequences {
            let expect = model
                .query_sequence(keys)
                .map(|s| s.into_iter().collect::<Vec<_>>());
            let owned = wbf.query_sequence(keys.iter().copied()).map(|s| sorted(&s));
            prop_assert_eq!(&owned, &expect, "owned vs model on {:?}", keys);
            // One scratch across every sequence: stale state must not leak.
            let borrowed = wbf
                .query_sequence_into(keys.iter().copied(), &mut scratch)
                .map(sorted);
            prop_assert_eq!(&borrowed, &expect, "scratch vs model on {:?}", keys);
            let counted = counting
                .query_sequence_into(keys.iter().copied(), &mut counting_scratch)
                .map(sorted);
            prop_assert_eq!(&counted, &expect, "counting vs model on {:?}", keys);
        }
    }

    // The batched membership path — precomputed probes tested through the
    // runtime-dispatched kernel — agrees with the model, with the sequence
    // path, and (at the raw predicate level) with the forced-scalar kernel,
    // whatever SIMD variant dispatch picked on this machine.
    #[test]
    fn precomputed_simd_path_matches_sequence_and_forced_scalar(
        (params, seed) in arb_geometry(),
        inserts in vec((0u64..48, arb_weight()), 0..40),
        sequences in vec(vec(0u64..64, 1..8), 1..12),
    ) {
        let mut wbf = WeightedBloomFilter::new(params, seed);
        let mut model = ModelFilter::new(params, seed);
        for &(key, w) in &inserts {
            wbf.insert(key, w);
            model.insert(key, w);
        }
        let family = HashFamily::new(params.hashes(), seed);
        let mut scratch = QueryScratch::new();
        let mut pre = PrecomputedProbes::new();
        for keys in &sequences {
            pre.compute(&family, params.bits(), keys);
            let expect = model
                .query_sequence(keys)
                .map(|s| s.into_iter().collect::<Vec<_>>());
            let got = wbf.query_precomputed(&pre, &mut scratch).map(sorted);
            prop_assert_eq!(&got, &expect, "precomputed vs model on {:?}", keys);
            // The dispatched kernel's batch predicate must be bit-identical
            // to the scalar kernel's on the same (word, mask) run.
            let words = wbf.bits().as_words();
            prop_assert_eq!(
                Kernel::active().all_set(words, pre.words(), pre.mask_bits()),
                Kernel::Scalar.all_set(words, pre.words(), pre.mask_bits()),
                "kernel {} disagrees with scalar", Kernel::active().name()
            );
            // Per-key batches partition the run: each key's own (word, mask)
            // group must reproduce the single-key membership test.
            for (j, &key) in keys.iter().enumerate() {
                let (kw, km) = pre.key_masks(j);
                prop_assert_eq!(
                    wbf.bits().contains_probes_simd(kw, km),
                    wbf.contains(key),
                    "key {} batch vs single-key membership", key
                );
            }
        }
    }
}
