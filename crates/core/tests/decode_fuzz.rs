//! Robustness: decoders must never panic on malformed input — every mutated
//! or truncated buffer either fails cleanly or yields a structurally valid
//! filter.

use bytes::Bytes;
use dipm_core::{encode, BloomFilter, FilterParams, Weight, WeightedBloomFilter};
use proptest::collection::vec;
use proptest::prelude::*;

fn sample_wbf() -> WeightedBloomFilter {
    let params = FilterParams::new(2048, 3).expect("valid");
    let mut wbf = WeightedBloomFilter::new(params, 11);
    for i in 0..40u64 {
        wbf.insert(i * 131, Weight::new(i % 9 + 1, 10).expect("valid"));
    }
    wbf
}

fn sample_bloom() -> BloomFilter {
    let params = FilterParams::new(2048, 3).expect("valid");
    let mut bf = BloomFilter::new(params, 11);
    for i in 0..40u64 {
        bf.insert(i * 131);
    }
    bf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_wbf_payload_never_panics(
        flips in vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let mut raw = encode::encode_wbf(&sample_wbf()).expect("encodable").to_vec();
        for (index, value) in flips {
            let i = index.index(raw.len());
            raw[i] ^= value;
        }
        // Must not panic; any Ok result is a structurally valid filter that
        // can answer queries.
        if let Ok(filter) = encode::decode_wbf(Bytes::from(raw)) {
            let _ = filter.query(12345);
        }
    }

    #[test]
    fn truncated_wbf_payload_never_panics(cut in any::<prop::sample::Index>()) {
        let raw = encode::encode_wbf(&sample_wbf()).expect("encodable");
        let cut = cut.index(raw.len());
        prop_assume!(cut < raw.len());
        prop_assert!(encode::decode_wbf(raw.slice(0..cut)).is_err());
    }

    #[test]
    fn mutated_bloom_payload_never_panics(
        flips in vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let mut raw = encode::encode_bloom(&sample_bloom()).to_vec();
        for (index, value) in flips {
            let i = index.index(raw.len());
            raw[i] ^= value;
        }
        if let Ok(filter) = encode::decode_bloom(Bytes::from(raw)) {
            let _ = filter.contains(12345);
        }
    }

    #[test]
    fn random_bytes_never_decode_to_panic(raw in vec(any::<u8>(), 0..300)) {
        let bytes = Bytes::from(raw);
        let _ = encode::decode_wbf(bytes.clone());
        let _ = encode::decode_bloom(bytes);
    }
}
