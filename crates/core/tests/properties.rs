//! Property-based tests for the core filter data structures.

use dipm_core::{
    encode, sum_weights, BitSet, BloomFilter, FilterParams, HashFamily, Weight, WeightSet,
    WeightedBloomFilter,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1u64..=1_000_000, 1u64..=1_000_000)
        .prop_map(|(a, b)| Weight::new(a.min(b), a.max(b)).expect("non-zero denominator"))
}

proptest! {
    // ---------- BitSet ----------

    #[test]
    fn bitset_set_get_roundtrip(indices in vec(0usize..4096, 0..200)) {
        let mut bits = BitSet::new(4096);
        for &i in &indices {
            bits.set(i);
        }
        for &i in &indices {
            prop_assert!(bits.get(i));
        }
        let distinct: std::collections::BTreeSet<_> = indices.iter().copied().collect();
        prop_assert_eq!(bits.count_ones(), distinct.len());
        let ones: Vec<usize> = bits.iter_ones().collect();
        prop_assert_eq!(ones, distinct.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_union_is_commutative(
        xs in vec(0usize..512, 0..64),
        ys in vec(0usize..512, 0..64),
    ) {
        let mut a = BitSet::new(512);
        let mut b = BitSet::new(512);
        for &i in &xs { a.set(i); }
        for &i in &ys { b.set(i); }
        let mut ab = a.clone();
        ab.union_with(&b).unwrap();
        let mut ba = b.clone();
        ba.union_with(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bitset_words_roundtrip(indices in vec(0usize..300, 0..80)) {
        let mut bits = BitSet::new(300);
        for &i in &indices { bits.set(i); }
        let rebuilt = BitSet::from_words(bits.as_words().to_vec(), 300).unwrap();
        prop_assert_eq!(rebuilt, bits);
    }

    // ---------- Weight ----------

    #[test]
    fn weight_is_always_reduced(num in 1u64..1_000_000, den in 1u64..1_000_000) {
        let w = Weight::new(num, den).unwrap();
        let g = {
            let (mut a, mut b) = (w.numerator(), w.denominator());
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        };
        prop_assert_eq!(g, 1);
    }

    #[test]
    fn weight_add_commutes(a in arb_weight(), b in arb_weight()) {
        prop_assert_eq!(a.checked_add(b), b.checked_add(a));
    }

    #[test]
    fn weight_add_associates(a in arb_weight(), b in arb_weight(), c in arb_weight()) {
        let left = a.checked_add(b).and_then(|ab| ab.checked_add(c));
        let right = b.checked_add(c).and_then(|bc| a.checked_add(bc));
        if let (Some(l), Some(r)) = (left, right) {
            prop_assert_eq!(l, r);
        }
    }

    #[test]
    fn weight_order_matches_f64(a in arb_weight(), b in arb_weight()) {
        // f64 has 52 bits of mantissa; with numerators ≤ 1e6 the comparison
        // is exact unless the ratios are equal.
        if a != b {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn weight_decomposition_sums_to_one(parts in vec(1u64..10_000, 1..20)) {
        let total: u64 = parts.iter().sum();
        let weights: Vec<Weight> =
            parts.iter().map(|&p| Weight::ratio(p, total).unwrap()).collect();
        prop_assert!(sum_weights(weights).unwrap().is_one());
    }

    // ---------- WeightSet ----------

    #[test]
    fn weight_set_intersection_subset(xs in vec(arb_weight(), 0..20), ys in vec(arb_weight(), 0..20)) {
        let a: WeightSet = xs.iter().copied().collect();
        let b: WeightSet = ys.iter().copied().collect();
        let i = a.intersection(&b);
        for w in i.iter() {
            prop_assert!(a.contains(w) && b.contains(w));
        }
        for w in a.iter() {
            if b.contains(w) {
                prop_assert!(i.contains(w));
            }
        }
    }

    #[test]
    fn weight_set_iter_is_sorted(xs in vec(arb_weight(), 0..30)) {
        let set: WeightSet = xs.into_iter().collect();
        let items: Vec<Weight> = set.iter().collect();
        for pair in items.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    // ---------- HashFamily ----------

    #[test]
    fn probes_deterministic(seed in any::<u64>(), key in any::<u64>(), k in 1u16..16, m in 1usize..100_000) {
        let f1 = HashFamily::new(k, seed);
        let f2 = HashFamily::new(k, seed);
        let a: Vec<usize> = f1.probes(key, m).collect();
        let b: Vec<usize> = f2.probes(key, m).collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&p| p < m));
        prop_assert_eq!(a.len(), k as usize);
    }

    // ---------- BloomFilter ----------

    #[test]
    fn bloom_no_false_negatives(keys in vec(any::<u64>(), 1..300), seed in any::<u64>()) {
        let params = FilterParams::optimal(300, 0.01).unwrap();
        let mut bf = BloomFilter::new(params, seed);
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    #[test]
    fn bloom_roundtrip_encoding(keys in vec(any::<u64>(), 0..200), seed in any::<u64>()) {
        let params = FilterParams::new(2048, 4).unwrap();
        let mut bf = BloomFilter::new(params, seed);
        for &k in &keys {
            bf.insert(k);
        }
        let decoded = encode::decode_bloom(encode::encode_bloom(&bf)).unwrap();
        prop_assert_eq!(decoded, bf);
    }

    // ---------- WeightedBloomFilter ----------

    #[test]
    fn wbf_no_false_negatives(
        seqs in vec((vec(any::<u64>(), 1..12), 1u64..100), 1..12),
        seed in any::<u64>(),
    ) {
        let params = FilterParams::new(1 << 14, 4).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, seed);
        for (seq, num) in &seqs {
            let w = Weight::new(*num, 100).unwrap();
            for &v in seq {
                wbf.insert(v, w);
            }
        }
        for (seq, num) in &seqs {
            let w = Weight::new(*num, 100).unwrap();
            let res = wbf.query_sequence(seq.iter().copied());
            prop_assert!(res.expect("bits must be set").contains(w));
        }
    }

    #[test]
    fn wbf_roundtrip_encoding(
        entries in vec((any::<u64>(), arb_weight()), 0..100),
        seed in any::<u64>(),
    ) {
        let params = FilterParams::new(4096, 3).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, seed);
        for (key, w) in &entries {
            wbf.insert(*key, *w);
        }
        let decoded = encode::decode_wbf(encode::encode_wbf(&wbf).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &wbf);
        prop_assert_eq!(
            encode::encode_wbf(&wbf).unwrap().len(),
            encode::encoded_wbf_len(&wbf)
        );
    }

    #[test]
    fn wbf_union_preserves_membership(
        xs in vec((any::<u64>(), arb_weight()), 0..50),
        ys in vec((any::<u64>(), arb_weight()), 0..50),
        seed in any::<u64>(),
    ) {
        let params = FilterParams::new(8192, 4).unwrap();
        let mut a = WeightedBloomFilter::new(params, seed);
        let mut b = WeightedBloomFilter::new(params, seed);
        for (k, w) in &xs { a.insert(*k, *w); }
        for (k, w) in &ys { b.insert(*k, *w); }
        let mut merged = a.clone();
        merged.union_with(&b).unwrap();
        for (k, w) in xs.iter().chain(&ys) {
            let set = merged.query(*k).expect("merged filter keeps bits");
            prop_assert!(set.contains(*w));
        }
    }

    #[test]
    fn wbf_query_subset_of_contains(key in any::<u64>(), seed in any::<u64>()) {
        let params = FilterParams::new(1024, 3).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, seed);
        wbf.insert(key ^ 0x5555, Weight::ONE);
        // query(Some) implies contains(true) for any key.
        if wbf.query(key).is_some() {
            prop_assert!(wbf.contains(key));
        }
    }
}
