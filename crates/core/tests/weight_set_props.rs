//! Property tests for [`WeightSet`] edge cases: empty sets, duplicate
//! weights (equal after reduction), and the weight-sum>1 behaviour that
//! Algorithm 3's deletion path relies on.

use dipm_core::{sum_weights, Weight, WeightSet};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1u64..=100_000, 1u64..=100_000)
        .prop_map(|(a, b)| Weight::new(a.min(b), a.max(b)).expect("non-zero denominator"))
}

proptest! {
    // ---------- empty sets ----------

    #[test]
    fn empty_set_is_intersection_absorbing(ws in vec(arb_weight(), 0..24)) {
        let set: WeightSet = ws.into_iter().collect();
        let empty = WeightSet::new();
        prop_assert!(set.intersection(&empty).is_empty());
        prop_assert!(empty.intersection(&set).is_empty());
        prop_assert_eq!(empty.max(), None);
        prop_assert_eq!(empty.min(), None);
    }

    #[test]
    fn empty_set_is_union_identity(ws in vec(arb_weight(), 0..24)) {
        let set: WeightSet = ws.iter().copied().collect();
        let mut merged = set.clone();
        merged.union_with(&WeightSet::new());
        prop_assert_eq!(&merged, &set);
        let mut from_empty = WeightSet::new();
        from_empty.union_with(&set);
        prop_assert_eq!(&from_empty, &set);
    }

    // ---------- duplicate weights ----------

    #[test]
    fn unreduced_duplicates_collapse(num in 1u64..1000, den in 1u64..1000, k in 2u64..8) {
        // k·num / k·den reduces to num/den: the set must treat them as one
        // weight, or stations would report the same combination twice.
        let mut set = WeightSet::new();
        let reduced = Weight::new(num, den).unwrap();
        let scaled = Weight::new(num * k, den * k).unwrap();
        prop_assert!(set.insert(reduced));
        prop_assert!(!set.insert(scaled), "scaled duplicate must not enter");
        prop_assert_eq!(set.len(), 1);
        prop_assert!(set.contains(scaled));
    }

    #[test]
    fn insert_reports_novelty_consistently(ws in vec(arb_weight(), 1..32)) {
        let mut set = WeightSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for w in ws {
            prop_assert_eq!(set.insert(w), reference.insert(w));
        }
        prop_assert_eq!(set.len(), reference.len());
        let sorted: Vec<Weight> = set.iter().collect();
        let expect: Vec<Weight> = reference.into_iter().collect();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn intersection_of_duplicated_inputs_is_idempotent(ws in vec(arb_weight(), 0..24)) {
        let doubled: WeightSet = ws.iter().chain(ws.iter()).copied().collect();
        let once: WeightSet = ws.iter().copied().collect();
        prop_assert_eq!(&doubled, &once);
        prop_assert_eq!(&doubled.intersection(&once), &once);
    }

    // ---------- the weight-sum>1 deletion path ----------

    #[test]
    fn strict_superset_of_decomposition_sums_above_one(
        parts in vec(1u64..10_000, 1..12),
        extra in arb_weight(),
    ) {
        // Algorithm 3 deletes users whose reported weights sum above 1.
        // The property it rests on: an exact decomposition sums to exactly
        // 1, so any strict superset of reports must exceed it.
        let total: u64 = parts.iter().sum();
        let decomposition: Vec<Weight> = parts
            .iter()
            .map(|&p| Weight::ratio(p, total).unwrap())
            .collect();
        let exact = sum_weights(decomposition.iter().copied()).unwrap();
        prop_assert!(exact.is_one());
        // Overflowed sums (None) are treated as above 1 by the aggregator.
        if let Some(inflated) = exact.checked_add(extra) {
            prop_assert_eq!(
                inflated.cmp_one(),
                std::cmp::Ordering::Greater,
                "1 + {} must compare above one",
                extra
            );
        }
    }

    #[test]
    fn set_max_bounded_by_one_iff_all_members_are(ws in vec(arb_weight(), 1..24)) {
        // Stations report WeightSet::max / min; the deletion decision at
        // the center only sees sums, so the set must preserve order: max
        // is ≥ every member and min ≤ every member.
        let set: WeightSet = ws.iter().copied().collect();
        let max = set.max().unwrap();
        let min = set.min().unwrap();
        for w in set.iter() {
            prop_assert!(min <= w && w <= max);
        }
        prop_assert!(set.contains(max) && set.contains(min));
    }
}
