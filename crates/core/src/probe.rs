//! The shared weighted-probe core (Algorithm 2, lines 3–15).
//!
//! [`WeightedBloomFilter`](crate::WeightedBloomFilter) and
//! [`CountingWbf`](crate::CountingWbf) answer queries with identical
//! semantics — reject unless every probed position is occupied and one
//! weight is common to all of them — so the matching loop lives here once,
//! generic over a [`ProbeTable`], instead of being maintained twice.
//!
//! The loop is built for the station-side scan, where almost every candidate
//! misses:
//!
//! 1. **Membership first.** The *entire sequence's* occupancy is tested —
//!    all `k` probes of every key, word-level against the bit array for the
//!    plain filter — before any weight set is read, so a miss row costs a
//!    few masked loads and never touches the weight table. The weight fold
//!    only ever runs on candidates whose every sampled point is present.
//! 2. **Borrow until a copy is forced.** The first occupied probe's weight
//!    set is borrowed from the table; only a second, different probe forces
//!    materializing an intersection — and that lands in the caller's
//!    reusable [`QueryScratch`], never in a fresh allocation. With `k = 1`,
//!    or when every probe of the sequence lands on one position, the result
//!    is returned as a borrow of the table itself.
//! 3. **Early reject.** Once the running intersection is empty it can never
//!    grow, so the scan stops and reports the weight-inconsistent reject.
//!
//! Membership-first ordering is a deliberate (and documented) refinement of
//! the seed implementation, which interleaved bit tests and intersections
//! key-by-key and could answer `Some(∅)` where this core answers `None`
//! (an empty running intersection used to exit before a later key's missing
//! bit was seen) — both are rejects, and accepted candidates return the
//! exact same set.

use crate::hash::{HashFamily, Probes};
use crate::weight::Weight;
use crate::weight_set::WeightSet;

/// Reusable scratch for [`query_sequence_into`] — owns the running
/// intersection so repeated queries share one heap buffer.
///
/// Create it once per scan loop and pass it to every call; the buffer's
/// capacity converges to the largest weight set encountered and the hot
/// path stops allocating entirely.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    pub(crate) acc: WeightSet,
}

impl QueryScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }
}

/// One candidate row's probe set, hashed once and replayed against every
/// query section sharing a geometry.
///
/// A batch scan probes each row against many filter sections; when the
/// sections share one `(hash family, bit length)` the probe indices — and
/// the merged word masks the membership pre-test loads — are identical for
/// all of them, so hashing them per `(row × section)` is pure waste. A
/// `PrecomputedProbes` is filled once per row (key by key via
/// [`PrecomputedProbes::push_key`], or in one shot via
/// [`PrecomputedProbes::compute`], reusing its buffers across rows) and
/// replayed per section — whole through
/// [`WeightedBloomFilter::query_precomputed`](crate::WeightedBloomFilter::query_precomputed),
/// or key by key through [`PrecomputedProbes::key_masks`] +
/// [`BitSet::contains_probes_simd`](crate::BitSet::contains_probes_simd)
/// when the scan wants to drop a section on its first missing key without
/// hashing the rest of the row.
///
/// Masks are stored as parallel word/mask arrays (not interleaved pairs) so
/// they feed the SIMD membership kernel directly.
#[derive(Debug, Clone, Default)]
pub struct PrecomputedProbes {
    /// Flat probe indices: all `k` probes of key 0, then key 1, …
    pub(crate) indices: Vec<u32>,
    /// Word index per merged mask group, parallel to `mask_bits`.
    mask_words: Vec<u32>,
    /// Merged bit masks of consecutive same-word probes — the word-batched
    /// membership masks, mirroring the merging
    /// [`BitSet::contains_probes`](crate::BitSet::contains_probes) performs
    /// on the fly. Groups never merge across key boundaries, so each key's
    /// groups form a contiguous, independently replayable run.
    mask_bits: Vec<u64>,
    /// Exclusive end offset of each key's mask-group run.
    key_ends: Vec<u32>,
}

impl PrecomputedProbes {
    /// Creates an empty probe set.
    pub fn new() -> PrecomputedProbes {
        PrecomputedProbes::default()
    }

    /// Recomputes the probe set of `keys` against a filter geometry of
    /// `len` bits under `family`, reusing all buffers.
    pub fn compute(&mut self, family: &HashFamily, len: usize, keys: &[u64]) {
        self.clear();
        for &key in keys {
            self.push_key(family, len, key);
        }
    }

    /// Clears the probe set without releasing its buffers.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.mask_words.clear();
        self.mask_bits.clear();
        self.key_ends.clear();
    }

    /// Appends one key's `k` probes, merging consecutive same-word probes
    /// within the key into one mask group.
    pub fn push_key(&mut self, family: &HashFamily, len: usize, key: u64) {
        let start = self.mask_words.len();
        for idx in family.probes(key, len) {
            self.indices.push(idx as u32);
            let (word, mask) = ((idx / 64) as u32, 1u64 << (idx % 64));
            if self.mask_words.len() > start && *self.mask_words.last().unwrap() == word {
                *self.mask_bits.last_mut().unwrap() |= mask;
            } else {
                self.mask_words.push(word);
                self.mask_bits.push(mask);
            }
        }
        self.key_ends.push(self.mask_words.len() as u32);
    }

    /// Reserves room for `probes` probe indices (and as many mask groups,
    /// the no-merging worst case) so later [`PrecomputedProbes::compute`]
    /// calls stay allocation-free.
    pub fn reserve(&mut self, probes: usize) {
        self.indices.reserve(probes);
        self.mask_words.reserve(probes);
        self.mask_bits.reserve(probes);
        self.key_ends.reserve(probes);
    }

    /// The merged mask groups' word indices, parallel to
    /// [`PrecomputedProbes::mask_bits`].
    pub fn words(&self) -> &[u32] {
        &self.mask_words
    }

    /// The merged mask groups' bit masks, parallel to
    /// [`PrecomputedProbes::words`].
    pub fn mask_bits(&self) -> &[u64] {
        &self.mask_bits
    }

    /// The flat probe indices (all `k` probes of key 0, then key 1, …).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The number of keys pushed.
    pub fn key_count(&self) -> usize {
        self.key_ends.len()
    }

    /// The `key`-th key's merged `(words, masks)` run — the membership test
    /// for exactly that key, for scans that probe key by key and stop at
    /// the first miss.
    ///
    /// # Panics
    ///
    /// Panics if `key >= key_count()`.
    pub fn key_masks(&self, key: usize) -> (&[u32], &[u64]) {
        let end = self.key_ends[key] as usize;
        let start = if key == 0 {
            0
        } else {
            self.key_ends[key - 1] as usize
        };
        (&self.mask_words[start..end], &self.mask_bits[start..end])
    }

    /// Whether the probe set holds no probes (computed from zero keys).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// A probe-addressable table of weight sets: the storage interface both
/// filter variants expose to the shared query core.
pub(crate) trait ProbeTable {
    /// Sorted iterator over the weights attached at one position.
    type Weights<'a>: Iterator<Item = Weight>
    where
        Self: 'a;

    /// The hash family and table length defining probe sequences.
    fn geometry(&self) -> (&HashFamily, usize);

    /// Whether every probed position is occupied. Implementations should
    /// make this the cheap path — it gates every weight-table access.
    fn occupied(&self, probes: Probes) -> bool;

    /// The weights at `idx`, ascending; `None` if the position is empty.
    fn weights_at(&self, idx: usize) -> Option<Self::Weights<'_>>;

    /// A borrowable materialized weight set at `idx`, when the table stores
    /// one (the plain filter does; the counting filter synthesizes sets from
    /// refcounts and returns `None`).
    fn set_at(&self, idx: usize) -> Option<&WeightSet> {
        let _ = idx;
        None
    }
}

/// The running intersection state: borrowing from the table until a second
/// distinct probe forces an owned copy in the scratch buffer.
enum Acc<'a> {
    Start,
    Borrowed(&'a WeightSet),
    Owned,
}

/// Queries one key into `out` (cleared and overwritten). `None` if any
/// probed position is unoccupied; otherwise `Some(())` with the probes'
/// weight intersection in `out` (empty = weight-inconsistent reject).
pub(crate) fn query_into<T: ProbeTable>(table: &T, key: u64, out: &mut WeightSet) -> Option<()> {
    let (family, len) = table.geometry();
    let probes = family.probes(key, len);
    if !table.occupied(probes.clone()) {
        return None;
    }
    // Defer reading the first probe's weights: until a second distinct
    // position shows up, no intersection (and so no copy) is needed.
    let mut deferred: Option<usize> = None;
    let mut owned = false;
    for idx in probes {
        if owned {
            out.intersect_with_sorted(table.weights_at(idx).expect("occupied position"));
            if out.is_empty() {
                return Some(());
            }
            continue;
        }
        match deferred {
            None => deferred = Some(idx),
            Some(first) if first == idx => {}
            Some(first) => {
                match table.set_at(first) {
                    Some(set) => out.assign_intersection_sorted(
                        set,
                        table.weights_at(idx).expect("occupied position"),
                    ),
                    None => {
                        out.assign_sorted(table.weights_at(first).expect("occupied position"));
                        out.intersect_with_sorted(
                            table.weights_at(idx).expect("occupied position"),
                        );
                    }
                }
                owned = true;
                if out.is_empty() {
                    return Some(());
                }
            }
        }
    }
    if !owned {
        let first = deferred.expect("hash families have at least one probe");
        out.assign_sorted(table.weights_at(first).expect("occupied position"));
    }
    Some(())
}

/// Queries a key sequence (the `b` sampled points of one candidate) and
/// returns the weights common to every point, or `None` if any point fails
/// the membership test. The returned reference borrows from `scratch` — or
/// directly from the table when no copy was ever forced.
///
/// Membership of *every* key is tested before any weight set is read
/// (`I::IntoIter: Clone` pays for the second pass), so the dominant case —
/// a candidate with at least one unknown point — costs only word-level bit
/// probes, and the weight fold runs exclusively on candidates whose whole
/// sequence is present.
pub(crate) fn query_sequence_into<'s, T, I>(
    table: &'s T,
    keys: I,
    scratch: &'s mut QueryScratch,
) -> Option<&'s WeightSet>
where
    T: ProbeTable,
    I: IntoIterator<Item = u64>,
    I::IntoIter: Clone,
{
    let (family, len) = table.geometry();
    let keys = keys.into_iter();
    for key in keys.clone() {
        if !table.occupied(family.probes(key, len)) {
            return None;
        }
    }
    let mut acc = Acc::Start;
    for key in keys {
        for idx in family.probes(key, len) {
            match acc {
                Acc::Start => match table.set_at(idx) {
                    Some(set) => acc = Acc::Borrowed(set),
                    None => {
                        scratch
                            .acc
                            .assign_sorted(table.weights_at(idx).expect("occupied position"));
                        acc = Acc::Owned;
                    }
                },
                Acc::Borrowed(first) => {
                    match table.set_at(idx) {
                        Some(set) if std::ptr::eq(set, first) => continue,
                        Some(set) => scratch.acc.assign_intersection(first, set),
                        None => scratch.acc.assign_intersection_sorted(
                            first,
                            table.weights_at(idx).expect("occupied position"),
                        ),
                    }
                    acc = Acc::Owned;
                    if scratch.acc.is_empty() {
                        return Some(&scratch.acc);
                    }
                }
                Acc::Owned => {
                    scratch
                        .acc
                        .intersect_with_sorted(table.weights_at(idx).expect("occupied position"));
                    if scratch.acc.is_empty() {
                        return Some(&scratch.acc);
                    }
                }
            }
        }
    }
    match acc {
        Acc::Start => None,
        Acc::Borrowed(set) => Some(set),
        Acc::Owned => Some(&scratch.acc),
    }
}

/// The weight fold of [`query_sequence_into`] over probe positions hashed
/// ahead of time, all already known to be occupied (the caller ran the
/// mask membership pre-test). Returns `None` for an empty probe set,
/// mirroring the empty-sequence contract.
pub(crate) fn fold_weights_at<'s, T: ProbeTable>(
    table: &'s T,
    indices: &[u32],
    scratch: &'s mut QueryScratch,
) -> Option<&'s WeightSet> {
    let mut acc = Acc::Start;
    for &idx in indices {
        let idx = idx as usize;
        match acc {
            Acc::Start => match table.set_at(idx) {
                Some(set) => acc = Acc::Borrowed(set),
                None => {
                    scratch
                        .acc
                        .assign_sorted(table.weights_at(idx).expect("occupied position"));
                    acc = Acc::Owned;
                }
            },
            Acc::Borrowed(first) => {
                match table.set_at(idx) {
                    Some(set) if std::ptr::eq(set, first) => continue,
                    Some(set) => scratch.acc.assign_intersection(first, set),
                    None => scratch.acc.assign_intersection_sorted(
                        first,
                        table.weights_at(idx).expect("occupied position"),
                    ),
                }
                acc = Acc::Owned;
                if scratch.acc.is_empty() {
                    return Some(&scratch.acc);
                }
            }
            Acc::Owned => {
                scratch
                    .acc
                    .intersect_with_sorted(table.weights_at(idx).expect("occupied position"));
                if scratch.acc.is_empty() {
                    return Some(&scratch.acc);
                }
            }
        }
    }
    match acc {
        Acc::Start => None,
        Acc::Borrowed(set) => Some(set),
        Acc::Owned => Some(&scratch.acc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_key_matches_compute_and_partitions_by_key() {
        let family = HashFamily::new(6, 9);
        let keys = [3u64, 17, 17, 99];
        let mut whole = PrecomputedProbes::new();
        whole.compute(&family, 4096, &keys);
        let mut incremental = PrecomputedProbes::new();
        for &k in &keys {
            incremental.push_key(&family, 4096, k);
        }
        assert_eq!(whole.indices(), incremental.indices());
        assert_eq!(whole.words(), incremental.words());
        assert_eq!(whole.mask_bits(), incremental.mask_bits());
        assert_eq!(whole.key_count(), keys.len());
        // Per-key runs tile the arrays and reproduce each key's own probes,
        // independent of what was pushed before them.
        let mut at = 0;
        for (j, &k) in keys.iter().enumerate() {
            let (w, m) = whole.key_masks(j);
            assert_eq!(w.len(), m.len());
            assert_eq!(w, &whole.words()[at..at + w.len()]);
            at += w.len();
            let mut solo = PrecomputedProbes::new();
            solo.push_key(&family, 4096, k);
            assert_eq!(w, solo.words());
            assert_eq!(m, solo.mask_bits());
        }
        assert_eq!(at, whole.words().len());
        whole.clear();
        assert!(whole.is_empty());
        assert_eq!(whole.key_count(), 0);
    }
}
