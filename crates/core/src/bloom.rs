//! The classic Bloom filter (Bloom, 1970) — the paper's baseline.
//!
//! DI-matching's `BF` comparison method (Section V-A) runs the same
//! distributed protocol with this unweighted filter: membership only, no
//! per-bit weight queues, and therefore no way to tell a global-pattern match
//! from a local-pattern match, and no weight-consistency rejection of false
//! positives.

use crate::bitset::BitSet;
use crate::error::Result;
use crate::hash::HashFamily;
use crate::params::FilterParams;

/// A classic Bloom filter over `u64` keys.
///
/// Guarantees no false negatives; false positives occur with probability
/// approaching [`FilterParams::false_positive_rate`].
///
/// # Examples
///
/// ```
/// use dipm_core::{BloomFilter, FilterParams};
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let params = FilterParams::optimal(100, 0.01)?;
/// let mut filter = BloomFilter::new(params, 7);
/// filter.insert(42);
/// assert!(filter.contains(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BloomFilter {
    bits: BitSet,
    family: HashFamily,
    inserted: u64,
}

impl BloomFilter {
    /// Creates an empty filter with the given geometry and hash seed.
    ///
    /// The seed must match between the encoder (data center) and every
    /// decoder (base station); it travels in the wire header.
    pub fn new(params: FilterParams, seed: u64) -> BloomFilter {
        BloomFilter {
            bits: BitSet::new(params.bits()),
            family: HashFamily::new(params.hashes(), seed),
            inserted: 0,
        }
    }

    pub(crate) fn from_parts(bits: BitSet, family: HashFamily, inserted: u64) -> BloomFilter {
        BloomFilter {
            bits,
            family,
            inserted,
        }
    }

    /// Inserts `key`, returning `true` if at least one bit was newly set
    /// (i.e. the key was definitely not present before).
    pub fn insert(&mut self, key: u64) -> bool {
        let m = self.bits.len();
        let mut newly = false;
        for idx in self.family.probes(key, m) {
            newly |= self.bits.set(idx);
        }
        self.inserted += 1;
        newly
    }

    /// Whether `key` may have been inserted (no false negatives).
    ///
    /// Probes at word level through the active
    /// [`Kernel`](crate::Kernel), so routing-tree descent
    /// ([`may_contain_any`](BloomFilter::may_contain_any)) inherits the
    /// vectorized membership test.
    pub fn contains(&self, key: u64) -> bool {
        let m = self.bits.len();
        self.bits.contains_probes(self.family.probes(key, m))
    }

    /// The number of insert operations performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The filter length in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// The number of hash functions.
    pub fn hashes(&self) -> u16 {
        self.family.hashes()
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// The theoretical false-positive probability at the current load.
    pub fn estimated_fpp(&self) -> f64 {
        // Use the observed fill ratio, which is exact, rather than the
        // expected ratio from the insert count.
        self.bits.fill_ratio().powi(self.family.hashes() as i32)
    }

    /// Merges another filter built with identical geometry and seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleFilters`](crate::CoreError) if the
    /// geometry or seed differs.
    pub fn union_with(&mut self, other: &BloomFilter) -> Result<()> {
        if self.family != other.family {
            return Err(crate::error::CoreError::IncompatibleFilters);
        }
        self.bits.union_with(&other.bits)?;
        self.inserted += other.inserted;
        Ok(())
    }

    /// Merges this filter into `dst` — the union direction a routing tree
    /// uses when folding children into their parent summary.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleFilters`](crate::CoreError) if the
    /// geometry or seed differs.
    pub fn union_into(&self, dst: &mut BloomFilter) -> Result<()> {
        dst.union_with(self)
    }

    /// Whether **any** of `keys` may have been inserted — the routing-tree
    /// subtree test. No false negatives: if any key was inserted into this
    /// filter (or any filter unioned into it), this returns `true`.
    ///
    /// An empty key set trivially matches nothing.
    pub fn may_contain_any<I>(&self, keys: I) -> bool
    where
        I: IntoIterator<Item = u64>,
    {
        keys.into_iter().any(|key| self.contains(key))
    }

    /// Borrows the underlying bit set.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BloomFilter {
        BloomFilter::new(FilterParams::new(1 << 12, 4).unwrap(), 11)
    }

    #[test]
    fn no_false_negatives() {
        let mut f = small();
        for key in 0..500u64 {
            f.insert(key * 7919);
        }
        for key in 0..500u64 {
            assert!(f.contains(key * 7919));
        }
    }

    #[test]
    fn insert_returns_newness() {
        let mut f = small();
        assert!(f.insert(1));
        assert!(!f.insert(1));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = small();
        assert!(!f.contains(0));
        assert!(!f.contains(u64::MAX));
        assert_eq!(f.inserted(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn observed_fpp_close_to_theory() {
        let params = FilterParams::optimal(1000, 0.02).unwrap();
        let mut f = BloomFilter::new(params, 3);
        for key in 0..1000u64 {
            f.insert(key);
        }
        let mut false_positives = 0;
        let probes = 20_000u64;
        for key in 1_000_000..1_000_000 + probes {
            if f.contains(key) {
                false_positives += 1;
            }
        }
        let observed = false_positives as f64 / probes as f64;
        // Theory says ~2%; accept up to 2x (small-sample noise).
        assert!(observed < 0.04, "observed fpp {observed}");
    }

    #[test]
    fn union_merges_membership() {
        let mut a = small();
        let mut b = small();
        a.insert(1);
        b.insert(2);
        a.union_with(&b).unwrap();
        assert!(a.contains(1));
        assert!(a.contains(2));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn union_rejects_different_seed() {
        let mut a = small();
        let b = BloomFilter::new(FilterParams::new(1 << 12, 4).unwrap(), 12);
        assert!(a.union_with(&b).is_err());
    }

    #[test]
    fn union_rejects_different_geometry() {
        let mut a = small();
        let b = BloomFilter::new(FilterParams::new(1 << 11, 4).unwrap(), 11);
        assert!(a.union_with(&b).is_err());
    }

    #[test]
    fn may_contain_any_is_an_existential_contains() {
        let mut f = small();
        f.insert(10);
        f.insert(20);
        assert!(f.may_contain_any([999, 20]));
        assert!(f.may_contain_any([10]));
        assert!(
            !f.may_contain_any([] as [u64; 0]),
            "empty set matches nothing"
        );
        // A union keeps every constituent reachable.
        let mut g = small();
        g.insert(30);
        g.union_into(&mut f).unwrap();
        assert!(f.may_contain_any([30]));
        // Incompatible union direction errors symmetrically.
        let other_seed = BloomFilter::new(FilterParams::new(1 << 12, 4).unwrap(), 99);
        assert!(other_seed.union_into(&mut f).is_err());
    }

    #[test]
    fn order_insensitive_membership() {
        // A plain BF cannot distinguish {1,2,3} from {3,2,1}: this is exactly
        // the weakness the paper's accumulation + WBF design addresses.
        let mut f = small();
        for v in [1u64, 2, 3] {
            f.insert(v);
        }
        assert!([3u64, 2, 1].iter().all(|&v| f.contains(v)));
    }
}
