//! Word-level probe kernel: runtime-dispatched SIMD batch membership tests
//! and the cache-line-aligned word storage that backs [`crate::BitSet`].
//!
//! A Bloom-family probe reduces to "are all of these (word, mask) pairs
//! fully set?". The scan hot path asks that question millions of times per
//! second, so this module answers it 2–4 pairs per instruction where the
//! host allows:
//!
//! * **avx2** — gathers four words per step and compares four masks at once,
//! * **sse2** — packs two words per step (baseline on every x86_64),
//! * **scalar** — portable u64-chunked fallback, four pairs per loop with a
//!   single OR-combined verdict so the compiler can keep them in registers.
//!
//! The variant is picked **once per process** by [`Kernel::active`] and can
//! be forced down to the portable path with `DIPM_FORCE_SCALAR=1` — the
//! equivalence tests and CI's fallback arm rely on that override. Every
//! variant computes the exact same predicate; the SIMD entry points
//! re-verify CPU support and slice bounds before touching an intrinsic, so
//! even a deliberately mismatched [`Kernel`] value degrades to the scalar
//! path instead of undefined behaviour.
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`): the intrinsic calls and the
//! aligned-storage slice casts live here and nowhere else.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// One 64-byte cache line of filter words.
///
/// `repr(C, align(64))` makes the array exactly one cache line with no
/// padding, so a `Vec<CacheLine>` is a contiguous, 64-byte-aligned `[u64]`
/// region — gathers never straddle lines unnecessarily and the hot filter
/// words start on a line boundary.
#[derive(Clone)]
#[repr(C, align(64))]
struct CacheLine([u64; 8]);

const WORDS_PER_LINE: usize = 8;

/// Cache-line-aligned `u64` storage for filter words.
///
/// Behaves like a fixed-length `Vec<u64>` whose backing allocation is
/// 64-byte aligned. The probe kernel reads it through [`Self::as_slice`];
/// equality, hashing and debugging all see exactly the logical words.
pub struct AlignedWords {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedWords {
    /// `len` zeroed words.
    pub fn zeroed(len: usize) -> AlignedWords {
        let lines = len.div_ceil(WORDS_PER_LINE);
        AlignedWords {
            lines: vec![CacheLine([0; WORDS_PER_LINE]); lines],
            len,
        }
    }

    /// Copies `words` into aligned storage.
    pub fn from_words(words: &[u64]) -> AlignedWords {
        let mut aligned = AlignedWords::zeroed(words.len());
        aligned.as_mut_slice().copy_from_slice(words);
        aligned
    }

    /// The number of logical words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no words at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The words as a contiguous slice.
    pub fn as_slice(&self) -> &[u64] {
        // SAFETY: `CacheLine` is `repr(C, align(64))` around `[u64; 8]` —
        // size 64, no padding — so the `Vec<CacheLine>` buffer is a
        // contiguous `[u64]` region of `lines.len() * 8` elements, of which
        // the first `self.len` are the logical words (`len <= lines * 8` by
        // construction). The pointer cast only lowers the alignment
        // requirement.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<u64>(), self.len) }
    }

    /// The words as a mutable contiguous slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        // SAFETY: as in `as_slice`; the mutable borrow of `self` guarantees
        // exclusive access to the buffer.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<u64>(), self.len) }
    }
}

impl Clone for AlignedWords {
    fn clone(&self) -> AlignedWords {
        AlignedWords {
            lines: self.lines.clone(),
            len: self.len,
        }
    }
}

impl PartialEq for AlignedWords {
    fn eq(&self, other: &AlignedWords) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AlignedWords {}

impl std::hash::Hash for AlignedWords {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for AlignedWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// The probe-kernel variant in effect.
///
/// [`Kernel::active`] picks the widest supported variant once per process;
/// individual variants stay callable so equivalence tests can pit them
/// against each other inside a single process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// 256-bit gather + compare, four (word, mask) pairs per step.
    Avx2,
    /// 128-bit packed compare, two pairs per step (x86_64 baseline).
    Sse2,
    /// Portable u64 fallback, four pairs per unrolled loop.
    Scalar,
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// Batch length below which every variant routes to the scalar loop: at
/// fewer pairs than this the per-call SIMD setup (bounds pre-scan, gather
/// latency) costs more than it saves, measured on the scan microbench's
/// per-key membership tests.
const SIMD_MIN_PAIRS: usize = 16;

fn detect() -> Kernel {
    if std::env::var_os("DIPM_FORCE_SCALAR").is_some_and(|v| v == "1") {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return Kernel::Sse2;
        }
    }
    Kernel::Scalar
}

impl Kernel {
    /// The variant every probe in this process dispatches to, selected once
    /// (widest supported, or [`Kernel::Scalar`] when `DIPM_FORCE_SCALAR=1`).
    pub fn active() -> Kernel {
        *ACTIVE.get_or_init(detect)
    }

    /// The variant's wire-stable name (`"avx2"` / `"sse2"` / `"scalar"`),
    /// recorded in benchmark metadata so regression checks compare
    /// like-for-like.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Scalar => "scalar",
        }
    }

    /// Whether `words[idx[i]] & masks[i] == masks[i]` holds for every `i` —
    /// the batched "all probed bits set" membership test.
    ///
    /// `idx` and `masks` must be the same length. Out-of-range indices take
    /// the scalar path and panic exactly like safe slice indexing would.
    pub fn all_set(self, words: &[u64], idx: &[u32], masks: &[u64]) -> bool {
        debug_assert_eq!(idx.len(), masks.len());
        let n = idx.len().min(masks.len());
        let (idx, masks) = (&idx[..n], &masks[..n]);
        // Tiny runs — a single key's k merged probes — cannot amortize the
        // gather setup or the bounds pre-scan; the scalar loop with its
        // first-miss short-circuit wins outright. SIMD engages only on
        // multi-key batches (whole-row membership, routing fan-out).
        if n < SIMD_MIN_PAIRS {
            return all_set_scalar(words, idx, masks);
        }
        #[cfg(target_arch = "x86_64")]
        {
            if self != Kernel::Scalar && idx.iter().all(|&w| (w as usize) < words.len()) {
                match self {
                    Kernel::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                        // SAFETY: avx2 is supported (checked above) and every
                        // index is in bounds for `words`.
                        return unsafe { all_set_avx2(words, idx, masks) };
                    }
                    Kernel::Sse2 if std::arch::is_x86_feature_detected!("sse2") => {
                        // SAFETY: sse2 is supported (checked above) and every
                        // index is in bounds for `words`.
                        return unsafe { all_set_sse2(words, idx, masks) };
                    }
                    _ => {}
                }
            }
        }
        all_set_scalar(words, idx, masks)
    }
}

/// Portable kernel: four pairs per iteration with one OR-combined verdict,
/// so a conforming batch runs branch-free through the unrolled body.
fn all_set_scalar(words: &[u64], idx: &[u32], masks: &[u64]) -> bool {
    let n = idx.len();
    let mut i = 0;
    while i + 4 <= n {
        let a = (words[idx[i] as usize] & masks[i]) ^ masks[i];
        let b = (words[idx[i + 1] as usize] & masks[i + 1]) ^ masks[i + 1];
        let c = (words[idx[i + 2] as usize] & masks[i + 2]) ^ masks[i + 2];
        let d = (words[idx[i + 3] as usize] & masks[i + 3]) ^ masks[i + 3];
        if a | b | c | d != 0 {
            return false;
        }
        i += 4;
    }
    while i < n {
        let m = masks[i];
        if words[idx[i] as usize] & m != m {
            return false;
        }
        i += 1;
    }
    true
}

/// AVX2 kernel: gather four words by index, AND with four masks, compare
/// for 64-bit equality in one shot.
///
/// # Safety
///
/// Requires avx2; every `idx` entry must be in bounds for `words`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn all_set_avx2(words: &[u64], idx: &[u32], masks: &[u64]) -> bool {
    use std::arch::x86_64::*;
    let n = idx.len();
    let base = words.as_ptr().cast::<i64>();
    let mut i = 0;
    while i + 4 <= n {
        // Word indices are < 2^26 (MAX_BITS / 64), so they are positive as
        // i32 gather offsets; scale 8 converts to byte offsets.
        let vidx = _mm_loadu_si128(idx.as_ptr().add(i).cast());
        let gathered = _mm256_i32gather_epi64::<8>(base, vidx);
        let vmask = _mm256_loadu_si256(masks.as_ptr().add(i).cast());
        let eq = _mm256_cmpeq_epi64(_mm256_and_si256(gathered, vmask), vmask);
        if _mm256_movemask_epi8(eq) != -1 {
            return false;
        }
        i += 4;
    }
    while i < n {
        let m = *masks.get_unchecked(i);
        if *words.get_unchecked(*idx.get_unchecked(i) as usize) & m != m {
            return false;
        }
        i += 1;
    }
    true
}

/// SSE2 kernel: two (word, mask) pairs per 128-bit compare. SSE2 has no
/// 64-bit equality compare, but a 32-bit compare whose mask is all-ones is
/// equivalent: both halves of each word must match.
///
/// # Safety
///
/// Requires sse2; every `idx` entry must be in bounds for `words`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn all_set_sse2(words: &[u64], idx: &[u32], masks: &[u64]) -> bool {
    use std::arch::x86_64::*;
    let n = idx.len();
    let mut i = 0;
    while i + 2 <= n {
        let w0 = *words.get_unchecked(*idx.get_unchecked(i) as usize);
        let w1 = *words.get_unchecked(*idx.get_unchecked(i + 1) as usize);
        let vw = _mm_set_epi64x(w1 as i64, w0 as i64);
        let vmask = _mm_loadu_si128(masks.as_ptr().add(i).cast());
        let eq = _mm_cmpeq_epi32(_mm_and_si128(vw, vmask), vmask);
        if _mm_movemask_epi8(eq) != 0xFFFF {
            return false;
        }
        i += 2;
    }
    if i < n {
        let m = *masks.get_unchecked(i);
        if *words.get_unchecked(*idx.get_unchecked(i) as usize) & m != m {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_words() -> Vec<u64> {
        (0..64u64).map(|i| crate::hash::mix64(i ^ 0xD1F7)).collect()
    }

    fn variants() -> Vec<Kernel> {
        vec![Kernel::Avx2, Kernel::Sse2, Kernel::Scalar]
    }

    #[test]
    fn aligned_words_round_trip_and_alignment() {
        let src: Vec<u64> = (0..37).map(|i| i * 0x9E37).collect();
        let aligned = AlignedWords::from_words(&src);
        assert_eq!(aligned.as_slice(), &src[..]);
        assert_eq!(aligned.len(), 37);
        assert!(!aligned.is_empty());
        assert_eq!(aligned.as_slice().as_ptr() as usize % 64, 0);
        let empty = AlignedWords::zeroed(0);
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn aligned_words_equality_ignores_line_padding() {
        // 9 words occupy two lines; the second line's tail is padding.
        let a = AlignedWords::from_words(&[1u64; 9]);
        let mut b = AlignedWords::zeroed(9);
        b.as_mut_slice().fill(1);
        assert_eq!(a, b);
        assert_eq!(a.clone(), a);
        assert_ne!(a, AlignedWords::from_words(&[1u64; 8]));
    }

    #[test]
    fn every_variant_computes_the_same_predicate() {
        let words = sample_words();
        // Exhaustive small cases (these exercise the short-run scalar
        // route), plus lengths past SIMD_MIN_PAIRS covering every SIMD
        // batch-length remainder.
        for len in (0..=9usize).chain(SIMD_MIN_PAIRS..SIMD_MIN_PAIRS + 9) {
            for trial in 0..50u64 {
                let mut idx = Vec::new();
                let mut masks = Vec::new();
                for j in 0..len {
                    let h = crate::hash::mix64(trial * 131 + j as u64);
                    idx.push((h % words.len() as u64) as u32);
                    // Bias towards masks that pass so both outcomes occur.
                    let word = words[*idx.last().unwrap() as usize];
                    masks.push(if h & 1 == 0 { word & (h >> 8) } else { h >> 8 });
                }
                let expected = idx
                    .iter()
                    .zip(&masks)
                    .all(|(&w, &m)| words[w as usize] & m == m);
                for kernel in variants() {
                    assert_eq!(
                        kernel.all_set(&words, &idx, &masks),
                        expected,
                        "{} diverged on len {len} trial {trial}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_vacuously_true() {
        for kernel in variants() {
            assert!(kernel.all_set(&sample_words(), &[], &[]));
        }
    }

    #[test]
    fn zero_mask_always_passes() {
        let words = vec![0u64; 8];
        for kernel in variants() {
            assert!(kernel.all_set(&words, &[0, 7, 3, 5, 1], &[0; 5]));
        }
    }

    #[test]
    fn active_is_stable_and_named() {
        let a = Kernel::active();
        assert_eq!(a, Kernel::active());
        assert!(["avx2", "sse2", "scalar"].contains(&a.name()));
        if std::env::var_os("DIPM_FORCE_SCALAR").is_some_and(|v| v == "1") {
            assert_eq!(a, Kernel::Scalar);
        }
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_range_index_panics_like_slice_indexing() {
        let words = vec![u64::MAX; 4];
        // Even the widest kernel must not gather out of bounds: the entry
        // point routes this batch to the scalar path, which panics exactly
        // like `words[idx]` would.
        Kernel::active().all_set(&words, &[0, 99], &[1, 1]);
    }
}
