//! Small ordered sets of weights attached to filter bits.
//!
//! Every set bit of a [`WeightedBloomFilter`](crate::WeightedBloomFilter)
//! carries the weights of the values that set it (the paper's "pointer to a
//! queue of weights"). Matching intersects these sets across all probed bits;
//! a candidate survives only if a single common weight remains.

use std::fmt;

use crate::weight::Weight;

/// An ordered, duplicate-free set of [`Weight`]s.
///
/// Backed by a sorted `Vec`: the sets are tiny in practice (one entry per
/// distinct pattern weight that touched a bit), so a flat vector beats tree
/// or hash structures on both memory and intersection speed.
///
/// # Examples
///
/// ```
/// use dipm_core::{Weight, WeightSet};
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let mut a = WeightSet::new();
/// a.insert(Weight::new(1, 3)?);
/// a.insert(Weight::ONE);
///
/// let mut b = WeightSet::new();
/// b.insert(Weight::new(1, 3)?);
///
/// let common = a.intersection(&b);
/// assert_eq!(common.len(), 1);
/// assert_eq!(common.max(), Some(Weight::new(1, 3)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightSet {
    sorted: Vec<Weight>,
}

impl WeightSet {
    /// Creates an empty set.
    pub fn new() -> WeightSet {
        WeightSet { sorted: Vec::new() }
    }

    /// Creates a set holding a single weight.
    pub fn singleton(weight: Weight) -> WeightSet {
        WeightSet {
            sorted: vec![weight],
        }
    }

    /// The number of distinct weights in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set holds no weights.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Inserts `weight`, returning `true` if it was not already present.
    pub fn insert(&mut self, weight: Weight) -> bool {
        match self.sorted.binary_search(&weight) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, weight);
                true
            }
        }
    }

    /// Whether `weight` is present.
    pub fn contains(&self, weight: Weight) -> bool {
        self.sorted.binary_search(&weight).is_ok()
    }

    /// The largest weight, i.e. the most-complete pattern match, if any.
    pub fn max(&self) -> Option<Weight> {
        self.sorted.last().copied()
    }

    /// The smallest weight, if any. Base stations report this one when the
    /// intersection is ambiguous: tolerance bands of nested combinations
    /// overlap, and under-reporting only lowers a true candidate's rank,
    /// whereas over-reporting inflates its weight sum past 1 and gets it
    /// wrongly deleted by Algorithm 3.
    pub fn min(&self) -> Option<Weight> {
        self.sorted.first().copied()
    }

    /// The weights common to `self` and `other`, as a new set.
    pub fn intersection(&self, other: &WeightSet) -> WeightSet {
        let mut out = WeightSet::new();
        out.assign_intersection(self, other);
        out
    }

    /// Retains only weights also present in `other` (in-place intersection).
    ///
    /// Allocation-free: surviving weights are compacted to the front and the
    /// vector truncated, so the hot probe loop never touches the heap.
    pub fn intersect_with(&mut self, other: &WeightSet) {
        self.intersect_with_sorted(other.iter());
    }

    /// Retains only weights also produced by `other`, which must yield
    /// weights in strictly ascending order (as all set iterators here do).
    /// Allocation-free in-place compaction.
    pub(crate) fn intersect_with_sorted<I>(&mut self, mut other: I)
    where
        I: Iterator<Item = Weight>,
    {
        let mut write = 0;
        let mut candidate = other.next();
        for read in 0..self.sorted.len() {
            let w = self.sorted[read];
            while let Some(c) = candidate {
                if c < w {
                    candidate = other.next();
                } else {
                    break;
                }
            }
            match candidate {
                Some(c) if c == w => {
                    self.sorted[write] = w;
                    write += 1;
                    candidate = other.next();
                }
                Some(_) => {}
                None => break,
            }
        }
        self.sorted.truncate(write);
    }

    /// Empties the set, keeping its capacity for reuse.
    pub fn clear(&mut self) {
        self.sorted.clear();
    }

    /// Replaces this set's contents with a copy of `other`, reusing the
    /// existing capacity.
    pub fn copy_from(&mut self, other: &WeightSet) {
        self.sorted.clear();
        self.sorted.extend_from_slice(&other.sorted);
    }

    /// Replaces this set's contents with weights yielded in strictly
    /// ascending order, reusing the existing capacity.
    pub(crate) fn assign_sorted<I>(&mut self, weights: I)
    where
        I: Iterator<Item = Weight>,
    {
        self.sorted.clear();
        self.sorted.extend(weights);
        debug_assert!(self.sorted.windows(2).all(|w| w[0] < w[1]));
    }

    /// Replaces this set's contents with the weights of `universe` selected
    /// by `mask` (bit `i` selects `universe.as_slice()[i]`), reusing the
    /// existing capacity. Ascending bit order over a sorted universe keeps
    /// the result sorted.
    pub(crate) fn assign_mask(&mut self, universe: &WeightSet, mut mask: u64) {
        self.sorted.clear();
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            self.sorted.push(universe.sorted[i]);
            mask &= mask - 1;
        }
    }

    /// Replaces this set's contents with `a ∩ b`, reusing the existing
    /// capacity.
    pub fn assign_intersection(&mut self, a: &WeightSet, b: &WeightSet) {
        self.sorted.clear();
        let (mut i, mut j) = (0, 0);
        while i < a.sorted.len() && j < b.sorted.len() {
            match a.sorted[i].cmp(&b.sorted[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.sorted.push(a.sorted[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Replaces this set's contents with `a` intersected with the weights
    /// yielded by `b` in strictly ascending order, reusing capacity.
    pub(crate) fn assign_intersection_sorted<I>(&mut self, a: &WeightSet, b: I)
    where
        I: Iterator<Item = Weight>,
    {
        self.sorted.clear();
        self.sorted.extend_from_slice(&a.sorted);
        self.intersect_with_sorted(b);
    }

    /// The weights in `self` but not in `other`, as a new set — the
    /// building block of streaming weight diffs.
    pub fn difference(&self, other: &WeightSet) -> WeightSet {
        WeightSet {
            sorted: self
                .sorted
                .iter()
                .copied()
                .filter(|&w| !other.contains(w))
                .collect(),
        }
    }

    /// Adds every weight of `other` into `self`.
    pub fn union_with(&mut self, other: &WeightSet) {
        for &w in &other.sorted {
            self.insert(w);
        }
    }

    /// Iterates over the weights in ascending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Weight>> {
        self.sorted.iter().copied()
    }

    /// Borrows the sorted backing slice.
    pub fn as_slice(&self) -> &[Weight] {
        &self.sorted
    }
}

impl FromIterator<Weight> for WeightSet {
    fn from_iter<I: IntoIterator<Item = Weight>>(iter: I) -> WeightSet {
        let mut set = WeightSet::new();
        for w in iter {
            set.insert(w);
        }
        set
    }
}

impl Extend<Weight> for WeightSet {
    fn extend<I: IntoIterator<Item = Weight>>(&mut self, iter: I) {
        for w in iter {
            self.insert(w);
        }
    }
}

impl<'a> IntoIterator for &'a WeightSet {
    type Item = Weight;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Weight>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for WeightSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.sorted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn insert_keeps_sorted_and_deduplicates() {
        let mut set = WeightSet::new();
        assert!(set.insert(w(2, 3)));
        assert!(set.insert(w(1, 3)));
        assert!(!set.insert(w(2, 6))); // equals 1/3 after reduction
        assert_eq!(set.len(), 2);
        assert_eq!(set.as_slice(), &[w(1, 3), w(2, 3)]);
    }

    #[test]
    fn contains_and_max() {
        let set: WeightSet = [w(1, 4), w(3, 4), w(1, 2)].into_iter().collect();
        assert!(set.contains(w(2, 4)));
        assert!(!set.contains(Weight::ONE));
        assert_eq!(set.max(), Some(w(3, 4)));
    }

    #[test]
    fn empty_set_behaviour() {
        let set = WeightSet::new();
        assert!(set.is_empty());
        assert_eq!(set.max(), None);
        assert_eq!(
            set.intersection(&WeightSet::singleton(Weight::ONE)).len(),
            0
        );
    }

    #[test]
    fn intersection_is_commutative_and_correct() {
        let a: WeightSet = [w(1, 4), w(1, 2), Weight::ONE].into_iter().collect();
        let b: WeightSet = [w(1, 2), Weight::ONE, w(3, 4)].into_iter().collect();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.as_slice(), &[w(1, 2), Weight::ONE]);
    }

    #[test]
    fn intersect_with_mutates_in_place() {
        let mut a: WeightSet = [w(1, 4), w(1, 2)].into_iter().collect();
        let b = WeightSet::singleton(w(1, 2));
        a.intersect_with(&b);
        assert_eq!(a.as_slice(), &[w(1, 2)]);
    }

    #[test]
    fn difference_removes_shared_weights() {
        let a: WeightSet = [w(1, 4), w(1, 2), Weight::ONE].into_iter().collect();
        let b: WeightSet = [w(1, 2)].into_iter().collect();
        assert_eq!(a.difference(&b).as_slice(), &[w(1, 4), Weight::ONE]);
        assert_eq!(b.difference(&a).len(), 0);
        assert_eq!(a.difference(&WeightSet::new()), a);
    }

    #[test]
    fn union_with_merges() {
        let mut a = WeightSet::singleton(w(1, 4));
        let b: WeightSet = [w(1, 4), w(1, 2)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.as_slice(), &[w(1, 4), w(1, 2)]);
    }

    #[test]
    fn display_lists_weights() {
        let set: WeightSet = [w(1, 2), Weight::ONE].into_iter().collect();
        assert_eq!(set.to_string(), "{1/2, 1}");
    }

    #[test]
    fn in_place_ops_match_allocating_counterparts() {
        let a: WeightSet = [w(1, 4), w(1, 2), w(2, 3), Weight::ONE]
            .into_iter()
            .collect();
        let b: WeightSet = [w(1, 2), w(3, 4), Weight::ONE].into_iter().collect();
        let expected = a.intersection(&b);

        let mut in_place = a.clone();
        in_place.intersect_with(&b);
        assert_eq!(in_place, expected);

        let mut assigned = WeightSet::singleton(w(9, 10)); // stale content
        assigned.assign_intersection(&a, &b);
        assert_eq!(assigned, expected);

        let mut assigned_iter = WeightSet::singleton(w(9, 10));
        assigned_iter.assign_intersection_sorted(&a, b.iter());
        assert_eq!(assigned_iter, expected);

        let mut copied = WeightSet::new();
        copied.copy_from(&a);
        assert_eq!(copied, a);
        copied.clear();
        assert!(copied.is_empty());

        let mut from_sorted = WeightSet::singleton(w(9, 10));
        from_sorted.assign_sorted(a.iter());
        assert_eq!(from_sorted, a);
    }

    #[test]
    fn intersect_with_sorted_handles_exhausted_iterators() {
        // Other runs dry mid-way: the tail of self must be dropped.
        let mut a: WeightSet = [w(1, 4), w(1, 2), Weight::ONE].into_iter().collect();
        a.intersect_with_sorted([w(1, 4)].into_iter());
        assert_eq!(a.as_slice(), &[w(1, 4)]);
        // Empty other empties self.
        let mut b: WeightSet = [w(1, 2)].into_iter().collect();
        b.intersect_with_sorted(std::iter::empty());
        assert!(b.is_empty());
        // Disjoint sets intersect to empty both ways.
        let mut c: WeightSet = [w(1, 3)].into_iter().collect();
        c.intersect_with_sorted([w(1, 2)].into_iter());
        assert!(c.is_empty());
    }

    #[test]
    fn extend_and_ref_into_iter() {
        let mut set = WeightSet::new();
        set.extend([w(1, 3), w(2, 3)]);
        let collected: Vec<Weight> = (&set).into_iter().collect();
        assert_eq!(collected, vec![w(1, 3), w(2, 3)]);
    }
}
