//! Small ordered sets of weights attached to filter bits.
//!
//! Every set bit of a [`WeightedBloomFilter`](crate::WeightedBloomFilter)
//! carries the weights of the values that set it (the paper's "pointer to a
//! queue of weights"). Matching intersects these sets across all probed bits;
//! a candidate survives only if a single common weight remains.

use std::fmt;

use crate::weight::Weight;

/// An ordered, duplicate-free set of [`Weight`]s.
///
/// Backed by a sorted `Vec`: the sets are tiny in practice (one entry per
/// distinct pattern weight that touched a bit), so a flat vector beats tree
/// or hash structures on both memory and intersection speed.
///
/// # Examples
///
/// ```
/// use dipm_core::{Weight, WeightSet};
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let mut a = WeightSet::new();
/// a.insert(Weight::new(1, 3)?);
/// a.insert(Weight::ONE);
///
/// let mut b = WeightSet::new();
/// b.insert(Weight::new(1, 3)?);
///
/// let common = a.intersection(&b);
/// assert_eq!(common.len(), 1);
/// assert_eq!(common.max(), Some(Weight::new(1, 3)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightSet {
    sorted: Vec<Weight>,
}

impl WeightSet {
    /// Creates an empty set.
    pub fn new() -> WeightSet {
        WeightSet { sorted: Vec::new() }
    }

    /// Creates a set holding a single weight.
    pub fn singleton(weight: Weight) -> WeightSet {
        WeightSet {
            sorted: vec![weight],
        }
    }

    /// The number of distinct weights in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set holds no weights.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Inserts `weight`, returning `true` if it was not already present.
    pub fn insert(&mut self, weight: Weight) -> bool {
        match self.sorted.binary_search(&weight) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, weight);
                true
            }
        }
    }

    /// Whether `weight` is present.
    pub fn contains(&self, weight: Weight) -> bool {
        self.sorted.binary_search(&weight).is_ok()
    }

    /// The largest weight, i.e. the most-complete pattern match, if any.
    pub fn max(&self) -> Option<Weight> {
        self.sorted.last().copied()
    }

    /// The smallest weight, if any. Base stations report this one when the
    /// intersection is ambiguous: tolerance bands of nested combinations
    /// overlap, and under-reporting only lowers a true candidate's rank,
    /// whereas over-reporting inflates its weight sum past 1 and gets it
    /// wrongly deleted by Algorithm 3.
    pub fn min(&self) -> Option<Weight> {
        self.sorted.first().copied()
    }

    /// The weights common to `self` and `other`, as a new set.
    pub fn intersection(&self, other: &WeightSet) -> WeightSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.sorted.len() && j < other.sorted.len() {
            match self.sorted[i].cmp(&other.sorted[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.sorted[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        WeightSet { sorted: out }
    }

    /// Retains only weights also present in `other` (in-place intersection).
    pub fn intersect_with(&mut self, other: &WeightSet) {
        *self = self.intersection(other);
    }

    /// The weights in `self` but not in `other`, as a new set — the
    /// building block of streaming weight diffs.
    pub fn difference(&self, other: &WeightSet) -> WeightSet {
        WeightSet {
            sorted: self
                .sorted
                .iter()
                .copied()
                .filter(|&w| !other.contains(w))
                .collect(),
        }
    }

    /// Adds every weight of `other` into `self`.
    pub fn union_with(&mut self, other: &WeightSet) {
        for &w in &other.sorted {
            self.insert(w);
        }
    }

    /// Iterates over the weights in ascending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Weight>> {
        self.sorted.iter().copied()
    }

    /// Borrows the sorted backing slice.
    pub fn as_slice(&self) -> &[Weight] {
        &self.sorted
    }
}

impl FromIterator<Weight> for WeightSet {
    fn from_iter<I: IntoIterator<Item = Weight>>(iter: I) -> WeightSet {
        let mut set = WeightSet::new();
        for w in iter {
            set.insert(w);
        }
        set
    }
}

impl Extend<Weight> for WeightSet {
    fn extend<I: IntoIterator<Item = Weight>>(&mut self, iter: I) {
        for w in iter {
            self.insert(w);
        }
    }
}

impl<'a> IntoIterator for &'a WeightSet {
    type Item = Weight;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Weight>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for WeightSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.sorted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn insert_keeps_sorted_and_deduplicates() {
        let mut set = WeightSet::new();
        assert!(set.insert(w(2, 3)));
        assert!(set.insert(w(1, 3)));
        assert!(!set.insert(w(2, 6))); // equals 1/3 after reduction
        assert_eq!(set.len(), 2);
        assert_eq!(set.as_slice(), &[w(1, 3), w(2, 3)]);
    }

    #[test]
    fn contains_and_max() {
        let set: WeightSet = [w(1, 4), w(3, 4), w(1, 2)].into_iter().collect();
        assert!(set.contains(w(2, 4)));
        assert!(!set.contains(Weight::ONE));
        assert_eq!(set.max(), Some(w(3, 4)));
    }

    #[test]
    fn empty_set_behaviour() {
        let set = WeightSet::new();
        assert!(set.is_empty());
        assert_eq!(set.max(), None);
        assert_eq!(
            set.intersection(&WeightSet::singleton(Weight::ONE)).len(),
            0
        );
    }

    #[test]
    fn intersection_is_commutative_and_correct() {
        let a: WeightSet = [w(1, 4), w(1, 2), Weight::ONE].into_iter().collect();
        let b: WeightSet = [w(1, 2), Weight::ONE, w(3, 4)].into_iter().collect();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.as_slice(), &[w(1, 2), Weight::ONE]);
    }

    #[test]
    fn intersect_with_mutates_in_place() {
        let mut a: WeightSet = [w(1, 4), w(1, 2)].into_iter().collect();
        let b = WeightSet::singleton(w(1, 2));
        a.intersect_with(&b);
        assert_eq!(a.as_slice(), &[w(1, 2)]);
    }

    #[test]
    fn difference_removes_shared_weights() {
        let a: WeightSet = [w(1, 4), w(1, 2), Weight::ONE].into_iter().collect();
        let b: WeightSet = [w(1, 2)].into_iter().collect();
        assert_eq!(a.difference(&b).as_slice(), &[w(1, 4), Weight::ONE]);
        assert_eq!(b.difference(&a).len(), 0);
        assert_eq!(a.difference(&WeightSet::new()), a);
    }

    #[test]
    fn union_with_merges() {
        let mut a = WeightSet::singleton(w(1, 4));
        let b: WeightSet = [w(1, 4), w(1, 2)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.as_slice(), &[w(1, 4), w(1, 2)]);
    }

    #[test]
    fn display_lists_weights() {
        let set: WeightSet = [w(1, 2), Weight::ONE].into_iter().collect();
        assert_eq!(set.to_string(), "{1/2, 1}");
    }

    #[test]
    fn extend_and_ref_into_iter() {
        let mut set = WeightSet::new();
        set.extend([w(1, 3), w(2, 3)]);
        let collected: Vec<Weight> = (&set).into_iter().collect();
        assert_eq!(collected, vec![w(1, 3), w(2, 3)]);
    }
}
