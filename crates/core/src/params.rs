//! Filter geometry and false-positive math.
//!
//! The classic Bloom analysis (Section II-B of the paper; Bloom 1970): after
//! inserting `n` keys into `m` bits with `k` hash functions, the probability
//! that a specific bit is still zero is `p = (1 − 1/m)^{kn} ≈ e^{−kn/m}` and
//! the false-positive probability is `q = (1 − p)^k`. The optimum is
//! `k = (m/n)·ln 2`, giving `m = −n·ln q / (ln 2)²`.

use crate::error::{CoreError, Result};

/// Maximum number of bits supported by the wire format (bit indices are
/// encoded as `u32`).
pub const MAX_BITS: usize = u32::MAX as usize;

/// Maximum number of hash functions; beyond this there is no practical gain.
pub const MAX_HASHES: u16 = 64;

/// Geometry of a Bloom or weighted Bloom filter.
///
/// # Examples
///
/// ```
/// use dipm_core::FilterParams;
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// // Size a filter for 10_000 expected keys at a 1% false-positive target.
/// let params = FilterParams::optimal(10_000, 0.01)?;
/// assert!(params.bits() >= 90_000);
/// assert_eq!(params.hashes(), 7);
/// assert!(params.false_positive_rate(10_000) <= 0.011);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilterParams {
    bits: usize,
    hashes: u16,
}

impl FilterParams {
    /// Creates explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if `bits` is zero or exceeds
    /// [`MAX_BITS`], or if `hashes` is zero or exceeds [`MAX_HASHES`].
    pub fn new(bits: usize, hashes: u16) -> Result<FilterParams> {
        if bits == 0 {
            return Err(CoreError::invalid_params("bits must be non-zero"));
        }
        if bits > MAX_BITS {
            return Err(CoreError::invalid_params(
                "bits exceed the u32 wire-format limit",
            ));
        }
        if hashes == 0 {
            return Err(CoreError::invalid_params("hash count must be non-zero"));
        }
        if hashes > MAX_HASHES {
            return Err(CoreError::invalid_params("hash count exceeds 64"));
        }
        Ok(FilterParams { bits, hashes })
    }

    /// Derives the smallest geometry meeting `target_fpp` for
    /// `expected_items` insertions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if `expected_items` is zero,
    /// `target_fpp` is outside `(0, 1)`, or the derived size exceeds
    /// [`MAX_BITS`].
    pub fn optimal(expected_items: usize, target_fpp: f64) -> Result<FilterParams> {
        if expected_items == 0 {
            return Err(CoreError::invalid_params(
                "expected item count must be non-zero",
            ));
        }
        if !(target_fpp > 0.0 && target_fpp < 1.0) {
            return Err(CoreError::invalid_params(
                "target false-positive probability must lie in (0, 1)",
            ));
        }
        let ln2 = std::f64::consts::LN_2;
        let bits_f = -(expected_items as f64) * target_fpp.ln() / (ln2 * ln2);
        let bits = bits_f.ceil() as usize;
        let bits = bits.max(8);
        if bits > MAX_BITS {
            return Err(CoreError::invalid_params(
                "derived size exceeds the u32 wire-format limit",
            ));
        }
        let k = ((bits as f64 / expected_items as f64) * ln2).round() as i64;
        let hashes = k.clamp(1, MAX_HASHES as i64) as u16;
        Ok(FilterParams { bits, hashes })
    }

    /// The filter length `m` in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The number of hash functions `k`.
    pub fn hashes(&self) -> u16 {
        self.hashes
    }

    /// Theoretical probability that a specific bit is still zero after
    /// `inserted` keys (`p` in the paper's notation).
    pub fn zero_bit_probability(&self, inserted: usize) -> f64 {
        let exponent = -((self.hashes as f64) * inserted as f64) / self.bits as f64;
        exponent.exp()
    }

    /// Theoretical false-positive probability after `inserted` keys
    /// (`q = (1 − p)^k`, the upper bound the paper's Section V validates).
    pub fn false_positive_rate(&self, inserted: usize) -> f64 {
        (1.0 - self.zero_bit_probability(inserted)).powi(self.hashes as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_one_percent_is_classic_geometry() {
        // Textbook: 1% fpp needs ~9.59 bits/key and k = 7.
        let p = FilterParams::optimal(1000, 0.01).unwrap();
        assert!((9.0..10.1).contains(&(p.bits() as f64 / 1000.0)));
        assert_eq!(p.hashes(), 7);
    }

    #[test]
    fn optimal_rejects_degenerate_inputs() {
        assert!(FilterParams::optimal(0, 0.01).is_err());
        assert!(FilterParams::optimal(10, 0.0).is_err());
        assert!(FilterParams::optimal(10, 1.0).is_err());
        assert!(FilterParams::optimal(10, -0.5).is_err());
        assert!(FilterParams::optimal(10, f64::NAN).is_err());
    }

    #[test]
    fn new_validates_bounds() {
        assert!(FilterParams::new(0, 1).is_err());
        assert!(FilterParams::new(8, 0).is_err());
        assert!(FilterParams::new(8, 65).is_err());
        assert!(FilterParams::new(8, 64).is_ok());
    }

    #[test]
    fn fpp_monotone_in_inserted_count() {
        let p = FilterParams::new(1 << 14, 5).unwrap();
        let few = p.false_positive_rate(100);
        let many = p.false_positive_rate(5000);
        assert!(few < many);
        assert!(few >= 0.0 && many <= 1.0);
    }

    #[test]
    fn empty_filter_has_zero_fpp() {
        let p = FilterParams::new(1024, 3).unwrap();
        assert_eq!(p.false_positive_rate(0), 0.0);
        assert_eq!(p.zero_bit_probability(0), 1.0);
    }

    #[test]
    fn target_fpp_is_met_at_capacity() {
        for &(n, q) in &[(100usize, 0.05f64), (10_000, 0.01), (50_000, 0.001)] {
            let p = FilterParams::optimal(n, q).unwrap();
            // Rounding k can cost a little; allow 15% slack on the target.
            assert!(
                p.false_positive_rate(n) <= q * 1.15,
                "n={n} q={q} got {}",
                p.false_positive_rate(n)
            );
        }
    }

    #[test]
    fn tiny_filters_get_floor_size() {
        let p = FilterParams::optimal(1, 0.5).unwrap();
        assert!(p.bits() >= 8);
        assert!(p.hashes() >= 1);
    }
}
