//! Core data structures for **DI-matching**, a reproduction of
//! *Distributed Incomplete Pattern Matching via a Novel Weighted Bloom
//! Filter* (Liu, Kang, Chen, Ni — IEEE ICDCS 2012).
//!
//! This crate provides the paper's central contribution and its baseline:
//!
//! * [`WeightedBloomFilter`] — a Bloom filter whose set bits carry the exact
//!   rational [`Weight`]s of the patterns that set them. Lookups succeed only
//!   when all probed bits share a common weight, which both distinguishes
//!   global-pattern matches (weight 1) from local-pattern matches
//!   (weight < 1) and rejects classic Bloom false positives stitched
//!   together from different patterns.
//! * [`CountingWbf`] — a counting variant of the weighted filter whose
//!   positions hold per-weight reference counts, supporting pattern
//!   insertion *and removal* without rebuilds — the primitive behind the
//!   streaming delta broadcasts in `dipm-protocol`.
//! * [`BloomFilter`] — the classic unweighted filter used as the paper's
//!   `BF` comparison method.
//! * [`Weight`] / [`WeightSet`] — exact rational weights with the paper's
//!   "sum of a true decomposition is exactly 1" property.
//! * [`FilterParams`] — geometry and false-positive math, and
//!   [`HashFamily`] — the seeded, deterministic k-hash family both filter
//!   variants probe with.
//! * [`encode`] — the deterministic binary wire format whose byte counts
//!   drive the paper's communication- and storage-cost figures.
//!
//! # Example
//!
//! ```
//! use dipm_core::{FilterParams, Weight, WeightedBloomFilter};
//!
//! # fn main() -> Result<(), dipm_core::CoreError> {
//! let params = FilterParams::optimal(1000, 0.01)?;
//! let mut wbf = WeightedBloomFilter::new(params, 0xD1F7);
//!
//! // Insert the accumulated points of a local pattern with weight 1/3.
//! let weight = Weight::ratio(3, 9)?;
//! for point in [1u64, 3, 6] {
//!     wbf.insert(point, weight);
//! }
//!
//! // A base station probes a candidate's points; the pattern matches and
//! // reports its weight back to the data center.
//! let matched = wbf.query_sequence([1u64, 3, 6]).expect("all bits set");
//! assert_eq!(matched.max(), Some(weight));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `unsafe` is denied crate-wide; only the probe kernel (SIMD intrinsics and
// aligned word storage) opts back in, in `kernel.rs`.
#![deny(unsafe_code)]

mod bitset;
mod bloom;
mod counting;
pub mod encode;
mod error;
mod filter;
mod hash;
mod kernel;
mod params;
mod probe;
mod view;
mod wbf;
mod weight;
mod weight_set;

pub use bitset::{BitSet, Ones};
pub use bloom::BloomFilter;
pub use counting::{CountingWbf, WeightDiff};
pub use error::{CoreError, Result};
pub use filter::FilterCore;
pub use hash::{mix64, tagged_key, HashFamily, Probes};
pub use kernel::{AlignedWords, Kernel};
pub use params::{FilterParams, MAX_BITS, MAX_HASHES};
pub use probe::{PrecomputedProbes, QueryScratch};
pub use view::WbfFrameView;
pub use wbf::WeightedBloomFilter;
pub use weight::{sum_weights, Weight};
pub use weight_set::WeightSet;
