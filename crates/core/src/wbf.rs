//! The Weighted Bloom Filter — the paper's central data structure.
//!
//! A WBF extends a Bloom filter so that "each bit with 1 … has a pointer
//! pointing to the weight of corresponding hashed values" (Section II-B).
//! Insertion attaches the inserting pattern's weight to every probed bit;
//! lookup succeeds only if all probed bits are set *and* their weight sets
//! share at least one common weight. Sharing a weight across all `b` sampled
//! points of a candidate pattern is the paper's mechanism for (a) telling
//! global-pattern matches (weight 1) from local-pattern matches (weight < 1)
//! and (b) rejecting Bloom false positives whose probed bits were set by
//! *different* patterns — e.g. `{1,4,5}` probing a filter holding `{1,2,3}`
//! and `{2,4,5}` hits only set bits but no consistent weight.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::bitset::BitSet;
use crate::counting::WeightDiff;
use crate::error::{CoreError, Result};
use crate::hash::{HashFamily, Probes};
use crate::params::FilterParams;
use crate::probe::{self, ProbeTable, QueryScratch};
use crate::weight::Weight;
use crate::weight_set::WeightSet;

/// A weighted Bloom filter over `u64` keys.
///
/// # Examples
///
/// Distinguishing a stitched-together false positive, per Section IV-B:
///
/// ```
/// use dipm_core::{FilterParams, Weight, WeightedBloomFilter};
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let params = FilterParams::new(1 << 12, 4)?;
/// let mut wbf = WeightedBloomFilter::new(params, 99);
///
/// let w1 = Weight::new(1, 3)?;
/// let w2 = Weight::new(2, 3)?;
/// for v in [1u64, 2, 3] {
///     wbf.insert(v, w1);
/// }
/// for v in [2u64, 4, 5] {
///     wbf.insert(v, w2);
/// }
///
/// // {1,4,5} hits only set bits, so a plain Bloom filter accepts it…
/// assert!([1u64, 4, 5].iter().all(|&v| wbf.contains(v)));
/// // …but no single weight is shared by all three values, so the WBF
/// // rejects it: the intersection of the points' weight sets is empty.
/// let stitched = wbf.query_sequence([1u64, 4, 5]).expect("bits are set");
/// assert!(stitched.is_empty());
/// // A genuine pattern still reports its weight.
/// assert_eq!(wbf.query_sequence([1u64, 2, 3]).map(|ws| ws.max()), Some(Some(w1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedBloomFilter {
    bits: BitSet,
    // Dense per-bit slot index into `sets`: the probe hot path resolves a
    // bit's weight set with one bounds-free load instead of a tree walk.
    // `EMPTY_SLOT` marks a bit with no weights; a slot whose set has been
    // emptied by a delta stays allocated (tombstone) and is reused when the
    // position refills.
    slots: Vec<u32>,
    sets: Vec<WeightSet>,
    family: HashFamily,
    inserted: u64,
    // Lazily computed union of every attached weight set — the score
    // universe dynamic-pruning scans bound against. Derived state: every
    // mutation path resets it, equality and the wire format ignore it.
    universe: OnceLock<WeightSet>,
    // Lazily computed fold acceleration (see `FoldTable`). Derived state
    // like `universe`: reset on every mutation, ignored by equality and the
    // wire format. `None` inside the cell means the universe is too wide
    // for the mask representation and folds take the generic path.
    fold: OnceLock<Option<FoldTable>>,
}

/// Fold acceleration for the scan hot path: each weight-set slot reduced to
/// a bitmask over the filter's (sorted) weight universe, so the per-row
/// weight fold — intersect the weight sets of every probed position — is a
/// chain of `AND`s over one `u64` with a zero early-exit, instead of up to
/// `b × k` sorted-set merges. Only built while the universe holds at most
/// 64 distinct weights; wider filters (rare — the universe is one entry per
/// distinct pattern weight) keep the generic merge fold.
#[derive(Debug, Clone)]
struct FoldTable {
    /// The sorted weight universe the mask bits index into.
    universe: WeightSet,
    /// One mask per slot in `sets`, parallel to it: bit `i` set iff the
    /// slot's set contains `universe.as_slice()[i]`.
    masks: Vec<u64>,
}

/// Sentinel in `slots` for a position carrying no weights.
const EMPTY_SLOT: u32 = u32::MAX;

impl WeightedBloomFilter {
    /// Creates an empty weighted filter with the given geometry and seed.
    pub fn new(params: FilterParams, seed: u64) -> WeightedBloomFilter {
        WeightedBloomFilter {
            bits: BitSet::new(params.bits()),
            slots: vec![EMPTY_SLOT; params.bits()],
            sets: Vec::new(),
            family: HashFamily::new(params.hashes(), seed),
            inserted: 0,
            universe: OnceLock::new(),
            fold: OnceLock::new(),
        }
    }

    pub(crate) fn from_parts(
        bits: BitSet,
        weights: BTreeMap<u32, WeightSet>,
        family: HashFamily,
        inserted: u64,
    ) -> Result<WeightedBloomFilter> {
        let mut slots = vec![EMPTY_SLOT; bits.len()];
        let mut sets = Vec::with_capacity(weights.len());
        for (idx, set) in weights {
            if idx as usize >= bits.len() {
                return Err(CoreError::decode("weight entry beyond filter length"));
            }
            if !bits.get(idx as usize) {
                return Err(CoreError::decode("weight entry on an unset bit"));
            }
            if set.is_empty() {
                return Err(CoreError::decode("empty weight set entry"));
            }
            slots[idx as usize] = sets.len() as u32;
            sets.push(set);
        }
        Ok(WeightedBloomFilter {
            bits,
            slots,
            sets,
            family,
            inserted,
            universe: OnceLock::new(),
            fold: OnceLock::new(),
        })
    }

    /// The weight set slot for `bit`, allocating (or reusing a tombstoned)
    /// slot on first attachment.
    fn set_mut_or_insert(&mut self, bit: usize) -> &mut WeightSet {
        let slot = match self.slots[bit] {
            EMPTY_SLOT => {
                let slot = self.sets.len() as u32;
                self.sets.push(WeightSet::new());
                self.slots[bit] = slot;
                slot
            }
            slot => slot,
        };
        &mut self.sets[slot as usize]
    }

    /// Iterates `(bit, weight set)` over every position carrying weights, in
    /// ascending bit order — the canonical order the wire encoding and
    /// equality rely on.
    pub(crate) fn weight_positions(&self) -> impl Iterator<Item = (u32, &WeightSet)> {
        self.slots.iter().enumerate().filter_map(|(idx, &slot)| {
            if slot == EMPTY_SLOT {
                return None;
            }
            let set = &self.sets[slot as usize];
            (!set.is_empty()).then_some((idx as u32, set))
        })
    }

    /// Inserts `key` carrying `weight`: sets all `k` probed bits and attaches
    /// the weight to each.
    pub fn insert(&mut self, key: u64, weight: Weight) {
        let m = self.bits.len();
        for idx in self.family.probes(key, m) {
            self.bits.set(idx);
            self.set_mut_or_insert(idx).insert(weight);
        }
        self.inserted += 1;
        self.universe.take();
        self.fold.take();
    }

    /// Pure membership test (ignores weights): whether all probed bits are
    /// set. Matches classic Bloom semantics — no false negatives.
    pub fn contains(&self, key: u64) -> bool {
        let m = self.bits.len();
        self.bits.contains_probes(self.family.probes(key, m))
    }

    /// Queries a single key: `None` if any probed bit is unset, otherwise the
    /// intersection of the probed bits' weight sets (Algorithm 2, lines 4–9).
    ///
    /// An empty returned set means the bits were set but by values of
    /// inconsistent weights — the candidate is rejected. Membership is
    /// tested across *all* probed bits (word-level) before any weight set is
    /// read, so a miss never touches the weight table.
    ///
    /// Allocates the result; the scan hot path uses
    /// [`WeightedBloomFilter::query_into`] with a reused buffer instead.
    pub fn query(&self, key: u64) -> Option<WeightSet> {
        let mut out = WeightSet::new();
        probe::query_into(self, key, &mut out).map(|()| out)
    }

    /// Allocation-free [`WeightedBloomFilter::query`]: the intersection is
    /// written into `out` (cleared and overwritten, capacity reused). The
    /// first occupied probe is borrowed from the filter; only a second
    /// distinct probe copies anything.
    pub fn query_into(&self, key: u64, out: &mut WeightSet) -> Option<()> {
        probe::query_into(self, key, out)
    }

    /// Queries a sequence of keys (the `b` sampled points of one candidate
    /// pattern) and returns the weights common to *every* point, or `None`
    /// if any point misses entirely (Algorithm 2, lines 3–15).
    ///
    /// The caller accepts the candidate iff the result is `Some` of a
    /// non-empty set; [`WeightSet::max`] is then the reported weight.
    ///
    /// Allocates the result; the scan hot path uses
    /// [`WeightedBloomFilter::query_sequence_into`] with reusable scratch.
    pub fn query_sequence<I>(&self, keys: I) -> Option<WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        let mut scratch = QueryScratch::new();
        self.query_sequence_into(keys, &mut scratch).cloned()
    }

    /// Allocation-free [`WeightedBloomFilter::query_sequence`]: the running
    /// intersection lives in `scratch` (capacity reused across calls) and
    /// the result borrows from it — or directly from the filter when a
    /// single position's set *is* the answer, in which case nothing is
    /// copied at all.
    pub fn query_sequence_into<'s, I>(
        &'s self,
        keys: I,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        probe::query_sequence_into(self, keys, scratch)
    }

    /// [`WeightedBloomFilter::query_sequence_into`] over a probe set hashed
    /// once via [`PrecomputedProbes`](crate::PrecomputedProbes): membership
    /// is tested with the precomputed word masks in one batched pass, and
    /// the weight fold replays the stored indices — no re-hashing. Batch
    /// scans use this to probe one row against many sections sharing this
    /// filter's geometry.
    ///
    /// `pre` must have been computed against an identical `(hash family,
    /// bit length)` geometry; results are then exactly those of
    /// `query_sequence_into` over the same keys.
    pub fn query_precomputed<'s>(
        &'s self,
        pre: &crate::probe::PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        if pre.is_empty() || !self.bits.contains_probes_simd(pre.words(), pre.mask_bits()) {
            return None;
        }
        self.fold_weights_precomputed(pre, scratch)
    }

    /// The weight fold of [`WeightedBloomFilter::query_precomputed`] alone,
    /// for scans that already verified membership of every key (e.g. key by
    /// key via [`PrecomputedProbes::key_masks`](crate::PrecomputedProbes::key_masks)
    /// and [`BitSet::contains_probes_simd`](crate::BitSet::contains_probes_simd)).
    /// Returns `None` for an empty probe set.
    ///
    /// # Panics
    ///
    /// May panic if any precomputed probe index is unoccupied — run the
    /// membership test first.
    pub fn fold_weights_precomputed<'s>(
        &'s self,
        pre: &crate::probe::PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        let indices = pre.indices();
        if let Some(table) = self.fold_table() {
            if indices.is_empty() {
                return None;
            }
            // Every probed position's set as one mask over the universe:
            // the whole fold is an AND chain with a zero early-exit, and
            // the surviving intersection materializes straight from the
            // sorted universe.
            let mut mask = u64::MAX;
            for &idx in indices {
                mask &= table.masks[self.slots[idx as usize] as usize];
                if mask == 0 {
                    break;
                }
            }
            scratch.acc.assign_mask(&table.universe, mask);
            return Some(&scratch.acc);
        }
        probe::fold_weights_at(self, indices, scratch)
    }

    /// The lazily built fold acceleration table, or `None` when the weight
    /// universe exceeds the 64-weight mask width.
    fn fold_table(&self) -> Option<&FoldTable> {
        self.fold
            .get_or_init(|| {
                let universe = self.weight_universe();
                if universe.len() > 64 {
                    return None;
                }
                let masks = self
                    .sets
                    .iter()
                    .map(|set| {
                        let mut mask = 0u64;
                        for w in set.iter() {
                            let pos = universe
                                .as_slice()
                                .binary_search(&w)
                                .expect("universe contains every attached weight");
                            mask |= 1u64 << pos;
                        }
                        mask
                    })
                    .collect();
                Some(FoldTable {
                    universe: universe.clone(),
                    masks,
                })
            })
            .as_ref()
    }

    /// The number of insert operations performed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The filter length in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// The number of hash functions.
    pub fn hashes(&self) -> u16 {
        self.family.hashes()
    }

    /// The hash seed shared between data center and base stations.
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// The total number of stored `(bit, weight)` attachments — the extra
    /// storage a WBF pays over a plain Bloom filter (Fig. 4d).
    pub fn weight_entries(&self) -> usize {
        self.sets.iter().map(WeightSet::len).sum()
    }

    /// The number of distinct weights across all bits.
    pub fn distinct_weights(&self) -> usize {
        self.weight_universe().len()
    }

    /// The sorted set of every distinct weight attached anywhere in the
    /// filter — the score universe a pruning scan bounds candidates
    /// against. Any weight a query of this filter can ever report is drawn
    /// from this set, so its maximum is the section's score upper bound.
    ///
    /// Computed once per filter state and cached; [`insert`], [`union_with`]
    /// and [`apply_diff`] invalidate the cache.
    ///
    /// [`insert`]: WeightedBloomFilter::insert
    /// [`union_with`]: WeightedBloomFilter::union_with
    /// [`apply_diff`]: WeightedBloomFilter::apply_diff
    pub fn weight_universe(&self) -> &WeightSet {
        self.universe.get_or_init(|| {
            let mut all = WeightSet::new();
            for set in &self.sets {
                all.union_with(set);
            }
            all
        })
    }

    /// The largest weight any candidate could report — the static
    /// per-section score upper bound. `None` for a filter with no attached
    /// weights.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weight_universe().max()
    }

    /// Theoretical false-positive probability of the *membership* layer at
    /// the current fill; weight consistency only lowers the real rate.
    pub fn estimated_membership_fpp(&self) -> f64 {
        self.bits.fill_ratio().powi(self.family.hashes() as i32)
    }

    /// Merges another WBF built with identical geometry and seed, unioning
    /// bits and per-bit weight sets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleFilters`] if geometry or seed differ.
    pub fn union_with(&mut self, other: &WeightedBloomFilter) -> Result<()> {
        if self.family != other.family {
            return Err(CoreError::IncompatibleFilters);
        }
        self.bits.union_with(&other.bits)?;
        for (idx, set) in other.weight_positions() {
            self.set_mut_or_insert(idx as usize).union_with(set);
        }
        self.inserted += other.inserted;
        self.universe.take();
        self.fold.take();
        Ok(())
    }

    /// Applies one filter-delta entry: the [`WeightDiff`] of a single
    /// position relative to this filter's current state, as broadcast by a
    /// streaming data center maintaining a
    /// [`CountingWbf`](crate::CountingWbf).
    ///
    /// Every removed weight must currently be attached and every added
    /// weight absent — a mismatch means the station's state diverged from
    /// the baseline the center diffed against (a missed or replayed epoch)
    /// and is rejected before anything is mutated. A position whose set
    /// empties is cleared; a previously clear position gains its first
    /// weights and its bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if `bit` is outside the filter, the
    /// diff is empty, or the diff does not match the current state.
    pub fn apply_diff(&mut self, bit: u32, diff: &WeightDiff) -> Result<()> {
        let idx = bit as usize;
        if idx >= self.bits.len() {
            return Err(CoreError::decode("delta entry beyond filter length"));
        }
        if diff.is_empty() {
            return Err(CoreError::decode("empty delta entry"));
        }
        let current = match self.slots[idx] {
            EMPTY_SLOT => WeightSet::new(),
            slot => self.sets[slot as usize].clone(),
        };
        for w in &diff.removed {
            if !current.contains(w) {
                return Err(CoreError::decode(
                    "delta removes a weight the position does not carry",
                ));
            }
        }
        for w in &diff.added {
            if current.contains(w) {
                return Err(CoreError::decode(
                    "delta adds a weight the position already carries",
                ));
            }
        }
        let mut next = current.difference(&diff.removed);
        next.union_with(&diff.added);
        if next.is_empty() {
            self.bits.unset(idx);
            // Tombstone: the slot stays allocated for reuse when the
            // position refills; an empty set reads as "no weights".
            let slot = self.slots[idx];
            if slot != EMPTY_SLOT {
                self.sets[slot as usize].clear();
            }
        } else {
            self.bits.set(idx);
            *self.set_mut_or_insert(idx) = next;
        }
        self.universe.take();
        self.fold.take();
        Ok(())
    }

    /// Borrows the underlying bit set.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }
}

/// Equality is semantic — per-position weight sets in bit order — because
/// the slot layout depends on attachment order: a filter built by inserts
/// and the same filter decoded from the wire (or snapshotted from a
/// counting filter) must compare equal.
impl PartialEq for WeightedBloomFilter {
    fn eq(&self, other: &WeightedBloomFilter) -> bool {
        self.inserted == other.inserted
            && self.family == other.family
            && self.bits == other.bits
            && self.weight_positions().eq(other.weight_positions())
    }
}

impl Eq for WeightedBloomFilter {}

impl ProbeTable for WeightedBloomFilter {
    type Weights<'a> = std::iter::Copied<std::slice::Iter<'a, Weight>>;

    fn geometry(&self) -> (&HashFamily, usize) {
        (&self.family, self.bits.len())
    }

    fn occupied(&self, probes: Probes) -> bool {
        self.bits.contains_probes(probes)
    }

    fn weights_at(&self, idx: usize) -> Option<Self::Weights<'_>> {
        self.set_at(idx).map(WeightSet::iter)
    }

    fn set_at(&self, idx: usize) -> Option<&WeightSet> {
        match self.slots[idx] {
            EMPTY_SLOT => None,
            slot => {
                let set = &self.sets[slot as usize];
                (!set.is_empty()).then_some(set)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FilterParams {
        FilterParams::new(1 << 12, 4).unwrap()
    }

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn insert_then_query_returns_weight() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(42, w(1, 3));
        let set = wbf.query(42).unwrap();
        assert!(set.contains(w(1, 3)));
    }

    #[test]
    fn query_missing_key_is_none() {
        let wbf = WeightedBloomFilter::new(params(), 1);
        assert!(wbf.query(42).is_none());
        assert!(wbf.query_sequence([1u64, 2]).is_none());
    }

    #[test]
    fn query_sequence_of_nothing_is_none() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(1, Weight::ONE);
        assert!(wbf.query_sequence(std::iter::empty()).is_none());
    }

    #[test]
    fn same_key_two_weights_keeps_both() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(7, w(1, 3));
        wbf.insert(7, w(2, 3));
        let set = wbf.query(7).unwrap();
        assert!(set.contains(w(1, 3)) && set.contains(w(2, 3)));
    }

    #[test]
    fn paper_section_iv_false_positive_rejection() {
        // Patterns {1,2,3} (weight a) and {2,4,5} (weight b) are inserted;
        // the stitched pattern {1,4,5} must be rejected by weight
        // inconsistency even though its bits are all set.
        let mut wbf = WeightedBloomFilter::new(params(), 5);
        for v in [1u64, 2, 3] {
            wbf.insert(v, w(1, 2));
        }
        for v in [2u64, 4, 5] {
            wbf.insert(v, w(1, 4));
        }
        let res = wbf.query_sequence([1u64, 4, 5]);
        assert_eq!(res, Some(WeightSet::new()));
        // Both originals still match with their own weight.
        assert_eq!(
            wbf.query_sequence([1u64, 2, 3]).unwrap().max(),
            Some(w(1, 2))
        );
        assert_eq!(
            wbf.query_sequence([2u64, 4, 5]).unwrap().max(),
            Some(w(1, 4))
        );
    }

    #[test]
    fn no_false_negatives_for_inserted_sequences() {
        let mut wbf = WeightedBloomFilter::new(params(), 9);
        let seqs: Vec<Vec<u64>> = (0..50)
            .map(|i| (0..8).map(|j| (i * 1009 + j * 97) as u64).collect())
            .collect();
        for (i, seq) in seqs.iter().enumerate() {
            let weight = w(i as u64 + 1, 100);
            for &v in seq {
                wbf.insert(v, weight);
            }
        }
        for (i, seq) in seqs.iter().enumerate() {
            let weight = w(i as u64 + 1, 100);
            let res = wbf.query_sequence(seq.iter().copied()).unwrap();
            assert!(res.contains(weight), "sequence {i} lost its weight");
        }
    }

    #[test]
    fn weight_entries_counts_attachments() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        assert_eq!(wbf.weight_entries(), 0);
        wbf.insert(1, Weight::ONE);
        // k = 4 probes, possibly fewer distinct bits on collision.
        assert!(wbf.weight_entries() >= 1 && wbf.weight_entries() <= 4);
    }

    #[test]
    fn distinct_weights_across_bits() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(1, w(1, 3));
        wbf.insert(2, w(2, 3));
        wbf.insert(3, w(1, 3));
        assert_eq!(wbf.distinct_weights(), 2);
    }

    #[test]
    fn weight_universe_tracks_every_mutation_path() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        assert!(wbf.weight_universe().is_empty());
        assert_eq!(wbf.max_weight(), None);

        // Insert invalidates the cached (empty) universe.
        wbf.insert(1, w(1, 3));
        assert_eq!(wbf.weight_universe().as_slice(), &[w(1, 3)]);
        assert_eq!(wbf.max_weight(), Some(w(1, 3)));

        // Union invalidates it again.
        let mut other = WeightedBloomFilter::new(params(), 1);
        other.insert(9, w(2, 3));
        wbf.union_with(&other).unwrap();
        assert_eq!(wbf.weight_universe().as_slice(), &[w(1, 3), w(2, 3)]);

        // Delta application does too — replay a counting filter's churn.
        let mut counting = crate::counting::CountingWbf::new(params(), 1);
        counting.insert(5, Weight::ONE).unwrap();
        let mut replayed = counting.snapshot();
        assert_eq!(replayed.max_weight(), Some(Weight::ONE));
        counting.drain_dirty();
        counting.remove(5, Weight::ONE).unwrap();
        for (bit, diff) in counting.drain_dirty() {
            replayed.apply_diff(bit, &diff).unwrap();
        }
        assert!(replayed.weight_universe().is_empty());

        // A clone carries an independent, consistent cache.
        let cloned = wbf.clone();
        assert_eq!(cloned.weight_universe(), wbf.weight_universe());
    }

    #[test]
    fn precomputed_probes_match_query_sequence() {
        use crate::probe::PrecomputedProbes;
        let mut wbf = WeightedBloomFilter::new(params(), 5);
        for v in [1u64, 2, 3] {
            wbf.insert(v, w(1, 2));
        }
        for v in [2u64, 4, 5] {
            wbf.insert(v, w(1, 4));
        }
        let mut pre = PrecomputedProbes::new();
        let mut scratch_a = QueryScratch::new();
        let mut scratch_b = QueryScratch::new();
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![1, 2, 3],   // genuine match
            vec![2, 4, 5],   // genuine match, other weight
            vec![1, 4, 5],   // stitched: bits set, empty intersection
            vec![9, 10, 11], // miss
            vec![1, 9],      // partial miss
            vec![2, 2, 2],   // repeated key
        ];
        for keys in cases {
            pre.compute(
                &HashFamily::new(wbf.hashes(), wbf.seed()),
                wbf.bit_len(),
                &keys,
            );
            let fast = wbf.query_precomputed(&pre, &mut scratch_a).cloned();
            let slow = wbf
                .query_sequence_into(keys.iter().copied(), &mut scratch_b)
                .cloned();
            assert_eq!(fast, slow, "keys {keys:?}");
        }
    }

    #[test]
    fn union_merges_weights() {
        let mut a = WeightedBloomFilter::new(params(), 1);
        let mut b = WeightedBloomFilter::new(params(), 1);
        a.insert(1, w(1, 2));
        b.insert(1, w(1, 4));
        b.insert(9, Weight::ONE);
        a.union_with(&b).unwrap();
        let set = a.query(1).unwrap();
        assert!(set.contains(w(1, 2)) && set.contains(w(1, 4)));
        assert!(a.query(9).unwrap().contains(Weight::ONE));
    }

    #[test]
    fn union_rejects_mismatched_seed() {
        let mut a = WeightedBloomFilter::new(params(), 1);
        let b = WeightedBloomFilter::new(params(), 2);
        assert_eq!(a.union_with(&b), Err(CoreError::IncompatibleFilters));
    }

    #[test]
    fn contains_matches_bloom_semantics() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(10, Weight::ONE);
        assert!(wbf.contains(10));
        assert!(!wbf.contains(11) || wbf.query(11).is_some());
    }

    #[test]
    fn apply_diff_mirrors_counting_updates() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(5, w(1, 2));
        let mut counting = crate::counting::CountingWbf::new(params(), 1);
        counting.insert(5, w(1, 2)).unwrap();
        counting.drain_dirty();
        // Churn the counting side, replay its diffs onto the plain filter.
        counting.insert(9, w(1, 3)).unwrap();
        counting.remove(5, w(1, 2)).unwrap();
        for (bit, diff) in counting.drain_dirty() {
            wbf.apply_diff(bit, &diff).unwrap();
        }
        assert_eq!(wbf, counting.snapshot());
    }

    #[test]
    fn apply_diff_rejects_divergent_state() {
        let mut wbf = WeightedBloomFilter::new(params(), 1);
        wbf.insert(5, w(1, 2));
        let bit = {
            let m = wbf.bit_len();
            wbf.family.probes(5, m).next().unwrap() as u32
        };
        let before = wbf.clone();
        // Removing a weight the position never carried…
        let diff = WeightDiff {
            removed: WeightSet::singleton(w(1, 7)),
            added: WeightSet::new(),
        };
        assert!(wbf.apply_diff(bit, &diff).is_err());
        // …adding one it already carries…
        let diff = WeightDiff {
            removed: WeightSet::new(),
            added: WeightSet::singleton(w(1, 2)),
        };
        assert!(wbf.apply_diff(bit, &diff).is_err());
        // …an empty diff, and an out-of-range position: all rejected
        // without mutating anything.
        assert!(wbf.apply_diff(bit, &WeightDiff::default()).is_err());
        assert!(wbf.apply_diff(u32::MAX, &WeightDiff::default()).is_err());
        assert_eq!(wbf, before);
    }

    #[test]
    fn from_parts_validates_consistency() {
        let wbf = WeightedBloomFilter::new(params(), 1);
        let bits = wbf.bits().clone();
        let mut weights = BTreeMap::new();
        weights.insert(3u32, WeightSet::singleton(Weight::ONE));
        // Bit 3 is not set → invalid.
        let family = HashFamily::new(4, 1);
        assert!(WeightedBloomFilter::from_parts(bits, weights, family, 0).is_err());
    }
}
