//! Zero-copy weighted-filter frame view: probe a broadcast straight out of
//! the received bytes.
//!
//! The owned decoder ([`decode_wbf`](crate::encode::decode_wbf)) explodes
//! the wire frame's per-bit set-id region into a `bit → WeightSet` table —
//! the right shape for mutation (delta application, checkpoints), but pure
//! overhead for a base station that only wants to *probe* the broadcast.
//! [`WbfFrameView`] keeps that region as a borrowed slice of the receive
//! buffer: validation runs once at parse time (same checks, same verdicts,
//! same error messages as the owned decoder), then each occupied probe
//! finds its weight set by rank — a prefix-popcount over the bit array
//! gives the probe's ordinal among set bits, which indexes the id region
//! directly.
//!
//! Queries answer bit-identically to the owned filter decoded from the same
//! frame; the scan conformance suite pins that equivalence across every
//! execution mode.

use std::sync::OnceLock;

use bytes::{Buf, Bytes};

use crate::bitset::BitSet;
use crate::error::{CoreError, Result};
use crate::hash::{HashFamily, Probes};
use crate::probe::{self, ProbeTable, QueryScratch};
use crate::wbf::WeightedBloomFilter;
use crate::weight::Weight;
use crate::weight_set::WeightSet;

/// A validated, read-only view of an encoded weighted Bloom filter frame.
///
/// Holds the decoded bit array, hash family and interned weight-set table,
/// but keeps the per-bit set-id region as a zero-copy slice of the received
/// bytes (`Bytes` is reference-counted, so the view shares the receive
/// buffer instead of re-materializing thousands of per-bit entries). All
/// query entry points mirror
/// [`WeightedBloomFilter`](crate::WeightedBloomFilter) and return the exact
/// same answers the owned decode of the same frame would.
///
/// Created by [`encode::view_wbf`](crate::encode::view_wbf).
#[derive(Debug, Clone)]
pub struct WbfFrameView {
    bits: BitSet,
    /// Exclusive prefix popcount per word: `rank[w]` = set bits before word
    /// `w`, turning "which ordinal among set bits is this probe" into one
    /// table load plus one masked popcount.
    rank: Vec<u32>,
    sets: Vec<WeightSet>,
    /// The frame's per-bit set-id region: 4 little-endian bytes per set
    /// bit, in ascending bit order, borrowed from the receive buffer.
    ids: Bytes,
    family: HashFamily,
    inserted: u64,
    universe: OnceLock<WeightSet>,
}

/// Parses and validates a weighted frame into a view. Shared first stage
/// with the owned decoder; the per-bit region is checked with a throwaway
/// cursor in the owned decoder's exact per-ordinal order so both decoders
/// accept and reject identical inputs with identical errors.
pub(crate) fn parse_frame(mut data: Bytes) -> Result<WbfFrameView> {
    let body = crate::encode::take_wbf_body(&mut data)?;
    let ones = body.bits.count_ones();
    let mut cursor = data.clone();
    for _ in 0..ones {
        if cursor.remaining() < 4 {
            return Err(CoreError::decode("truncated per-bit set id"));
        }
        if cursor.get_u32_le() as usize >= body.sets.len() {
            return Err(CoreError::decode("set id outside set table"));
        }
    }
    if cursor.remaining() > 0 {
        return Err(CoreError::decode("trailing bytes after filter payload"));
    }
    let words = body.bits.as_words();
    let mut rank = Vec::with_capacity(words.len());
    let mut before = 0u32;
    for &word in words {
        rank.push(before);
        before += word.count_ones();
    }
    Ok(WbfFrameView {
        ids: data.slice(0..ones * 4),
        bits: body.bits,
        rank,
        sets: body.sets,
        family: body.family,
        inserted: body.inserted,
        universe: OnceLock::new(),
    })
}

impl WbfFrameView {
    /// The weight set attached at `bit`, or `None` if the bit is clear.
    fn set_at_bit(&self, bit: usize) -> Option<&WeightSet> {
        let word = self.bits.as_words()[bit / 64];
        let mask = 1u64 << (bit % 64);
        if word & mask == 0 {
            return None;
        }
        let ord = self.rank[bit / 64] as usize + (word & (mask - 1)).count_ones() as usize;
        let id = u32::from_le_bytes(
            self.ids[ord * 4..ord * 4 + 4]
                .try_into()
                .expect("id region holds 4 bytes per set bit"),
        );
        Some(&self.sets[id as usize])
    }

    /// The filter length in bits.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// The number of hash functions.
    pub fn hashes(&self) -> u16 {
        self.family.hashes()
    }

    /// The hash seed shared between data center and base stations.
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The number of insert operations the encoder recorded.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The fraction of set bits.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Borrows the underlying bit set.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// Pure membership test (ignores weights): whether all probed bits are
    /// set. Matches [`WeightedBloomFilter::contains`].
    pub fn contains(&self, key: u64) -> bool {
        let m = self.bits.len();
        self.bits.contains_probes(self.family.probes(key, m))
    }

    /// Queries a sequence of keys; see
    /// [`WeightedBloomFilter::query_sequence`]. Allocates the result — the
    /// scan hot path uses [`WbfFrameView::query_sequence_into`].
    pub fn query_sequence<I>(&self, keys: I) -> Option<WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        let mut scratch = QueryScratch::new();
        self.query_sequence_into(keys, &mut scratch).cloned()
    }

    /// Allocation-free sequence query; see
    /// [`WeightedBloomFilter::query_sequence_into`].
    pub fn query_sequence_into<'s, I>(
        &'s self,
        keys: I,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        probe::query_sequence_into(self, keys, scratch)
    }

    /// Sequence query over a probe set hashed once; see
    /// [`WeightedBloomFilter::query_precomputed`].
    pub fn query_precomputed<'s>(
        &'s self,
        pre: &probe::PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        if pre.is_empty() || !self.bits.contains_probes_simd(pre.words(), pre.mask_bits()) {
            return None;
        }
        probe::fold_weights_at(self, pre.indices(), scratch)
    }

    /// The weight fold alone, for probes already known occupied; see
    /// [`WeightedBloomFilter::fold_weights_precomputed`].
    ///
    /// # Panics
    ///
    /// May panic if any precomputed probe index is unoccupied — run the
    /// membership test first.
    pub fn fold_weights_precomputed<'s>(
        &'s self,
        pre: &probe::PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        probe::fold_weights_at(self, pre.indices(), scratch)
    }

    /// The sorted set of every distinct weight attached at some set bit —
    /// see [`WeightedBloomFilter::weight_universe`]. Computed once per view
    /// and cached.
    ///
    /// Only *referenced* set-table entries contribute: a hostile frame may
    /// carry table entries no bit points at, and the owned decoder's
    /// universe (built from the exploded per-bit table) would not see them
    /// either.
    pub fn weight_universe(&self) -> &WeightSet {
        self.universe.get_or_init(|| {
            let mut seen = vec![false; self.sets.len()];
            for chunk in self.ids.chunks_exact(4) {
                let id = u32::from_le_bytes(chunk.try_into().expect("4-byte chunks"));
                seen[id as usize] = true;
            }
            let mut all = WeightSet::new();
            for (set, used) in self.sets.iter().zip(&seen) {
                if *used {
                    all.union_with(set);
                }
            }
            all
        })
    }
}

impl ProbeTable for WbfFrameView {
    type Weights<'a> = std::iter::Copied<std::slice::Iter<'a, Weight>>;

    fn geometry(&self) -> (&HashFamily, usize) {
        (&self.family, self.bits.len())
    }

    fn occupied(&self, probes: Probes) -> bool {
        self.bits.contains_probes(probes)
    }

    fn weights_at(&self, idx: usize) -> Option<Self::Weights<'_>> {
        self.set_at_bit(idx).map(WeightSet::iter)
    }

    fn set_at(&self, idx: usize) -> Option<&WeightSet> {
        self.set_at_bit(idx)
    }
}

/// Semantic equality with an owned filter: same geometry, same bit array,
/// same insert count and the same weight set at every set bit — i.e. the
/// two answer every query identically. Used by round-trip tests comparing
/// a view against the filter the frame was encoded from.
impl PartialEq<WeightedBloomFilter> for WbfFrameView {
    fn eq(&self, other: &WeightedBloomFilter) -> bool {
        self.family.hashes() == other.hashes()
            && self.family.seed() == other.seed()
            && self.inserted == other.inserted()
            && &self.bits == other.bits()
            && self
                .bits
                .iter_ones()
                .all(|bit| self.set_at_bit(bit) == ProbeTable::set_at(other, bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_wbf, view_wbf};
    use crate::params::FilterParams;

    fn sample() -> WeightedBloomFilter {
        let params = FilterParams::new(4096, 3).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, 77);
        for (i, v) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            wbf.insert(*v, Weight::new(i as u64 + 1, 10).unwrap());
        }
        wbf
    }

    #[test]
    fn view_equals_the_encoded_filter() {
        let wbf = sample();
        let view = view_wbf(encode_wbf(&wbf).unwrap()).unwrap();
        assert_eq!(view, wbf);
        assert_eq!(view.bit_len(), wbf.bit_len());
        assert_eq!(view.hashes(), wbf.hashes());
        assert_eq!(view.seed(), wbf.seed());
        assert_eq!(view.inserted(), wbf.inserted());
        assert_eq!(view.fill_ratio(), wbf.fill_ratio());
        assert_eq!(view.weight_universe(), wbf.weight_universe());
    }

    #[test]
    fn view_queries_match_owned_decode() {
        let wbf = sample();
        let frame = encode_wbf(&wbf).unwrap();
        let owned = crate::encode::decode_wbf(frame.clone()).unwrap();
        let view = view_wbf(frame).unwrap();
        let mut vs = QueryScratch::new();
        let mut os = QueryScratch::new();
        for v in [10u64, 20, 30, 40, 50, 999, 0, u64::MAX] {
            assert_eq!(view.contains(v), owned.contains(v));
            assert_eq!(
                view.query_sequence_into([v], &mut vs),
                owned.query_sequence_into([v], &mut os),
                "key {v}"
            );
        }
        assert_eq!(
            view.query_sequence_into([10u64, 20], &mut vs),
            owned.query_sequence_into([10u64, 20], &mut os)
        );
        assert_eq!(
            view.query_sequence_into([] as [u64; 0], &mut vs),
            owned.query_sequence_into([] as [u64; 0], &mut os)
        );
    }

    #[test]
    fn view_precomputed_matches_sequence_path() {
        let wbf = sample();
        let view = view_wbf(encode_wbf(&wbf).unwrap()).unwrap();
        let mut pre = probe::PrecomputedProbes::new();
        let mut a = QueryScratch::new();
        let mut b = QueryScratch::new();
        for keys in [vec![10u64], vec![10, 20], vec![10, 999], vec![]] {
            pre.compute(
                &HashFamily::new(view.hashes(), view.seed()),
                view.bit_len(),
                &keys,
            );
            assert_eq!(
                view.query_precomputed(&pre, &mut a).cloned(),
                view.query_sequence_into(keys.iter().copied(), &mut b)
                    .cloned(),
                "keys {keys:?}"
            );
        }
    }

    #[test]
    fn view_rejects_what_owned_rejects() {
        let frame = encode_wbf(&sample()).unwrap();
        for cut in 0..frame.len() {
            let slice = frame.slice(0..cut);
            let owned = crate::encode::decode_wbf(slice.clone());
            let viewed = view_wbf(slice);
            assert!(viewed.is_err(), "cut {cut} viewed");
            assert_eq!(
                format!("{}", owned.unwrap_err()),
                format!("{}", viewed.unwrap_err()),
                "error mismatch at cut {cut}"
            );
        }
        let mut trailing = frame.to_vec();
        trailing.push(0xAB);
        assert!(view_wbf(Bytes::from(trailing)).is_err());
    }

    #[test]
    fn unreferenced_set_table_entries_do_not_leak_into_the_universe() {
        // Owned decode drops table entries no bit references; the view's
        // cached universe must agree.
        let wbf = sample();
        let frame = encode_wbf(&wbf).unwrap();
        let owned = crate::encode::decode_wbf(frame.clone()).unwrap();
        let view = view_wbf(frame).unwrap();
        assert_eq!(view.weight_universe(), owned.weight_universe());
    }
}
