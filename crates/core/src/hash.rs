//! Deterministic k-hash family for filter probing.
//!
//! The paper hashes each sampled value with `k` independent hash functions.
//! We implement the standard Kirsch–Mitzenmacher construction: two 64-bit
//! hashes `h1`, `h2` are derived from the key with a SplitMix64-style finalizer
//! and the `i`-th probe is `(h1 + i·h2) mod m`, which preserves the
//! false-positive analysis of truly independent functions. `h2` is forced odd
//! so consecutive probes never collapse onto a short cycle.
//!
//! Everything is seeded and fully deterministic: the data center and every
//! base station must derive identical probe sequences from the broadcast
//! filter header.

/// SplitMix64 finalizer: a fast, well-mixed 64→64-bit permutation.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines a small tag (e.g. a sample position) with a value into a single
/// hash key, for the position-tagged probing ablation.
#[inline]
pub fn tagged_key(tag: u32, value: u64) -> u64 {
    // Mix the tag through the finalizer first so tag=0 is not the identity.
    mix64((tag as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)) ^ value.rotate_left(17)
}

/// A seeded family of `k` hash functions over `u64` keys.
///
/// # Examples
///
/// ```
/// use dipm_core::HashFamily;
///
/// let family = HashFamily::new(4, 42);
/// let probes: Vec<usize> = family.probes(12345, 1024).collect();
/// assert_eq!(probes.len(), 4);
/// assert!(probes.iter().all(|&p| p < 1024));
/// // Deterministic across instances with the same seed.
/// let again: Vec<usize> = HashFamily::new(4, 42).probes(12345, 1024).collect();
/// assert_eq!(probes, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HashFamily {
    hashes: u16,
    seed: u64,
}

impl HashFamily {
    /// Creates a family of `hashes` functions derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `hashes` is zero.
    pub fn new(hashes: u16, seed: u64) -> HashFamily {
        assert!(hashes > 0, "hash family must contain at least one function");
        HashFamily { hashes, seed }
    }

    /// The number of hash functions `k`.
    pub fn hashes(&self) -> u16 {
        self.hashes
    }

    /// The seed all functions are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn base_hashes(&self, key: u64) -> (u64, u64) {
        let h1 = mix64(key ^ self.seed);
        // Independent stream: re-mix with a rotated seed; force odd so the
        // probe stride is invertible modulo any m.
        let h2 = mix64(key.wrapping_add(0x9e37_79b9_7f4a_7c15) ^ self.seed.rotate_left(31)) | 1;
        (h1, h2)
    }

    /// The `i`-th probe index for `key` in a table of `m` slots.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `i >= k`.
    #[inline]
    pub fn probe(&self, key: u64, i: u16, m: usize) -> usize {
        assert!(m > 0, "table size must be non-zero");
        assert!(i < self.hashes, "probe index out of range");
        let (h1, h2) = self.base_hashes(key);
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % m as u64) as usize
    }

    /// Iterates over all `k` probe indices for `key` in a table of `m` slots.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn probes(&self, key: u64, m: usize) -> Probes {
        assert!(m > 0, "table size must be non-zero");
        let (h1, h2) = self.base_hashes(key);
        Probes {
            h2,
            m: m as u64,
            next: 0,
            total: self.hashes,
            full: h1,
            r: 0,
            r2: 0,
            neg_wrap: 0,
            strided: false,
        }
    }
}

/// Iterator over probe indices, created by [`HashFamily::probes`].
///
/// Uses strength-reduced stepping: the running sum `h1 + i·h2` is kept both
/// as a full 64-bit value (for exact Kirsch–Mitzenmacher wrap-around
/// semantics) and as a residue modulo `m`, so after the first probe each
/// step costs an add and a couple of conditional subtracts instead of a
/// 64-bit division. On the 2^64 wrap the residue is corrected by
/// `-(2^64 mod m) mod m`, keeping every index bit-identical to the direct
/// formula `(h1 + i·h2 mod 2^64) mod m` — pinned by `probes_match_probe`.
#[derive(Debug, Clone)]
pub struct Probes {
    h2: u64,
    m: u64,
    next: u16,
    total: u16,
    /// `(h1 + next·h2) mod 2^64`.
    full: u64,
    /// `full % m`, valid once the first probe has been produced.
    r: u64,
    /// `h2 % m`, computed lazily on the first strided step.
    r2: u64,
    /// `(-(2^64 mod m)) mod m` — the residue correction applied when `full`
    /// wraps around 2^64.
    neg_wrap: u64,
    strided: bool,
}

impl Iterator for Probes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.next >= self.total {
            return None;
        }
        if self.next == 0 {
            self.r = self.full % self.m;
        } else {
            let (full, carry) = self.full.overflowing_add(self.h2);
            self.full = full;
            if self.m <= u64::from(u32::MAX) {
                // Residues stay below 2^32, so the three-term sum cannot
                // overflow and at most two subtractions reduce it below m.
                if !self.strided {
                    self.r2 = self.h2 % self.m;
                    let wrap = 0u64.wrapping_sub(self.m) % self.m; // 2^64 mod m
                    self.neg_wrap = if wrap == 0 { 0 } else { self.m - wrap };
                    self.strided = true;
                }
                let mut r = self.r + self.r2;
                if carry {
                    r += self.neg_wrap;
                }
                if r >= self.m {
                    r -= self.m;
                }
                if r >= self.m {
                    r -= self.m;
                }
                self.r = r;
            } else {
                self.r = self.full % self.m;
            }
        }
        self.next += 1;
        Some(self.r as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Probes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_not_identity_and_spreads_zero() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn probes_match_probe() {
        let family = HashFamily::new(7, 99);
        let via_iter: Vec<usize> = family.probes(555, 300).collect();
        let via_index: Vec<usize> = (0..7).map(|i| family.probe(555, i, 300)).collect();
        assert_eq!(via_iter, via_index);
    }

    #[test]
    fn strided_stepping_matches_direct_formula_across_sizes() {
        // The strength-reduced iterator must stay bit-identical to the
        // direct `(h1 + i·h2 mod 2^64) mod m` formula for every table size
        // class: tiny, odd, power-of-two, the u32 fast-path boundary and the
        // >u32 slow path.
        let sizes = [
            1usize,
            2,
            3,
            101,
            1 << 16,
            (1 << 16) - 1,
            u32::MAX as usize,
            u32::MAX as usize + 1,
            1 << 40,
        ];
        for &m in &sizes {
            let family = HashFamily::new(16, 0xDEAD ^ m as u64);
            for key in 0..64u64 {
                let via_iter: Vec<usize> = family.probes(mix64(key), m).collect();
                let via_index: Vec<usize> =
                    (0..16).map(|i| family.probe(mix64(key), i, m)).collect();
                assert_eq!(via_iter, via_index, "diverged at m={m} key={key}");
            }
        }
    }

    #[test]
    fn cloned_probes_resume_mid_iteration() {
        let family = HashFamily::new(8, 7);
        let mut it = family.probes(42, 1013);
        let head: Vec<usize> = it.by_ref().take(3).collect();
        let resumed: Vec<usize> = it.clone().collect();
        let tail: Vec<usize> = it.collect();
        assert_eq!(resumed, tail);
        let full: Vec<usize> = family.probes(42, 1013).collect();
        assert_eq!(full[..3], head[..]);
        assert_eq!(full[3..], tail[..]);
    }

    #[test]
    fn different_seeds_give_different_probes() {
        let a: Vec<usize> = HashFamily::new(4, 1).probes(77, 1 << 20).collect();
        let b: Vec<usize> = HashFamily::new(4, 2).probes(77, 1 << 20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_give_different_probes() {
        let family = HashFamily::new(4, 7);
        let a: Vec<usize> = family.probes(1, 1 << 20).collect();
        let b: Vec<usize> = family.probes(2, 1 << 20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn probes_are_in_range_for_odd_sizes() {
        let family = HashFamily::new(16, 3);
        for key in 0..200u64 {
            for p in family.probes(key, 101) {
                assert!(p < 101);
            }
        }
    }

    #[test]
    fn exact_size_iterator_contract() {
        let family = HashFamily::new(5, 0);
        let mut it = family.probes(9, 64);
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_hashes_panics() {
        HashFamily::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_table_panics() {
        HashFamily::new(1, 1).probes(0, 0);
    }

    #[test]
    fn tagged_key_distinguishes_positions() {
        assert_ne!(tagged_key(0, 42), tagged_key(1, 42));
        assert_ne!(tagged_key(0, 42), 42);
    }

    #[test]
    fn probe_distribution_is_roughly_uniform() {
        // With 64k probes over 64 slots each slot should see ~1000; allow wide
        // tolerance — this guards against gross bias, not statistical purity.
        let family = HashFamily::new(1, 1234);
        let mut counts = [0usize; 64];
        for key in 0..65536u64 {
            counts[family.probe(key, 0, 64)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "slot count {c} badly skewed");
        }
    }
}
