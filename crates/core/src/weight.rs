//! Exact rational pattern weights.
//!
//! In the paper, the weight of a combined local pattern is the ratio between
//! its maximum accumulated value and the maximum accumulated value of the
//! global pattern (Section IV-B). On accumulated (prefix-sum) series the
//! maximum is the final point, i.e. the pattern's total volume, so the
//! weights of a true decomposition of a global pattern sum to exactly `1`.
//!
//! Algorithm 2 accepts a candidate only when *all* sampled points carry the
//! *same* weight, and Algorithm 3 discards IDs whose weight sum exceeds `1`.
//! Both tests must therefore be exact, which rules out floating point:
//! [`Weight`] is a reduced `u64/u64` rational with exact equality, ordering
//! and checked addition.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{CoreError, Result};

/// An exact non-negative rational weight, kept in lowest terms.
///
/// # Examples
///
/// ```
/// use dipm_core::Weight;
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let third = Weight::new(3, 9)?; // reduced to 1/3
/// assert_eq!(third, Weight::new(1, 3)?);
///
/// let sum = third
///     .checked_add(Weight::new(2, 3)?)
///     .expect("no overflow");
/// assert!(sum.is_one());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weight {
    num: u64,
    den: u64,
}

const fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Weight {
    /// The additive identity, `0/1`.
    pub const ZERO: Weight = Weight { num: 0, den: 1 };
    /// The weight of a global pattern, `1/1`.
    pub const ONE: Weight = Weight { num: 1, den: 1 };

    /// Creates a weight `num/den`, reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroDenominator`] if `den == 0`.
    pub fn new(num: u64, den: u64) -> Result<Weight> {
        if den == 0 {
            return Err(CoreError::ZeroDenominator);
        }
        if num == 0 {
            return Ok(Weight::ZERO);
        }
        let g = gcd(num, den);
        Ok(Weight {
            num: num / g,
            den: den / g,
        })
    }

    /// Creates the ratio between a local pattern's total volume and the
    /// global pattern's total volume, the paper's weight assignment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroDenominator`] if `global_total == 0`.
    pub fn ratio(local_total: u64, global_total: u64) -> Result<Weight> {
        Weight::new(local_total, global_total)
    }

    /// The reduced numerator.
    pub fn numerator(self) -> u64 {
        self.num
    }

    /// The reduced denominator (always non-zero).
    pub fn denominator(self) -> u64 {
        self.den
    }

    /// Whether this weight is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this weight is exactly one (a global-pattern match).
    pub fn is_one(self) -> bool {
        self.num == self.den
    }

    /// Exact addition, reducing the result; `None` when the reduced result
    /// no longer fits in `u64/u64`.
    #[must_use = "checked arithmetic returns a new value"]
    pub fn checked_add(self, other: Weight) -> Option<Weight> {
        let num =
            (self.num as u128) * (other.den as u128) + (other.num as u128) * (self.den as u128);
        let den = (self.den as u128) * (other.den as u128);
        let g = gcd_u128(num, den);
        let (num, den) = (num / g, den / g);
        if num > u64::MAX as u128 || den > u64::MAX as u128 {
            return None;
        }
        Some(Weight {
            num: num as u64,
            den: den as u64,
        })
    }

    /// Exact comparison against one, without constructing a new weight.
    pub fn cmp_one(self) -> Ordering {
        self.num.cmp(&self.den)
    }

    /// Lossy conversion for display and ranking diagnostics.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl Default for Weight {
    fn default() -> Self {
        Weight::ZERO
    }
}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = (self.num as u128) * (other.den as u128);
        let rhs = (other.num as u128) * (self.den as u128);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Weight {
    /// Writes the reduced fraction, e.g. `1/3`, or `1` for one and `0` for
    /// zero.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.is_one() {
            write!(f, "1")
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Sums an iterator of weights exactly.
///
/// # Errors
///
/// Returns [`CoreError::WeightOverflow`] if any intermediate sum overflows.
pub fn sum_weights<I: IntoIterator<Item = Weight>>(weights: I) -> Result<Weight> {
    let mut acc = Weight::ZERO;
    for w in weights {
        acc = acc.checked_add(w).ok_or(CoreError::WeightOverflow)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reduces_to_lowest_terms() {
        let w = Weight::new(6, 8).unwrap();
        assert_eq!(w.numerator(), 3);
        assert_eq!(w.denominator(), 4);
    }

    #[test]
    fn zero_numerator_normalizes_denominator() {
        let w = Weight::new(0, 7).unwrap();
        assert_eq!(w, Weight::ZERO);
        assert_eq!(w.denominator(), 1);
    }

    #[test]
    fn zero_denominator_is_rejected() {
        assert_eq!(Weight::new(3, 0), Err(CoreError::ZeroDenominator));
    }

    #[test]
    fn paper_example_weight_is_one_third() {
        // "the weight of a pattern {1,2,3} is 3/9, with respect to the global
        // pattern {4,7,9}" — Section IV-B.
        let w = Weight::ratio(3, 9).unwrap();
        assert_eq!(w, Weight::new(1, 3).unwrap());
        assert!((w.to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn decomposition_weights_sum_to_one() {
        let parts = [
            Weight::ratio(6, 24).unwrap(),
            Weight::ratio(10, 24).unwrap(),
            Weight::ratio(8, 24).unwrap(),
        ];
        assert!(sum_weights(parts).unwrap().is_one());
    }

    #[test]
    fn ordering_uses_cross_multiplication() {
        let a = Weight::new(1, 3).unwrap();
        let b = Weight::new(2, 5).unwrap();
        assert!(a < b);
        assert!(b < Weight::ONE);
        assert!(Weight::ZERO < a);
    }

    #[test]
    fn cmp_one_matches_ordering() {
        assert_eq!(Weight::new(3, 2).unwrap().cmp_one(), Ordering::Greater);
        assert_eq!(Weight::ONE.cmp_one(), Ordering::Equal);
        assert_eq!(Weight::new(1, 2).unwrap().cmp_one(), Ordering::Less);
    }

    #[test]
    fn checked_add_detects_overflow() {
        let big = Weight::new(u64::MAX, 1).unwrap();
        assert_eq!(big.checked_add(Weight::ONE), None);
    }

    #[test]
    fn checked_add_reduces_before_overflow_check() {
        // 1/(2^63) + 1/(2^63) = 2/(2^63) = 1/(2^62): the unreduced denominator
        // (2^126) overflows u64, the reduced one does not.
        let tiny = Weight::new(1, 1 << 63).unwrap();
        let sum = tiny.checked_add(tiny).unwrap();
        assert_eq!(sum, Weight::new(1, 1 << 62).unwrap());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Weight::ZERO.to_string(), "0");
        assert_eq!(Weight::ONE.to_string(), "1");
        assert_eq!(Weight::new(2, 6).unwrap().to_string(), "1/3");
        assert_eq!(Weight::new(5, 5).unwrap().to_string(), "1");
    }

    #[test]
    fn sum_weights_empty_is_zero() {
        assert_eq!(sum_weights(std::iter::empty()).unwrap(), Weight::ZERO);
    }

    #[test]
    fn eq_and_hash_agree_on_reduced_form() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Weight::new(2, 4).unwrap());
        assert!(set.contains(&Weight::new(1, 2).unwrap()));
        assert!(set.contains(&Weight::new(50, 100).unwrap()));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Weight::default(), Weight::ZERO);
    }
}
