//! Compact binary wire encoding for filters.
//!
//! The data center broadcasts one encoded filter to every base station, so
//! the encoded length *is* the query's downstream communication cost
//! (Fig. 4c/4d use these sizes). The format is deterministic — weight entries
//! are emitted in ascending bit order — self-describing, and versioned.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  u32  = 0x4449_504d ("DIPM")
//! version u8  = 1
//! kind   u8   = 0 (Bloom) | 1 (Weighted Bloom)
//! hashes u16
//! seed   u64
//! bits   u64  (filter length in bits)
//! inserted u64
//! words  [u64]                    (bits.div_ceil(64) raw words)
//! -- weighted only --
//! dict_len u32
//! dict*    { num u64, den u64 }   (distinct weights, ascending)
//! sets_len u32
//! set*     { len u16, ids u16×len }   (distinct weight SETS, first-seen order)
//! per set bit, in ascending bit order:
//!   set_id u32                    (index into the set table)
//! ```
//!
//! Two levels of interning keep broadcasts small: distinct weights are few
//! (one per combination pattern), and neighbouring band keys carry *identical*
//! weight sets, so thousands of bits typically share a handful of set
//! entries.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bitset::BitSet;
use crate::bloom::BloomFilter;
use crate::error::{CoreError, Result};
use crate::hash::HashFamily;
use crate::params::{FilterParams, MAX_HASHES};
use crate::wbf::WeightedBloomFilter;
use crate::weight::Weight;
use crate::weight_set::WeightSet;

const MAGIC: u32 = 0x4449_504d;
const VERSION: u8 = 1;
const KIND_BLOOM: u8 = 0;
const KIND_WEIGHTED: u8 = 1;

fn put_header(buf: &mut BytesMut, kind: u8, hashes: u16, seed: u64, bits: usize, inserted: u64) {
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind);
    buf.put_u16_le(hashes);
    buf.put_u64_le(seed);
    buf.put_u64_le(bits as u64);
    buf.put_u64_le(inserted);
}

struct Header {
    kind: u8,
    hashes: u16,
    seed: u64,
    bits: usize,
    inserted: u64,
}

fn take_header(buf: &mut Bytes) -> Result<Header> {
    if buf.remaining() < 4 + 1 + 1 + 2 + 8 + 8 + 8 {
        return Err(CoreError::decode("truncated header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CoreError::decode("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CoreError::decode(format!("unsupported version {version}")));
    }
    let kind = buf.get_u8();
    if kind != KIND_BLOOM && kind != KIND_WEIGHTED {
        return Err(CoreError::decode(format!("unknown filter kind {kind}")));
    }
    let hashes = buf.get_u16_le();
    if hashes == 0 || hashes > MAX_HASHES {
        return Err(CoreError::decode("hash count out of range"));
    }
    let seed = buf.get_u64_le();
    let bits = buf.get_u64_le();
    if bits == 0 || bits > u32::MAX as u64 {
        return Err(CoreError::decode("bit length out of range"));
    }
    let inserted = buf.get_u64_le();
    Ok(Header {
        kind,
        hashes,
        seed,
        bits: bits as usize,
        inserted,
    })
}

fn put_words(buf: &mut BytesMut, bits: &BitSet) {
    for &word in bits.as_words() {
        buf.put_u64_le(word);
    }
}

fn take_bits(buf: &mut Bytes, bits: usize) -> Result<BitSet> {
    let word_count = bits.div_ceil(64);
    if buf.remaining() < word_count * 8 {
        return Err(CoreError::decode("truncated bit payload"));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(buf.get_u64_le());
    }
    BitSet::from_words(words, bits)
}

/// Encodes a classic Bloom filter.
pub fn encode_bloom(filter: &BloomFilter) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_bloom_len(filter));
    put_header(
        &mut buf,
        KIND_BLOOM,
        filter.hashes(),
        filter.seed(),
        filter.bit_len(),
        filter.inserted(),
    );
    put_words(&mut buf, filter.bits());
    buf.freeze()
}

/// The exact byte length [`encode_bloom`] will produce.
pub fn encoded_bloom_len(filter: &BloomFilter) -> usize {
    32 + filter.bits().byte_len()
}

/// Decodes a classic Bloom filter.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] on any malformed input.
pub fn decode_bloom(mut data: Bytes) -> Result<BloomFilter> {
    let header = take_header(&mut data)?;
    if header.kind != KIND_BLOOM {
        return Err(CoreError::decode("expected a bloom filter"));
    }
    let bits = take_bits(&mut data, header.bits)?;
    FilterParams::new(header.bits, header.hashes)?;
    if data.remaining() > 0 {
        return Err(CoreError::decode("trailing bytes after filter payload"));
    }
    let family = HashFamily::new(header.hashes, header.seed);
    Ok(BloomFilter::from_parts(bits, family, header.inserted))
}

/// Collects the distinct weights of a filter in ascending order — the wire
/// dictionary. Distinct weights are few (one per combination pattern), so
/// per-bit attachments are encoded as `u16` dictionary indices instead of
/// repeating 16-byte rationals.
fn weight_dictionary(filter: &WeightedBloomFilter) -> Vec<Weight> {
    let mut dict = WeightSet::new();
    for (_, set) in filter.weight_positions() {
        dict.union_with(set);
    }
    dict.iter().collect()
}

/// The interned representation backing the weighted wire sections: the
/// weight dictionary, the distinct weight sets (as dictionary-id lists, in
/// first-seen order over ascending bits) and one set id per set bit.
struct Interned {
    dict: Vec<Weight>,
    sets: Vec<Vec<u16>>,
    per_bit: Vec<u32>,
}

fn intern(filter: &WeightedBloomFilter) -> Result<Interned> {
    let dict = weight_dictionary(filter);
    if dict.len() > u16::MAX as usize {
        return Err(CoreError::invalid_params(
            "more distinct weights than the wire format supports",
        ));
    }
    let mut sets: Vec<Vec<u16>> = Vec::new();
    let mut index: std::collections::HashMap<Vec<u16>, u32> = std::collections::HashMap::new();
    let mut per_bit = Vec::with_capacity(filter.bits().count_ones());
    for (_, set) in filter.weight_positions() {
        if set.len() > u16::MAX as usize {
            return Err(CoreError::invalid_params(
                "more weights on one bit than the wire format supports",
            ));
        }
        let ids: Vec<u16> = set
            .iter()
            .map(|w| {
                dict.binary_search(&w)
                    .expect("dictionary contains every attached weight") as u16
            })
            .collect();
        let id = match index.get(&ids) {
            Some(&id) => id,
            None => {
                let id = sets.len() as u32;
                index.insert(ids.clone(), id);
                sets.push(ids);
                id
            }
        };
        per_bit.push(id);
    }
    Ok(Interned {
        dict,
        sets,
        per_bit,
    })
}

/// Encodes a weighted Bloom filter.
///
/// Per-bit weight sets are interned: the payload carries each distinct set
/// once plus a 4-byte set id per set bit (emitted in set-bit order — the
/// decoder already knows which bits are set from the bit array).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] if the filter holds more than
/// `u16::MAX` distinct weights or any bit carries more than `u16::MAX`
/// weights (beyond the wire format's index width).
pub fn encode_wbf(filter: &WeightedBloomFilter) -> Result<Bytes> {
    let interned = intern(filter)?;
    let mut buf = BytesMut::with_capacity(encoded_wbf_len(filter));
    put_header(
        &mut buf,
        KIND_WEIGHTED,
        filter.hashes(),
        filter.seed(),
        filter.bit_len(),
        filter.inserted(),
    );
    put_words(&mut buf, filter.bits());
    buf.put_u32_le(interned.dict.len() as u32);
    for weight in &interned.dict {
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    buf.put_u32_le(interned.sets.len() as u32);
    for set in &interned.sets {
        buf.put_u16_le(set.len() as u16);
        for &id in set {
            buf.put_u16_le(id);
        }
    }
    for &set_id in &interned.per_bit {
        buf.put_u32_le(set_id);
    }
    Ok(buf.freeze())
}

/// The exact byte length [`encode_wbf`] will produce (for a filter the
/// format can represent).
pub fn encoded_wbf_len(filter: &WeightedBloomFilter) -> usize {
    let interned = match intern(filter) {
        Ok(i) => i,
        Err(_) => return 0,
    };
    let set_bytes: usize = interned.sets.iter().map(|s| 2 + 2 * s.len()).sum();
    32 + filter.bits().byte_len()
        + 4
        + interned.dict.len() * 16
        + 4
        + set_bytes
        + interned.per_bit.len() * 4
}

/// Everything of a weighted wire frame up to (but not including) the
/// per-bit set-id region: the shared first stage of the owned decoder and
/// the zero-copy view decoder, which diverge only in how they consume the
/// set ids.
pub(crate) struct WbfWireBody {
    pub(crate) bits: BitSet,
    pub(crate) family: HashFamily,
    pub(crate) inserted: u64,
    pub(crate) sets: Vec<WeightSet>,
}

/// Parses header, bit array, weight dictionary and set table, leaving
/// `data` positioned at the per-bit set-id region.
pub(crate) fn take_wbf_body(data: &mut Bytes) -> Result<WbfWireBody> {
    let header = take_header(data)?;
    if header.kind != KIND_WEIGHTED {
        return Err(CoreError::decode("expected a weighted bloom filter"));
    }
    let bits = take_bits(data, header.bits)?;
    FilterParams::new(header.bits, header.hashes)?;
    if data.remaining() < 4 {
        return Err(CoreError::decode("truncated weight dictionary length"));
    }
    let dict_len = data.get_u32_le() as usize;
    if dict_len > u16::MAX as usize {
        return Err(CoreError::decode("weight dictionary too large"));
    }
    if data.remaining() < dict_len * 16 {
        return Err(CoreError::decode("truncated weight dictionary"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight =
            Weight::new(num, den).map_err(|_| CoreError::decode("zero weight denominator"))?;
        dict.push(weight);
    }
    if data.remaining() < 4 {
        return Err(CoreError::decode("truncated weight set table length"));
    }
    let sets_len = data.get_u32_le() as usize;
    // The declared count is attacker-controlled; every encoded set costs at
    // least 4 bytes (u16 length + one u16 id), so clamp the up-front
    // reservation to what the remaining payload could possibly hold and let
    // the per-entry truncation checks reject the lie.
    let mut sets: Vec<WeightSet> = Vec::with_capacity(sets_len.min(data.remaining() / 4));
    for _ in 0..sets_len {
        if data.remaining() < 2 {
            return Err(CoreError::decode("truncated weight set header"));
        }
        let len = data.get_u16_le() as usize;
        if len == 0 {
            return Err(CoreError::decode("empty weight set entry"));
        }
        if data.remaining() < len * 2 {
            return Err(CoreError::decode("truncated weight set indices"));
        }
        let mut set = WeightSet::new();
        for _ in 0..len {
            let idx = data.get_u16_le() as usize;
            let weight = dict
                .get(idx)
                .copied()
                .ok_or_else(|| CoreError::decode("weight index outside dictionary"))?;
            set.insert(weight);
        }
        sets.push(set);
    }
    Ok(WbfWireBody {
        bits,
        family: HashFamily::new(header.hashes, header.seed),
        inserted: header.inserted,
        sets,
    })
}

/// Decodes a weighted Bloom filter.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] on any malformed input, including weight
/// indices outside the dictionary.
pub fn decode_wbf(mut data: Bytes) -> Result<WeightedBloomFilter> {
    let body = take_wbf_body(&mut data)?;
    let mut table = BTreeMap::new();
    for bit in body.bits.iter_ones() {
        if data.remaining() < 4 {
            return Err(CoreError::decode("truncated per-bit set id"));
        }
        let set_id = data.get_u32_le() as usize;
        let set = body
            .sets
            .get(set_id)
            .cloned()
            .ok_or_else(|| CoreError::decode("set id outside set table"))?;
        table.insert(bit as u32, set);
    }
    if data.remaining() > 0 {
        return Err(CoreError::decode("trailing bytes after filter payload"));
    }
    WeightedBloomFilter::from_parts(body.bits, table, body.family, body.inserted)
}

/// Decodes a weighted frame into a zero-copy [`WbfFrameView`]: same
/// validation and same accept/reject verdicts (and error messages) as
/// [`decode_wbf`], but the per-bit set-id region is kept as a borrowed
/// byte slice of `data` and indexed on demand instead of being exploded
/// into an owned per-bit table.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] on any malformed input — exactly the
/// inputs [`decode_wbf`] rejects.
pub fn view_wbf(data: Bytes) -> Result<crate::WbfFrameView> {
    crate::view::parse_frame(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_wbf() -> WeightedBloomFilter {
        let params = FilterParams::new(4096, 3).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, 77);
        for (i, v) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            wbf.insert(*v, Weight::new(i as u64 + 1, 10).unwrap());
        }
        wbf
    }

    #[test]
    fn bloom_roundtrip() {
        let params = FilterParams::new(2048, 5).unwrap();
        let mut bf = BloomFilter::new(params, 13);
        for v in 0..100u64 {
            bf.insert(v * 3);
        }
        let encoded = encode_bloom(&bf);
        assert_eq!(encoded.len(), encoded_bloom_len(&bf));
        let decoded = decode_bloom(encoded).unwrap();
        assert_eq!(decoded, bf);
    }

    #[test]
    fn wbf_roundtrip() {
        let wbf = sample_wbf();
        let encoded = encode_wbf(&wbf).unwrap();
        assert_eq!(encoded.len(), encoded_wbf_len(&wbf));
        let decoded = decode_wbf(encoded).unwrap();
        assert_eq!(decoded, wbf);
    }

    #[test]
    fn decoded_wbf_answers_queries_identically() {
        let wbf = sample_wbf();
        let decoded = decode_wbf(encode_wbf(&wbf).unwrap()).unwrap();
        for v in [10u64, 20, 30, 999] {
            assert_eq!(wbf.query(v), decoded.query(v));
        }
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let wbf = sample_wbf();
        assert!(decode_bloom(encode_wbf(&wbf).unwrap()).is_err());
        let bf = BloomFilter::new(FilterParams::new(64, 1).unwrap(), 0);
        assert!(decode_wbf(encode_bloom(&bf)).is_err());
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let encoded = encode_wbf(&sample_wbf()).unwrap();
        for cut in [0, 3, 5, 20, 31, encoded.len() - 1] {
            let slice = encoded.slice(0..cut);
            assert!(decode_wbf(slice).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // A frame that decodes and then has bytes left over is corrupt —
        // accepting it would let framing bugs pass silently.
        let mut raw = encode_wbf(&sample_wbf()).unwrap().to_vec();
        raw.push(0);
        assert!(decode_wbf(Bytes::from(raw)).is_err());
        let params = FilterParams::new(2048, 5).unwrap();
        let mut bf = BloomFilter::new(params, 13);
        bf.insert(3);
        let mut raw = encode_bloom(&bf).to_vec();
        raw.extend_from_slice(&[0xAA; 3]);
        assert!(decode_bloom(Bytes::from(raw)).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = encode_wbf(&sample_wbf()).unwrap().to_vec();
        raw[0] ^= 0xff;
        assert!(decode_wbf(Bytes::from(raw)).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut raw = encode_wbf(&sample_wbf()).unwrap().to_vec();
        raw[4] = 99;
        assert!(decode_wbf(Bytes::from(raw)).is_err());
    }

    #[test]
    fn wbf_is_larger_than_bloom_of_same_geometry() {
        // Fig. 4d: the weight table is the storage premium WBF pays.
        let wbf = sample_wbf();
        let params = FilterParams::new(4096, 3).unwrap();
        let mut bf = BloomFilter::new(params, 77);
        for v in [10u64, 20, 30, 40, 50] {
            bf.insert(v);
        }
        assert!(encoded_wbf_len(&wbf) > encoded_bloom_len(&bf));
    }

    #[test]
    fn empty_filters_roundtrip() {
        let params = FilterParams::new(64, 2).unwrap();
        let bf = BloomFilter::new(params, 1);
        assert_eq!(decode_bloom(encode_bloom(&bf)).unwrap(), bf);
        let wbf = WeightedBloomFilter::new(params, 1);
        assert_eq!(decode_wbf(encode_wbf(&wbf).unwrap()).unwrap(), wbf);
    }
}
