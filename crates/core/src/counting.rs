//! The counting weighted Bloom filter — incremental pattern maintenance.
//!
//! The paper's [`WeightedBloomFilter`] is build-once: every pattern
//! insertion forces a full rebuild and re-broadcast, which is exactly the
//! per-query dissemination cost Fig. 4c punishes at city scale. A
//! [`CountingWbf`] keeps the weighted per-key structure intact while making
//! the underlying array *counting*: each position holds a reference count
//! per attached weight instead of a single bit, so patterns can be inserted
//! **and removed** without touching the rest of the filter.
//!
//! The data center maintains the counting filter; base stations keep
//! probing the cheap membership projection ([`CountingWbf::snapshot`] — an
//! ordinary [`WeightedBloomFilter`]) and receive only the positions whose
//! *visible* state changed ([`CountingWbf::drain_dirty`]) as delta
//! broadcasts. Counter values never cross the wire: a station only needs to
//! know whether a position is occupied and by which weights, while the
//! center alone needs the counts to know when a removal retires a position.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::error::{CoreError, Result};
use crate::filter::FilterCore;
use crate::hash::{HashFamily, Probes};
use crate::params::FilterParams;
use crate::probe::{self, ProbeTable, QueryScratch};
use crate::wbf::WeightedBloomFilter;
use crate::weight::Weight;
use crate::weight_set::WeightSet;

/// The visible change of one filter position between two broadcast epochs:
/// the weights that left and the weights that arrived.
///
/// A diff is what streaming deltas ship instead of absolute weight sets —
/// every position a churned pattern touches carries the *same* few-weight
/// diff, so diffs intern massively on the wire where absolute sets (each
/// grafted onto a different pre-existing set) would not.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct WeightDiff {
    /// Weights no longer attached to the position.
    pub removed: WeightSet,
    /// Weights newly attached to the position.
    pub added: WeightSet,
}

impl WeightDiff {
    /// Whether the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// A weighted Bloom filter over `u64` keys supporting exact removal.
///
/// Every position stores a reference count per weight; the position's
/// visible weight set is the set of weights with a non-zero count, and the
/// position is *occupied* while any count is non-zero. Queries behave
/// exactly like [`WeightedBloomFilter`] queries against the visible state,
/// and after any interleaving of inserts and removes **of
/// previously-inserted pairs** the filter is query-equivalent to a fresh
/// filter built over the surviving multiset of `(key, weight)` pairs
/// (property-tested in the streaming conformance suite; see
/// [`CountingWbf::remove`] for the aliasing caveat on foreign removals).
///
/// # Examples
///
/// ```
/// use dipm_core::{CountingWbf, FilterParams, Weight};
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let params = FilterParams::new(1 << 12, 4)?;
/// let mut filter = CountingWbf::new(params, 7);
///
/// let w = Weight::new(1, 2)?;
/// filter.insert(42, w)?;
/// assert!(filter.query(42).expect("occupied").contains(w));
///
/// filter.remove(42, w)?;
/// assert!(filter.query(42).is_none());
/// // Removing again is an error (the pair is no longer live).
/// assert!(filter.remove(42, w).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CountingWbf {
    /// Per-position weight reference counts. A position's total count is
    /// the sum of its per-weight counts, so no separate counter array can
    /// ever fall out of sync.
    counts: BTreeMap<u32, BTreeMap<Weight, u32>>,
    bit_len: usize,
    family: HashFamily,
    /// Live insertions (inserts minus removes).
    live: u64,
    /// Positions whose visible state (occupancy or weight set) changed
    /// since the last [`CountingWbf::drain_dirty`], each mapped to its
    /// visible weight set *as of that drain* — the baseline the next delta
    /// diffs against.
    dirty: BTreeMap<u32, WeightSet>,
    /// Lazily computed set of every live weight — the score universe
    /// pruning scans bound against. Derived state: [`CountingWbf::insert`]
    /// and [`CountingWbf::remove`] reset it, equality ignores it.
    universe: OnceLock<WeightSet>,
}

impl PartialEq for CountingWbf {
    /// Equality over the *filter state* — counts, geometry and live count.
    /// The pending dirty set is broadcast bookkeeping, not state: a freshly
    /// built filter and an incrementally maintained one holding the same
    /// multiset compare equal whatever deltas were already drained.
    fn eq(&self, other: &CountingWbf) -> bool {
        self.counts == other.counts
            && self.bit_len == other.bit_len
            && self.family == other.family
            && self.live == other.live
    }
}

impl Eq for CountingWbf {}

impl CountingWbf {
    /// Creates an empty counting filter with the given geometry and seed.
    ///
    /// The geometry is fixed for the filter's lifetime: incremental updates
    /// never resize (a resize would rehash every key, i.e. a rebuild).
    pub fn new(params: FilterParams, seed: u64) -> CountingWbf {
        CountingWbf {
            counts: BTreeMap::new(),
            bit_len: params.bits(),
            family: HashFamily::new(params.hashes(), seed),
            live: 0,
            dirty: BTreeMap::new(),
            universe: OnceLock::new(),
        }
    }

    /// The position's current visible weight set (empty if unoccupied).
    fn visible(&self, idx: u32) -> WeightSet {
        self.counts
            .get(&idx)
            .map(|position| position.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Records the baseline for a position about to change visibly, unless
    /// one is already pending from an earlier change this epoch.
    fn mark_dirty(&mut self, idx: u32) {
        if !self.dirty.contains_key(&idx) {
            let baseline = self.visible(idx);
            self.dirty.insert(idx, baseline);
        }
    }

    /// Inserts `key` carrying `weight`, incrementing the weight's count at
    /// every probed position.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::WeightOverflow`] if any touched count would
    /// exceed `u32::MAX`; the filter is left untouched.
    pub fn insert(&mut self, key: u64, weight: Weight) -> Result<()> {
        let probes = self.probe_multiplicities(key);
        // Validate every touched count before mutating anything.
        for (&idx, &mult) in &probes {
            let current = self
                .counts
                .get(&idx)
                .and_then(|m| m.get(&weight))
                .copied()
                .unwrap_or(0);
            if current.checked_add(mult).is_none() {
                return Err(CoreError::WeightOverflow);
            }
        }
        for (&idx, &mult) in &probes {
            let changes_visibly = !self
                .counts
                .get(&idx)
                .is_some_and(|position| position.contains_key(&weight));
            if changes_visibly {
                self.mark_dirty(idx);
            }
            let position = self.counts.entry(idx).or_default();
            *position.entry(weight).or_insert(0) += mult;
        }
        self.live += 1;
        self.universe.take();
        Ok(())
    }

    /// Removes one prior insertion of `key` with `weight`, decrementing the
    /// weight's count at every probed position and retiring positions whose
    /// counts reach zero.
    ///
    /// The rebuild-equivalence guarantee holds for removals of
    /// previously-inserted pairs — the only removals the streaming session
    /// ever issues. Like any counting Bloom filter, a *never-inserted*
    /// pair is usually caught (some probed position lacks the weight), but
    /// with probability on the order of the filter's false-positive rate
    /// its probes may all alias live positions carrying the same weight;
    /// such a removal passes the check and decrements other patterns'
    /// counts. Callers must therefore only remove what they inserted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AbsentRemoval`] if the pair is not currently
    /// live at every probed position; the filter is left untouched.
    pub fn remove(&mut self, key: u64, weight: Weight) -> Result<()> {
        let probes = self.probe_multiplicities(key);
        for (&idx, &mult) in &probes {
            let current = self
                .counts
                .get(&idx)
                .and_then(|m| m.get(&weight))
                .copied()
                .unwrap_or(0);
            if current < mult {
                return Err(CoreError::AbsentRemoval);
            }
        }
        for (&idx, &mult) in &probes {
            let retires_weight = self
                .counts
                .get(&idx)
                .and_then(|position| position.get(&weight))
                .copied()
                .expect("validated above")
                == mult;
            if retires_weight {
                self.mark_dirty(idx);
            }
            let position = self.counts.get_mut(&idx).expect("validated above");
            let count = position.get_mut(&weight).expect("validated above");
            *count -= mult;
            if *count == 0 {
                position.remove(&weight);
            }
            if position.is_empty() {
                self.counts.remove(&idx);
            }
        }
        self.live -= 1;
        self.universe.take();
        Ok(())
    }

    /// The `k` probe positions of `key` with their multiplicities (distinct
    /// hash functions may collide on a position; insert and remove must
    /// count them symmetrically).
    fn probe_multiplicities(&self, key: u64) -> BTreeMap<u32, u32> {
        let mut probes: BTreeMap<u32, u32> = BTreeMap::new();
        for idx in self.family.probes(key, self.bit_len) {
            *probes.entry(idx as u32).or_insert(0) += 1;
        }
        probes
    }

    /// Pure membership test: whether every probed position is occupied.
    pub fn contains(&self, key: u64) -> bool {
        self.family
            .probes(key, self.bit_len)
            .all(|idx| self.counts.contains_key(&(idx as u32)))
    }

    /// Queries a single key: `None` if any probed position is empty,
    /// otherwise the intersection of the probed positions' visible weight
    /// sets — identical semantics to [`WeightedBloomFilter::query`] (both
    /// run the same shared probe core: occupancy of all positions is tested
    /// before any weight is read).
    pub fn query(&self, key: u64) -> Option<WeightSet> {
        let mut out = WeightSet::new();
        probe::query_into(self, key, &mut out).map(|()| out)
    }

    /// Allocation-free [`CountingWbf::query`]: the intersection is written
    /// into `out` (cleared and overwritten, capacity reused) — identical
    /// semantics to [`WeightedBloomFilter::query_into`].
    pub fn query_into(&self, key: u64, out: &mut WeightSet) -> Option<()> {
        probe::query_into(self, key, out)
    }

    /// Queries a sequence of keys, returning the weights common to every
    /// point — identical semantics to
    /// [`WeightedBloomFilter::query_sequence`].
    pub fn query_sequence<I>(&self, keys: I) -> Option<WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        let mut scratch = QueryScratch::new();
        self.query_sequence_into(keys, &mut scratch).cloned()
    }

    /// Allocation-free [`CountingWbf::query_sequence`] — identical semantics
    /// to [`WeightedBloomFilter::query_sequence_into`], running the same
    /// shared probe core against the refcounted positions.
    pub fn query_sequence_into<'s, I>(
        &'s self,
        keys: I,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet>
    where
        I: IntoIterator<Item = u64>,
        I::IntoIter: Clone,
    {
        probe::query_sequence_into(self, keys, scratch)
    }

    /// The membership projection: an ordinary [`WeightedBloomFilter`]
    /// holding the current visible state, suitable for the existing wire
    /// encoding and for station-side probing. `inserted` is set to the live
    /// insertion count.
    pub fn snapshot(&self) -> WeightedBloomFilter {
        let mut bits = crate::bitset::BitSet::new(self.bit_len);
        let mut weights = BTreeMap::new();
        for (&idx, position) in &self.counts {
            bits.set(idx as usize);
            weights.insert(idx, position.keys().copied().collect::<WeightSet>());
        }
        WeightedBloomFilter::from_parts(bits, weights, self.family, self.live)
            .expect("a counting filter's visible state is always consistent")
    }

    /// The *membership-only* projection: a classic [`BloomFilter`] whose set
    /// bits are exactly the occupied positions, with the same geometry and
    /// seed. This is the summary a routing tree keeps per station — weights
    /// are irrelevant to "can this subtree match at all", so the projection
    /// drops them and unions cheaply.
    ///
    /// [`BloomFilter`]: crate::BloomFilter
    pub fn bloom_snapshot(&self) -> crate::BloomFilter {
        let mut bits = crate::bitset::BitSet::new(self.bit_len);
        for &idx in self.counts.keys() {
            bits.set(idx as usize);
        }
        crate::BloomFilter::from_parts(bits, self.family, self.live)
    }

    /// Drains the positions whose visible state changed since the last
    /// drain, as `(position, diff)` entries in ascending position order —
    /// the payload of one delta broadcast. Each diff carries the weights
    /// that left and arrived relative to the last drain's state, so a
    /// receiver holding that state reconstructs the current one exactly.
    ///
    /// Positions that changed and changed *back* within one epoch produce
    /// no entry at all — the diff against the baseline is empty.
    pub fn drain_dirty(&mut self) -> Vec<(u32, WeightDiff)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .filter_map(|(idx, baseline)| {
                let now = self.visible(idx);
                let diff = WeightDiff {
                    removed: baseline.difference(&now),
                    added: now.difference(&baseline),
                };
                (!diff.is_empty()).then_some((idx, diff))
            })
            .collect()
    }

    /// The pending delta, *without* draining it: the same `(position,
    /// diff)` entries [`CountingWbf::drain_dirty`] would return, computed
    /// against the same baselines, with the baselines left in place.
    ///
    /// A service admission policy uses this to price a tenant's next delta
    /// broadcast before deciding whether to run the epoch at all — a
    /// deferred tenant's churn must stay queued, so the sizing pass cannot
    /// consume the dirty set.
    pub fn pending_dirty(&self) -> Vec<(u32, WeightDiff)> {
        self.dirty
            .iter()
            .filter_map(|(&idx, baseline)| {
                let now = self.visible(idx);
                let diff = WeightDiff {
                    removed: baseline.difference(&now),
                    added: now.difference(baseline),
                };
                (!diff.is_empty()).then_some((idx, diff))
            })
            .collect()
    }

    /// The pending per-position baselines — each dirtied position mapped to
    /// its visible weight set as of the last drain. This is the epoch
    /// bookkeeping a session checkpoint must carry: a recovered center that
    /// restores these baselines emits exactly the delta the crashed one
    /// would have.
    pub fn dirty_baselines(&self) -> &BTreeMap<u32, WeightSet> {
        &self.dirty
    }

    /// Replaces the pending dirty baselines wholesale — the checkpoint
    /// *recovery* counterpart of [`CountingWbf::dirty_baselines`]. Every
    /// restored position must lie inside the filter's geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if any position is out of
    /// range; the filter is left untouched.
    pub fn restore_dirty(&mut self, baselines: BTreeMap<u32, WeightSet>) -> Result<()> {
        if let Some((&idx, _)) = baselines.iter().next_back() {
            if idx as usize >= self.bit_len {
                return Err(CoreError::invalid_params(format!(
                    "restored dirty position {idx} outside filter of {} positions",
                    self.bit_len
                )));
            }
        }
        self.dirty = baselines;
        Ok(())
    }

    /// The full refcounted state, position-ascending: each occupied
    /// position with its `(weight, count)` entries in weight order. This is
    /// what a session checkpoint serializes (counts never cross the wire
    /// otherwise) and what recovery verifies a replayed registry against.
    pub fn counts_snapshot(&self) -> Vec<(u32, Vec<(Weight, u32)>)> {
        self.counts
            .iter()
            .map(|(&idx, position)| {
                (
                    idx,
                    position.iter().map(|(&w, &count)| (w, count)).collect(),
                )
            })
            .collect()
    }

    /// How many positions currently await a delta broadcast.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Live insertions (inserts minus removes).
    pub fn live(&self) -> u64 {
        self.live
    }

    /// The filter length in positions.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// The number of hash functions.
    pub fn hashes(&self) -> u16 {
        self.family.hashes()
    }

    /// The hash seed shared between data center and base stations.
    pub fn seed(&self) -> u64 {
        self.family.seed()
    }

    /// The fraction of occupied positions.
    pub fn fill_ratio(&self) -> f64 {
        self.counts.len() as f64 / self.bit_len as f64
    }

    /// The total number of live `(position, weight)` attachments.
    pub fn weight_entries(&self) -> usize {
        self.counts.values().map(BTreeMap::len).sum()
    }

    /// The sorted set of every live weight — the score universe a pruning
    /// scan bounds candidates against, mirroring
    /// [`WeightedBloomFilter::weight_universe`]. Computed once per filter
    /// state and cached; [`CountingWbf::insert`] and [`CountingWbf::remove`]
    /// invalidate the cache.
    pub fn weight_universe(&self) -> &WeightSet {
        self.universe.get_or_init(|| {
            self.counts
                .values()
                .flat_map(|position| position.keys().copied())
                .collect()
        })
    }

    /// The largest live weight — the static score upper bound. `None` for
    /// an empty filter.
    pub fn max_weight(&self) -> Option<Weight> {
        self.weight_universe().max()
    }
}

impl ProbeTable for CountingWbf {
    type Weights<'a> = std::iter::Copied<std::collections::btree_map::Keys<'a, Weight, u32>>;

    fn geometry(&self) -> (&HashFamily, usize) {
        (&self.family, self.bit_len)
    }

    fn occupied(&self, mut probes: Probes) -> bool {
        probes.all(|idx| self.counts.contains_key(&(idx as u32)))
    }

    fn weights_at(&self, idx: usize) -> Option<Self::Weights<'_>> {
        self.counts
            .get(&(idx as u32))
            .map(|position| position.keys().copied())
    }
}

impl FilterCore for CountingWbf {
    fn bit_len(&self) -> usize {
        CountingWbf::bit_len(self)
    }

    fn hashes(&self) -> u16 {
        CountingWbf::hashes(self)
    }

    fn seed(&self) -> u64 {
        CountingWbf::seed(self)
    }

    fn contains(&self, key: u64) -> bool {
        CountingWbf::contains(self, key)
    }

    fn fill_ratio(&self) -> f64 {
        CountingWbf::fill_ratio(self)
    }

    fn inserted(&self) -> u64 {
        CountingWbf::live(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FilterParams {
        FilterParams::new(1 << 12, 4).unwrap()
    }

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut filter = CountingWbf::new(params(), 1);
        filter.insert(42, w(1, 3)).unwrap();
        assert!(filter.contains(42));
        assert!(filter.query(42).unwrap().contains(w(1, 3)));
        assert_eq!(filter.live(), 1);
        filter.remove(42, w(1, 3)).unwrap();
        assert!(filter.query(42).is_none());
        assert_eq!(filter.live(), 0);
        assert_eq!(filter.weight_entries(), 0);
    }

    #[test]
    fn absent_removal_is_rejected_without_corruption() {
        let mut filter = CountingWbf::new(params(), 1);
        filter.insert(7, w(1, 2)).unwrap();
        let before = filter.clone();
        // Wrong weight, wrong key, double removal: all rejected, state kept.
        assert_eq!(filter.remove(7, w(1, 4)), Err(CoreError::AbsentRemoval));
        assert_eq!(filter.remove(8, w(1, 2)), Err(CoreError::AbsentRemoval));
        assert_eq!(filter, before);
        filter.remove(7, w(1, 2)).unwrap();
        assert_eq!(filter.remove(7, w(1, 2)), Err(CoreError::AbsentRemoval));
    }

    #[test]
    fn overlapping_keys_survive_partial_removal() {
        // Two patterns share key 2; removing one must keep the other's
        // weight alive at the shared positions.
        let mut filter = CountingWbf::new(params(), 5);
        for v in [1u64, 2, 3] {
            filter.insert(v, w(1, 2)).unwrap();
        }
        for v in [2u64, 4, 5] {
            filter.insert(v, w(1, 4)).unwrap();
        }
        for v in [1u64, 2, 3] {
            filter.remove(v, w(1, 2)).unwrap();
        }
        assert_eq!(
            filter.query_sequence([2u64, 4, 5]).unwrap().max(),
            Some(w(1, 4))
        );
        assert!(filter.query_sequence([1u64, 2, 3]).is_none());
    }

    #[test]
    fn matches_wbf_semantics_on_stitched_false_positives() {
        let mut counting = CountingWbf::new(params(), 5);
        let mut wbf = WeightedBloomFilter::new(params(), 5);
        for v in [1u64, 2, 3] {
            counting.insert(v, w(1, 2)).unwrap();
            wbf.insert(v, w(1, 2));
        }
        for v in [2u64, 4, 5] {
            counting.insert(v, w(1, 4)).unwrap();
            wbf.insert(v, w(1, 4));
        }
        for probe in [[1u64, 4, 5], [1, 2, 3], [2, 4, 5], [9, 10, 11]] {
            assert_eq!(
                counting.query_sequence(probe.iter().copied()),
                wbf.query_sequence(probe.iter().copied()),
                "probe {probe:?} diverged from WBF semantics"
            );
        }
    }

    #[test]
    fn snapshot_equals_fresh_wbf_build() {
        let mut counting = CountingWbf::new(params(), 9);
        let mut reference = WeightedBloomFilter::new(params(), 9);
        for i in 0..60u64 {
            let weight = w(i % 7 + 1, 10);
            counting.insert(i * 31, weight).unwrap();
        }
        // Remove a third of them; the reference only ever sees survivors.
        for i in 0..60u64 {
            let weight = w(i % 7 + 1, 10);
            if i % 3 == 0 {
                counting.remove(i * 31, weight).unwrap();
            } else {
                reference.insert(i * 31, weight);
            }
        }
        assert_eq!(counting.snapshot(), reference);
    }

    #[test]
    fn bloom_snapshot_tracks_occupancy_exactly() {
        let mut counting = CountingWbf::new(params(), 9);
        let mut reference = crate::BloomFilter::new(params(), 9);
        for i in 0..40u64 {
            counting.insert(i * 131, w(i % 5 + 1, 9)).unwrap();
        }
        for i in 0..40u64 {
            if i % 4 == 0 {
                counting.remove(i * 131, w(i % 5 + 1, 9)).unwrap();
            } else {
                reference.insert(i * 131);
            }
        }
        let snapshot = counting.bloom_snapshot();
        assert_eq!(snapshot, reference, "occupancy diverged from a fresh build");
        assert_eq!(snapshot.inserted(), counting.live());
        for i in 0..40u64 {
            if i % 4 != 0 {
                assert!(snapshot.contains(i * 131));
            }
        }
    }

    #[test]
    fn drain_dirty_reports_diffs_against_the_last_drain() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        let delta = filter.drain_dirty();
        assert!(!delta.is_empty());
        for (_, diff) in &delta {
            assert!(diff.removed.is_empty());
            assert!(diff.added.contains(w(1, 2)));
        }
        assert!(delta.windows(2).all(|e| e[0].0 < e[1].0), "ascending order");
        // Nothing changed since: the next drain is empty.
        assert!(filter.drain_dirty().is_empty());
        assert_eq!(filter.dirty_len(), 0);
        // Removing the key retires its positions: the weight leaves.
        filter.remove(10, w(1, 2)).unwrap();
        let delta = filter.drain_dirty();
        assert!(!delta.is_empty());
        for (_, diff) in &delta {
            assert!(diff.removed.contains(w(1, 2)));
            assert!(diff.added.is_empty());
        }
    }

    #[test]
    fn duplicate_count_increments_do_not_dirty() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        filter.drain_dirty();
        // Same key, same weight: counts move but visible state does not.
        filter.insert(10, w(1, 2)).unwrap();
        assert_eq!(filter.dirty_len(), 0, "invisible count changes stay local");
        // A new weight on the same positions is visible.
        filter.insert(10, w(1, 3)).unwrap();
        assert!(filter.dirty_len() > 0);
    }

    #[test]
    fn reverted_changes_produce_no_diff_entries() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        filter.drain_dirty();
        // Insert-then-remove within one epoch: back to the baseline.
        filter.insert(10, w(1, 3)).unwrap();
        filter.remove(10, w(1, 3)).unwrap();
        assert!(filter.dirty_len() > 0, "positions were touched…");
        assert!(
            filter.drain_dirty().is_empty(),
            "…but the diff against the baseline is empty"
        );
    }

    #[test]
    fn pending_dirty_previews_drain_without_consuming() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        filter.drain_dirty();
        filter.insert(10, w(1, 3)).unwrap();
        filter.remove(10, w(1, 2)).unwrap();
        let preview = filter.pending_dirty();
        assert!(!preview.is_empty());
        assert!(preview.windows(2).all(|e| e[0].0 < e[1].0), "ascending");
        // The preview is exactly what the drain then produces…
        assert_eq!(preview, filter.drain_dirty());
        // …and the preview itself consumed nothing.
        assert!(filter.pending_dirty().is_empty());
    }

    #[test]
    fn checkpointed_baselines_reproduce_the_same_delta() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        filter.drain_dirty();
        filter.insert(11, w(1, 3)).unwrap();
        // Checkpoint: counts + baselines, mid-epoch with a pending delta.
        let counts = filter.counts_snapshot();
        let baselines = filter.dirty_baselines().clone();
        assert!(!baselines.is_empty());
        // Recover into a fresh filter by replaying the live pairs, then
        // restoring the baselines: the next drain is byte-identical.
        let mut recovered = CountingWbf::new(params(), 3);
        recovered.insert(10, w(1, 2)).unwrap();
        recovered.insert(11, w(1, 3)).unwrap();
        assert_eq!(recovered.counts_snapshot(), counts);
        recovered.restore_dirty(baselines).unwrap();
        assert_eq!(recovered.drain_dirty(), filter.drain_dirty());
    }

    #[test]
    fn restore_dirty_rejects_out_of_range_positions() {
        let mut filter = CountingWbf::new(params(), 3);
        filter.insert(10, w(1, 2)).unwrap();
        let kept = filter.dirty_baselines().clone();
        let mut bad = BTreeMap::new();
        bad.insert((1u32 << 12) + 1, WeightSet::new());
        assert!(matches!(
            filter.restore_dirty(bad),
            Err(CoreError::InvalidParams { .. })
        ));
        // Rejected restore leaves the pending set untouched.
        assert_eq!(filter.dirty_baselines(), &kept);
    }

    #[test]
    fn counts_snapshot_orders_positions_and_weights() {
        let mut filter = CountingWbf::new(params(), 9);
        for i in 0..20u64 {
            filter.insert(i * 31, w(i % 4 + 1, 8)).unwrap();
        }
        filter.insert(0, w(1, 8)).unwrap();
        let snapshot = filter.counts_snapshot();
        assert!(snapshot.windows(2).all(|e| e[0].0 < e[1].0));
        let mut total = 0u64;
        for (_, weights) in &snapshot {
            assert!(!weights.is_empty());
            assert!(weights.windows(2).all(|e| e[0].0 < e[1].0));
            assert!(weights.iter().all(|&(_, count)| count > 0));
            total += weights.iter().map(|&(_, count)| count as u64).sum::<u64>();
        }
        assert_eq!(total, 21 * filter.hashes() as u64, "k counts per insert");
    }

    #[test]
    fn filter_core_surface() {
        let mut filter = CountingWbf::new(params(), 7);
        filter.insert(42, Weight::ONE).unwrap();
        let core: &dyn FilterCore = &filter;
        assert_eq!(core.bit_len(), 1 << 12);
        assert_eq!(core.hashes(), 4);
        assert_eq!(core.seed(), 7);
        assert!(core.contains(42));
        assert!(core.fill_ratio() > 0.0);
        assert_eq!(core.inserted(), 1);
    }

    #[test]
    fn weight_universe_follows_inserts_and_removes() {
        let mut filter = CountingWbf::new(params(), 1);
        assert!(filter.weight_universe().is_empty());
        assert_eq!(filter.max_weight(), None);
        filter.insert(1, w(1, 3)).unwrap();
        filter.insert(2, w(2, 3)).unwrap();
        assert_eq!(filter.weight_universe().as_slice(), &[w(1, 3), w(2, 3)]);
        assert_eq!(filter.max_weight(), Some(w(2, 3)));
        // Removing the last carrier of a weight retires it from the
        // universe; the cached set must not go stale.
        filter.remove(2, w(2, 3)).unwrap();
        assert_eq!(filter.weight_universe().as_slice(), &[w(1, 3)]);
        assert_eq!(filter.max_weight(), Some(w(1, 3)));
        // The universe matches the snapshot's.
        assert_eq!(
            filter.weight_universe(),
            filter.snapshot().weight_universe()
        );
    }

    #[test]
    fn equality_ignores_pending_deltas() {
        let mut a = CountingWbf::new(params(), 1);
        let mut b = CountingWbf::new(params(), 1);
        a.insert(5, w(1, 2)).unwrap();
        b.insert(5, w(1, 2)).unwrap();
        a.drain_dirty();
        assert_eq!(a, b, "drained and pending filters hold the same state");
        assert_ne!(a, CountingWbf::new(params(), 1));
        assert_ne!(a, CountingWbf::new(params(), 2));
    }
}
