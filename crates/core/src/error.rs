//! Error types for filter construction and decoding.

use std::error::Error;
use std::fmt;

/// A convenient result alias used throughout [`dipm-core`](crate).
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors produced by filter construction, weight arithmetic and decoding.
///
/// # Examples
///
/// ```
/// use dipm_core::{CoreError, Weight};
///
/// let err = Weight::new(1, 0).unwrap_err();
/// assert!(matches!(err, CoreError::ZeroDenominator));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A [`Weight`](crate::Weight) was constructed with a zero denominator.
    ZeroDenominator,
    /// Exact rational arithmetic overflowed the 64-bit numerator or
    /// denominator after reduction.
    WeightOverflow,
    /// Filter parameters were rejected (zero size, zero hash count, too many
    /// bits for the wire format, or an out-of-range target false-positive
    /// probability).
    InvalidParams {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// A byte buffer could not be decoded into a filter.
    Decode {
        /// Human-readable reason the buffer was rejected.
        reason: String,
    },
    /// Two filters with incompatible geometry (length, hash count or seed)
    /// were combined.
    IncompatibleFilters,
    /// A counting-filter removal named a `(key, weight)` pair that was never
    /// inserted (or was already removed). The filter is left untouched:
    /// honoring such a removal would corrupt counters and break the
    /// rebuild-equivalence guarantee streaming updates rely on.
    AbsentRemoval,
}

impl CoreError {
    pub(crate) fn invalid_params(reason: impl Into<String>) -> Self {
        CoreError::InvalidParams {
            reason: reason.into(),
        }
    }

    pub(crate) fn decode(reason: impl Into<String>) -> Self {
        CoreError::Decode {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroDenominator => write!(f, "weight denominator must be non-zero"),
            CoreError::WeightOverflow => write!(f, "weight arithmetic overflowed 64 bits"),
            CoreError::InvalidParams { reason } => {
                write!(f, "invalid filter parameters: {reason}")
            }
            CoreError::Decode { reason } => write!(f, "malformed filter encoding: {reason}"),
            CoreError::IncompatibleFilters => {
                write!(f, "filters have incompatible geometry")
            }
            CoreError::AbsentRemoval => {
                write!(f, "removal of a key/weight pair that was never inserted")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = [
            CoreError::ZeroDenominator,
            CoreError::WeightOverflow,
            CoreError::invalid_params("bits must be non-zero"),
            CoreError::decode("truncated header"),
            CoreError::IncompatibleFilters,
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn error_trait_object_usable() {
        let err: Box<dyn Error + Send + Sync> = Box::new(CoreError::ZeroDenominator);
        assert!(err.to_string().contains("denominator"));
    }
}
