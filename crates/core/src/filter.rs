//! The common read surface of both filter variants.
//!
//! [`FilterCore`] abstracts over what the classic [`BloomFilter`] and the
//! paper's [`WeightedBloomFilter`] share: seeded k-hash probing over a fixed
//! bit array. Protocol-level code that is generic over the filter family —
//! the `FilterStrategy` pipeline in `dipm-protocol`, metering, statistics
//! reporting — programs against this trait instead of matching on concrete
//! types.

use crate::bloom::BloomFilter;
use crate::view::WbfFrameView;
use crate::wbf::WeightedBloomFilter;

/// Read-only operations every filter variant supports.
pub trait FilterCore {
    /// The filter length in bits (`m`).
    fn bit_len(&self) -> usize;

    /// The number of hash functions (`k`).
    fn hashes(&self) -> u16;

    /// The seed of the hash family (broadcast with the filter so stations
    /// probe with identical functions).
    fn seed(&self) -> u64;

    /// Membership of a single key: true iff all `k` probed bits are set.
    fn contains(&self, key: u64) -> bool;

    /// The fraction of set bits — the quantity behind the false-positive
    /// estimate.
    fn fill_ratio(&self) -> f64;

    /// The number of `insert` calls performed so far.
    fn inserted(&self) -> u64;

    /// Hash evaluations performed by probing one full key sequence of
    /// `keys` points (the per-candidate station cost the meter records).
    fn probe_cost(&self, keys: usize) -> u64 {
        keys as u64 * u64::from(self.hashes())
    }
}

impl FilterCore for BloomFilter {
    fn bit_len(&self) -> usize {
        BloomFilter::bit_len(self)
    }

    fn hashes(&self) -> u16 {
        BloomFilter::hashes(self)
    }

    fn seed(&self) -> u64 {
        BloomFilter::seed(self)
    }

    fn contains(&self, key: u64) -> bool {
        BloomFilter::contains(self, key)
    }

    fn fill_ratio(&self) -> f64 {
        BloomFilter::fill_ratio(self)
    }

    fn inserted(&self) -> u64 {
        BloomFilter::inserted(self)
    }
}

impl FilterCore for WeightedBloomFilter {
    fn bit_len(&self) -> usize {
        WeightedBloomFilter::bit_len(self)
    }

    fn hashes(&self) -> u16 {
        WeightedBloomFilter::hashes(self)
    }

    fn seed(&self) -> u64 {
        WeightedBloomFilter::seed(self)
    }

    fn contains(&self, key: u64) -> bool {
        WeightedBloomFilter::contains(self, key)
    }

    fn fill_ratio(&self) -> f64 {
        WeightedBloomFilter::fill_ratio(self)
    }

    fn inserted(&self) -> u64 {
        WeightedBloomFilter::inserted(self)
    }
}

impl FilterCore for WbfFrameView {
    fn bit_len(&self) -> usize {
        WbfFrameView::bit_len(self)
    }

    fn hashes(&self) -> u16 {
        WbfFrameView::hashes(self)
    }

    fn seed(&self) -> u64 {
        WbfFrameView::seed(self)
    }

    fn contains(&self, key: u64) -> bool {
        WbfFrameView::contains(self, key)
    }

    fn fill_ratio(&self) -> f64 {
        WbfFrameView::fill_ratio(self)
    }

    fn inserted(&self) -> u64 {
        WbfFrameView::inserted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterParams;
    use crate::weight::Weight;

    fn assert_core_surface<F: FilterCore>(filter: &F, key: u64) {
        assert!(filter.bit_len() > 0);
        assert!(filter.hashes() > 0);
        assert!(filter.contains(key));
        assert!(filter.fill_ratio() > 0.0);
        assert_eq!(filter.inserted(), 1);
        assert_eq!(filter.probe_cost(12), 12 * u64::from(filter.hashes()));
    }

    #[test]
    fn both_filters_share_the_core_surface() {
        let params = FilterParams::optimal(100, 0.01).unwrap();
        let mut bloom = BloomFilter::new(params, 7);
        bloom.insert(42);
        assert_core_surface(&bloom, 42);

        let mut wbf = WeightedBloomFilter::new(params, 7);
        wbf.insert(42, Weight::ONE);
        assert_core_surface(&wbf, 42);
        assert_eq!(FilterCore::seed(&wbf), 7);
        assert_eq!(FilterCore::seed(&bloom), 7);

        // The zero-copy frame view shares the same read surface.
        let view = crate::encode::view_wbf(crate::encode::encode_wbf(&wbf).unwrap()).unwrap();
        assert_core_surface(&view, 42);
        assert_eq!(FilterCore::seed(&view), 7);
    }
}
