//! A fixed-length bit array backing both filter variants.
//!
//! Implemented from scratch (no external bit-vector dependency) on `u64`
//! words, with a running ones counter so fill-ratio queries are O(1). The
//! words live in cache-line-aligned storage ([`AlignedWords`]) and the
//! multi-probe membership tests dispatch through the process-wide
//! [`Kernel`](crate::Kernel) so batched probes run vectorized where the
//! host supports it.

use std::fmt;

use crate::error::{CoreError, Result};
use crate::kernel::{AlignedWords, Kernel};

/// Probe batch size flushed through the kernel in one call: large enough
/// that any single key's probes (≤ [`MAX_HASHES`](crate::MAX_HASHES)) fit
/// in one batch on the stack.
const PROBE_BATCH: usize = 64;

/// A fixed-length array of bits.
///
/// # Examples
///
/// ```
/// use dipm_core::BitSet;
///
/// let mut bits = BitSet::new(128);
/// assert!(bits.set(7));      // newly set
/// assert!(!bits.set(7));     // already set
/// assert!(bits.get(7));
/// assert_eq!(bits.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    words: AlignedWords,
    len: usize,
    ones: usize,
}

impl BitSet {
    /// Creates a bit set of `len` bits, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero; filters always have at least one bit.
    pub fn new(len: usize) -> BitSet {
        assert!(len > 0, "bit set length must be non-zero");
        BitSet {
            words: AlignedWords::zeroed(len.div_ceil(64)),
            len,
            ones: 0,
        }
    }

    /// Reconstructs a bit set from raw words (used by the wire decoder).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if the word count does not match `len`
    /// or if bits beyond `len` are set in the final word.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<BitSet> {
        if len == 0 || words.len() != len.div_ceil(64) {
            return Err(CoreError::decode("bit set word count mismatch"));
        }
        let tail_bits = len % 64;
        if tail_bits != 0 {
            let mask = !0u64 << tail_bits;
            if words[words.len() - 1] & mask != 0 {
                return Err(CoreError::decode("bits set beyond declared length"));
            }
        }
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(BitSet {
            words: AlignedWords::from_words(&words),
            len,
            ones,
        })
    }

    /// The number of bits in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has length zero. Always `false` for constructed sets;
    /// provided for API completeness alongside [`BitSet::len`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of bits currently set to one.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// The fraction of bits set to one, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        self.ones as f64 / self.len as f64
    }

    /// Sets the bit at `index`, returning `true` if it was previously zero.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        let (word, mask) = (index / 64, 1u64 << (index % 64));
        let words = self.words.as_mut_slice();
        let newly = words[word] & mask == 0;
        words[word] |= mask;
        if newly {
            self.ones += 1;
        }
        newly
    }

    /// Clears the bit at `index`, returning `true` if it was previously one.
    ///
    /// Counting-filter deltas use this to retire positions whose last
    /// contributing pattern was removed; plain build paths never unset bits.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn unset(&mut self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        let (word, mask) = (index / 64, 1u64 << (index % 64));
        let words = self.words.as_mut_slice();
        let was = words[word] & mask != 0;
        words[word] &= !mask;
        if was {
            self.ones -= 1;
        }
        was
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        self.words.as_slice()[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.as_mut_slice().fill(0);
        self.ones = 0;
    }

    /// Bitwise-ORs `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleFilters`] if the lengths differ.
    pub fn union_with(&mut self, other: &BitSet) -> Result<()> {
        if self.len != other.len {
            return Err(CoreError::IncompatibleFilters);
        }
        let words = self.words.as_mut_slice();
        for (a, b) in words.iter_mut().zip(other.words.as_slice()) {
            *a |= b;
        }
        self.ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(())
    }

    /// Bitwise-ANDs `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IncompatibleFilters`] if the lengths differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> Result<()> {
        if self.len != other.len {
            return Err(CoreError::IncompatibleFilters);
        }
        let words = self.words.as_mut_slice();
        for (a, b) in words.iter_mut().zip(other.words.as_slice()) {
            *a &= b;
        }
        self.ones = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(())
    }

    /// Tests whether *every* probed bit is set, working at word level: probe
    /// masks landing in the same word are merged into one load and groups
    /// are flushed through the active probe [`Kernel`] in SIMD-width
    /// batches. This is the hot-path membership pre-test that lets a filter
    /// miss return before any weight table is touched.
    ///
    /// Indices must be in range (`debug_assert`ed); the probe sequences
    /// produced by [`HashFamily::probes`](crate::HashFamily::probes) over
    /// this set's length always are.
    pub fn contains_probes<I>(&self, probes: I) -> bool
    where
        I: IntoIterator<Item = usize>,
    {
        let words = self.words.as_slice();
        let kernel = Kernel::active();
        let mut idx = [0u32; PROBE_BATCH];
        let mut masks = [0u64; PROBE_BATCH];
        let mut pending = 0usize;
        let mut last_word = usize::MAX;
        for index in probes {
            debug_assert!(index < self.len, "bit index {index} out of range");
            let (word, mask) = (index / 64, 1u64 << (index % 64));
            if word == last_word && pending > 0 {
                masks[pending - 1] |= mask;
            } else {
                if pending == PROBE_BATCH {
                    if !kernel.all_set(words, &idx, &masks) {
                        return false;
                    }
                    pending = 0;
                }
                idx[pending] = word as u32;
                masks[pending] = mask;
                pending += 1;
                last_word = word;
            }
        }
        pending == 0 || kernel.all_set(words, &idx[..pending], &masks[..pending])
    }

    /// Tests whether every probed bit behind precomputed parallel word/mask
    /// arrays is set, in one pass through the active probe [`Kernel`] — the
    /// batched form of [`BitSet::contains_probes`] for scans that hash a
    /// row's probes once and replay the merged masks against many filters
    /// sharing one geometry
    /// ([`PrecomputedProbes`](crate::PrecomputedProbes) produces exactly
    /// this layout).
    ///
    /// `words` and `masks` must have equal length; word indices must be in
    /// range for this set's backing words (out-of-range indices panic like
    /// slice indexing).
    pub fn contains_probes_simd(&self, words: &[u32], masks: &[u64]) -> bool {
        Kernel::active().all_set(self.words.as_slice(), words, masks)
    }

    /// Tests whether every probed bit behind a precomputed `(word, mask)`
    /// group is set — the pair-slice form of
    /// [`BitSet::contains_probes_simd`], kept for callers holding
    /// interleaved groups. Short-circuits on the first group with a cleared
    /// bit.
    ///
    /// Word indices must be in range for this set's backing words
    /// (`debug_assert`ed); masks computed against an equal bit length
    /// always are.
    pub fn contains_masks(&self, masks: &[(u32, u64)]) -> bool {
        let words = self.words.as_slice();
        masks.iter().all(|&(word, mask)| {
            debug_assert!(
                (word as usize) < words.len(),
                "mask word {word} out of range"
            );
            words[word as usize] & mask == mask
        })
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bits: self,
            word_idx: 0,
            current: self.words.as_slice().first().copied().unwrap_or(0),
        }
    }

    /// The raw backing words (little-endian bit order within each word).
    pub fn as_words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// The number of bytes needed to transmit the raw bit payload.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitSet")
            .field("len", &self.len)
            .field("ones", &self.ones)
            .finish()
    }
}

/// Iterator over set-bit indices, created by [`BitSet::iter_ones`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    bits: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let words = self.bits.words.as_slice();
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= words.len() {
                return None;
            }
            self.current = words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bits = BitSet::new(100);
        assert_eq!(bits.len(), 100);
        assert_eq!(bits.count_ones(), 0);
        assert!((0..100).all(|i| !bits.get(i)));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut bits = BitSet::new(70);
        for i in [0, 1, 63, 64, 69] {
            assert!(bits.set(i));
            assert!(bits.get(i));
        }
        assert_eq!(bits.count_ones(), 5);
        assert!(!bits.get(2));
    }

    #[test]
    fn set_reports_newness_once() {
        let mut bits = BitSet::new(8);
        assert!(bits.set(3));
        assert!(!bits.set(3));
        assert_eq!(bits.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(8).set(8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_panics() {
        BitSet::new(0);
    }

    #[test]
    fn fill_ratio_tracks_ones() {
        let mut bits = BitSet::new(10);
        bits.set(0);
        bits.set(5);
        assert!((bits.fill_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut bits = BitSet::new(65);
        bits.set(64);
        bits.clear();
        assert_eq!(bits.count_ones(), 0);
        assert!(!bits.get(64));
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut bits = BitSet::new(200);
        let idx = [0usize, 3, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            bits.set(i);
        }
        let collected: Vec<usize> = bits.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn contains_probes_matches_per_bit_gets() {
        let mut bits = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 70, 128, 299] {
            bits.set(i);
        }
        // Exhaustive small cases, including same-word repeats and duplicates.
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, 5],       // same word, both set
            vec![0, 1],       // same word, one clear
            vec![63, 64],     // adjacent words
            vec![0, 64, 128], // one per word
            vec![0, 0, 5, 5], // duplicates
            vec![299, 0, 70], // unordered
            vec![299, 298],
        ];
        for probes in cases {
            let expected = probes.iter().all(|&i| bits.get(i));
            assert_eq!(
                bits.contains_probes(probes.iter().copied()),
                expected,
                "probes {probes:?}"
            );
        }
    }

    #[test]
    fn contains_masks_matches_contains_probes() {
        let mut bits = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 70, 128, 299] {
            bits.set(i);
        }
        let to_masks = |probes: &[usize]| -> Vec<(u32, u64)> {
            // Merge consecutive same-word probes, as a probe precomputation
            // pass does.
            let mut masks: Vec<(u32, u64)> = Vec::new();
            for &i in probes {
                let (word, mask) = ((i / 64) as u32, 1u64 << (i % 64));
                match masks.last_mut() {
                    Some(last) if last.0 == word => last.1 |= mask,
                    _ => masks.push((word, mask)),
                }
            }
            masks
        };
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![0, 5],
            vec![0, 1],
            vec![63, 64],
            vec![0, 64, 128],
            vec![0, 0, 5, 5],
            vec![299, 0, 70],
            vec![299, 298],
        ];
        for probes in cases {
            assert_eq!(
                bits.contains_masks(&to_masks(&probes)),
                bits.contains_probes(probes.iter().copied()),
                "probes {probes:?}"
            );
        }
    }

    #[test]
    fn contains_probes_simd_matches_contains_probes() {
        let mut bits = BitSet::new(1 << 10);
        for i in 0..1 << 10 {
            if crate::hash::mix64(i as u64) & 3 == 0 {
                bits.set(i);
            }
        }
        let family = crate::hash::HashFamily::new(8, 5);
        for key in 0..200u64 {
            let mut words = Vec::new();
            let mut masks: Vec<u64> = Vec::new();
            for bit in family.probes(key, bits.len()) {
                let (w, m) = ((bit / 64) as u32, 1u64 << (bit % 64));
                match words.last() {
                    Some(&last) if last == w => *masks.last_mut().unwrap() |= m,
                    _ => {
                        words.push(w);
                        masks.push(m);
                    }
                }
            }
            assert_eq!(
                bits.contains_probes_simd(&words, &masks),
                bits.contains_probes(family.probes(key, bits.len())),
                "key {key}"
            );
        }
        assert!(bits.contains_probes_simd(&[], &[]));
    }

    #[test]
    fn probe_batches_larger_than_the_flush_size_still_short_circuit() {
        // More distinct words than one kernel batch (64) forces the
        // mid-iteration flush path in contains_probes.
        let mut bits = BitSet::new(65 * 64);
        for w in 0..65 {
            bits.set(w * 64);
        }
        let all: Vec<usize> = (0..65).map(|w| w * 64).collect();
        assert!(bits.contains_probes(all.iter().copied()));
        let mut one_clear = all.clone();
        one_clear[10] += 1; // bit never set
        assert!(!bits.contains_probes(one_clear.into_iter()));
        // A cleared bit past the first flush must also fail.
        let mut late_clear = all;
        late_clear[64] += 1;
        assert!(!bits.contains_probes(late_clear.into_iter()));
    }

    #[test]
    fn backing_words_are_cache_line_aligned() {
        let bits = BitSet::new(1 << 12);
        assert_eq!(bits.as_words().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn union_and_intersect() {
        let mut a = BitSet::new(16);
        let mut b = BitSet::new(16);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);

        let mut u = a.clone();
        u.union_with(&b).unwrap();
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);

        a.intersect_with(&b).unwrap();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn union_length_mismatch_is_error() {
        let mut a = BitSet::new(16);
        let b = BitSet::new(17);
        assert_eq!(a.union_with(&b), Err(CoreError::IncompatibleFilters));
    }

    #[test]
    fn from_words_validates_tail() {
        // length 65 → 2 words; bit 65 (index 1 of word 1) is out of range.
        let bad = BitSet::from_words(vec![0, 0b10], 65);
        assert!(bad.is_err());
        let good = BitSet::from_words(vec![0, 0b1], 65).unwrap();
        assert_eq!(good.count_ones(), 1);
        assert!(good.get(64));
    }

    #[test]
    fn from_words_rejects_wrong_count() {
        assert!(BitSet::from_words(vec![0; 3], 65).is_err());
        assert!(BitSet::from_words(vec![], 0).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        let bits = BitSet::new(8);
        assert!(!format!("{bits:?}").is_empty());
    }
}
