//! A small vendored executor for [`ExecutionMode::Async`]
//! (no registry is reachable, so no tokio — this is the whole runtime).
//!
//! Two variants share one scheduler core:
//!
//! * **Deterministic single-worker** (`workers <= 1`): a FIFO task queue run
//!   on the calling thread. Same task set ⇒ identical poll sequence,
//!   completion order, wake counts and virtual-clock readings on every run —
//!   the property the `executor_props` suite pins down.
//! * **Work-stealing multi-worker** (`workers > 1`): scoped OS threads, one
//!   run queue per worker plus a shared injector; an idle worker steals from
//!   the injector first, then from its peers. Completion *order* may vary,
//!   but deadline arithmetic does not: the clock only advances when every
//!   worker is idle, so a [`VirtualClock::sleep_until`] chain built from a
//!   task-local tick counter fires at identical ticks whatever the
//!   interleaving. (Mid-task [`VirtualClock::now`] reads are the one thing
//!   the pool *can* perturb — the clock may move while a woken task waits
//!   in a queue — which is why the pipeline stamps envelopes from each
//!   station's own timeline.)
//!
//! Tasks are woken through real [`std::task::Waker`]s; a per-task state
//! machine (idle → scheduled → running → notified) guarantees a task is
//! never queued twice and no wakeup is ever lost, which is what makes the
//! meter claims ("every station polled, every report sent exactly once")
//! hold under stealing.
//!
//! [`ExecutionMode::Async`]: crate::ExecutionMode::Async

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::clock::VirtualClock;

/// Nothing queued, nothing running, waiting on a wake.
const IDLE: u8 = 0;
/// In a run queue, waiting for a worker.
const SCHEDULED: u8 = 1;
/// Currently being polled by a worker.
const RUNNING: u8 = 2;
/// Woken *while* being polled; must be re-queued when the poll returns.
const NOTIFIED: u8 = 3;
/// Completed; all further wakes are no-ops.
const DONE: u8 = 4;

thread_local! {
    /// The worker index of the current thread, if it is an executor worker.
    static CURRENT_WORKER: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Scheduler state shared with wakers; holds only ids and counters (never
/// the futures themselves), so it satisfies [`Waker`]'s `'static` bound
/// while the futures borrow the caller's stack.
struct Scheduler {
    /// One local queue per worker thread; empty in single-worker mode.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Wakes arriving from outside any worker (timer fire, initial seeding).
    injector: Mutex<VecDeque<usize>>,
    states: Vec<AtomicU8>,
    wake_counts: Vec<AtomicU64>,
    polls: AtomicU64,
    unfinished: AtomicUsize,
    idle_workers: AtomicUsize,
    /// Set when any worker panics (task panic or deadlock verdict) so its
    /// peers exit instead of looping forever waiting for work that will
    /// never come — the scope join then propagates the original panic.
    failed: AtomicBool,
    /// Generation counter + condvar so idle workers park instead of spin.
    signal: Mutex<u64>,
    parked: Condvar,
}

impl Scheduler {
    fn new(workers: usize, tasks: usize) -> Scheduler {
        Scheduler {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            states: (0..tasks).map(|_| AtomicU8::new(SCHEDULED)).collect(),
            wake_counts: (0..tasks).map(|_| AtomicU64::new(0)).collect(),
            polls: AtomicU64::new(0),
            unfinished: AtomicUsize::new(tasks),
            idle_workers: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            signal: Mutex::new(0),
            parked: Condvar::new(),
        }
    }

    /// Pushes a runnable task: onto the waking worker's own queue when the
    /// wake happens on a worker thread, onto the injector otherwise.
    fn enqueue(&self, id: usize) {
        let worker = CURRENT_WORKER.with(std::cell::Cell::get);
        match self.locals.get(worker) {
            Some(local) => local.lock().expect("local queue").push_back(id),
            None => self.injector.lock().expect("injector").push_back(id),
        }
        self.notify();
    }

    fn notify(&self) {
        let mut generation = self.signal.lock().expect("signal");
        *generation += 1;
        self.parked.notify_all();
    }

    /// Wake path: mark runnable and queue unless already queued/running/done.
    fn wake_task(&self, id: usize) {
        self.wake_counts[id].fetch_add(1, Ordering::Relaxed);
        loop {
            match self.states[id].load(Ordering::Acquire) {
                IDLE => {
                    if self.states[id]
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.enqueue(id);
                        return;
                    }
                }
                RUNNING => {
                    if self.states[id]
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued (SCHEDULED/NOTIFIED) or finished (DONE).
                _ => return,
            }
        }
    }

    /// Pops the next runnable task for `worker`: own queue first, then the
    /// injector, then steal from peers (all FIFO, oldest first).
    fn next_task(&self, worker: usize) -> Option<usize> {
        if let Some(local) = self.locals.get(worker) {
            if let Some(id) = local.lock().expect("local queue").pop_front() {
                return Some(id);
            }
        }
        if let Some(id) = self.injector.lock().expect("injector").pop_front() {
            return Some(id);
        }
        for (peer, local) in self.locals.iter().enumerate() {
            if peer == worker {
                continue;
            }
            if let Some(id) = local.lock().expect("peer queue").pop_front() {
                return Some(id);
            }
        }
        None
    }

    fn has_queued_work(&self) -> bool {
        if !self.injector.lock().expect("injector").is_empty() {
            return true;
        }
        self.locals
            .iter()
            .any(|q| !q.lock().expect("local queue").is_empty())
    }

    /// Whether any task is queued, being polled, or mid-wake — i.e. some
    /// agent other than the clock can still produce progress.
    fn any_task_in_flight(&self) -> bool {
        self.states
            .iter()
            .any(|s| matches!(s.load(Ordering::Acquire), SCHEDULED | RUNNING | NOTIFIED))
    }
}

struct TaskWaker {
    id: usize,
    scheduler: Arc<Scheduler>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.scheduler.wake_task(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.scheduler.wake_task(self.id);
    }
}

/// Scheduling statistics of one [`block_on_all`] run.
///
/// `completion_order`, `wake_counts` and `final_tick` are the three readings
/// the determinism property pins: with one worker they are identical across
/// repeated runs of the same task set; with many workers `final_tick` (and
/// every task's output) still is, because virtual-time arithmetic is
/// interleaving-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncRunReport {
    /// Task indices in the order they completed.
    pub completion_order: Vec<usize>,
    /// Per-task waker invocations (including no-op wakes), task order.
    pub wake_counts: Vec<u64>,
    /// Total future polls across all tasks.
    pub polls: u64,
    /// The virtual clock's reading after the last task finished.
    pub final_tick: u64,
}

type TaskSlot<'env, T> = Mutex<Option<Pin<Box<dyn Future<Output = T> + Send + 'env>>>>;

/// Drives `futures` to completion on the mini-executor and returns their
/// outputs in task order plus an [`AsyncRunReport`].
///
/// `workers` is clamped to `1..=futures.len()`; one worker runs the
/// deterministic inline loop, more run the work-stealing scoped-thread pool.
/// When every task is blocked the executor advances `clock` to the earliest
/// pending deadline (discrete-event style).
///
/// # Panics
///
/// Panics if a task deadlocks (pending with no timer registered and no wake
/// in flight) or if a task itself panics.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dipm_distsim::{block_on_all, VirtualClock};
///
/// let clock = Arc::new(VirtualClock::new());
/// let futures: Vec<_> = (0..4u64)
///     .map(|i| {
///         let clock = Arc::clone(&clock);
///         async move {
///             clock.sleep(10 * (i + 1)).await;
///             i * 2
///         }
///     })
///     .collect();
/// let (outputs, report) = block_on_all(2, &clock, futures);
/// assert_eq!(outputs, vec![0, 2, 4, 6]);
/// assert_eq!(report.final_tick, 40);
/// ```
pub fn block_on_all<'env, T, F>(
    workers: usize,
    clock: &Arc<VirtualClock>,
    futures: Vec<F>,
) -> (Vec<T>, AsyncRunReport)
where
    T: Send + 'env,
    F: Future<Output = T> + Send + 'env,
{
    let tasks = futures.len();
    let workers = workers.clamp(1, tasks.max(1));
    let single = workers == 1;
    let scheduler = Arc::new(Scheduler::new(if single { 0 } else { workers }, tasks));
    let slots: Vec<TaskSlot<'env, T>> = futures
        .into_iter()
        .map(|f| {
            Mutex::new(Some(
                Box::pin(f) as Pin<Box<dyn Future<Output = T> + Send + 'env>>
            ))
        })
        .collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let completions: Mutex<Vec<usize>> = Mutex::new(Vec::with_capacity(tasks));

    // Seed every task in index order: the injector for the inline loop,
    // round-robin over the workers' local queues for the pool.
    if single {
        scheduler
            .injector
            .lock()
            .expect("injector")
            .extend(0..tasks);
        worker_loop(
            0,
            workers,
            &scheduler,
            clock,
            &slots,
            &outputs,
            &completions,
        );
    } else {
        for id in 0..tasks {
            scheduler.locals[id % workers]
                .lock()
                .expect("local queue")
                .push_back(id);
        }
        crossbeam::thread::scope(|scope| {
            for worker in 0..workers {
                let scheduler = &scheduler;
                let slots = &slots;
                let outputs = &outputs;
                let completions = &completions;
                scope.spawn(move |_| {
                    worker_loop(
                        worker,
                        workers,
                        scheduler,
                        clock,
                        slots,
                        outputs,
                        completions,
                    );
                });
            }
        })
        .expect("executor worker panicked");
    }

    let report = AsyncRunReport {
        completion_order: completions.into_inner().expect("completions"),
        wake_counts: scheduler
            .wake_counts
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect(),
        polls: scheduler.polls.load(Ordering::Relaxed),
        final_tick: clock.now(),
    };
    let outputs = outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot")
                .expect("every task ran to completion")
        })
        .collect();
    (outputs, report)
}

fn worker_loop<'env, T: Send + 'env>(
    worker: usize,
    workers: usize,
    scheduler: &Arc<Scheduler>,
    clock: &Arc<VirtualClock>,
    slots: &[TaskSlot<'env, T>],
    outputs: &[Mutex<Option<T>>],
    completions: &Mutex<Vec<usize>>,
) {
    let single = workers == 1;
    CURRENT_WORKER.with(|w| w.set(worker));
    // If this worker unwinds (a task panicked, or the deadlock verdict
    // below fired), flag the scheduler so peers exit instead of waiting
    // forever for work — the scope join then propagates the panic.
    struct FailGuard<'a>(&'a Scheduler);
    impl Drop for FailGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.failed.store(true, Ordering::Release);
                // Poison-tolerant notify: never double-panic in a Drop.
                if let Ok(mut generation) = self.0.signal.lock() {
                    *generation += 1;
                }
                self.0.parked.notify_all();
            }
        }
    }
    let _fail_guard = FailGuard(scheduler);
    loop {
        if scheduler.failed.load(Ordering::Acquire) {
            break;
        }
        if scheduler.unfinished.load(Ordering::Acquire) == 0 {
            scheduler.notify();
            break;
        }
        if let Some(id) = scheduler.next_task(worker) {
            poll_task(id, scheduler, slots, outputs, completions);
            continue;
        }
        if single {
            // Inline loop: nothing runnable means everything is parked on
            // the clock — advance it or we are done/deadlocked.
            if clock.fire_next() {
                continue;
            }
            if scheduler.unfinished.load(Ordering::Acquire) == 0 {
                break;
            }
            panic!("executor deadlock: tasks pending but no timers scheduled");
        }
        // Pool: the last worker to go idle owns the clock advance; everyone
        // else parks until new work is signalled.
        let generation = *scheduler.signal.lock().expect("signal");
        let idlers = scheduler.idle_workers.fetch_add(1, Ordering::AcqRel) + 1;
        assert!(
            idlers <= workers,
            "idle counter drifted: {idlers} > {workers}"
        );
        if idlers == workers {
            if !scheduler.has_queued_work()
                && scheduler.unfinished.load(Ordering::Acquire) > 0
                && !clock.fire_next()
                // `fire_next` is pop-and-wake-atomic, so after a failed fire
                // a racing fire by another momentary last-idler has already
                // made its wakes visible — re-check the queues before
                // suspecting deadlock.
                && !scheduler.has_queued_work()
                && scheduler.unfinished.load(Ordering::Acquire) > 0
                // The idlers reading is a snapshot that may be stale: a peer
                // can have left idle, consumed a freshly-fired task and be
                // polling it right now, leaving queues and heap empty while
                // work is very much in flight. Every in-flight window
                // (wake→enqueue, dequeue→poll, poll→requeue) passes through
                // a visible SCHEDULED/RUNNING/NOTIFIED state, so only an
                // all-IDLE task set — awaiting wakes no live agent can ever
                // produce — is a genuine deadlock.
                && !scheduler.any_task_in_flight()
            {
                scheduler.idle_workers.fetch_sub(1, Ordering::AcqRel);
                panic!("executor deadlock: tasks pending but no timers scheduled");
            }
            scheduler.idle_workers.fetch_sub(1, Ordering::AcqRel);
            scheduler.notify();
        } else {
            let guard = scheduler.signal.lock().expect("signal");
            if *guard == generation {
                // Timeout only as a missed-wakeup backstop; wakes notify.
                let _ = scheduler
                    .parked
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("signal");
            }
            scheduler.idle_workers.fetch_sub(1, Ordering::AcqRel);
        }
    }
    CURRENT_WORKER.with(|w| w.set(usize::MAX));
}

fn poll_task<'env, T: Send + 'env>(
    id: usize,
    scheduler: &Arc<Scheduler>,
    slots: &[TaskSlot<'env, T>],
    outputs: &[Mutex<Option<T>>],
    completions: &Mutex<Vec<usize>>,
) {
    // Only the worker that dequeued the id may transition SCHEDULED→RUNNING.
    scheduler.states[id].store(RUNNING, Ordering::Release);
    let Some(mut future) = slots[id].lock().expect("task slot").take() else {
        // Completed by an earlier poll; stale queue entry.
        scheduler.states[id].store(DONE, Ordering::Release);
        return;
    };
    let waker = Waker::from(Arc::new(TaskWaker {
        id,
        scheduler: Arc::clone(scheduler),
    }));
    let mut cx = Context::from_waker(&waker);
    scheduler.polls.fetch_add(1, Ordering::Relaxed);
    match future.as_mut().poll(&mut cx) {
        Poll::Ready(value) => {
            *outputs[id].lock().expect("output slot") = Some(value);
            scheduler.states[id].store(DONE, Ordering::Release);
            completions.lock().expect("completions").push(id);
            if scheduler.unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                scheduler.notify();
            }
        }
        Poll::Pending => {
            // Restore the future *before* leaving RUNNING so a concurrent
            // wake that wins the race finds something to poll.
            *slots[id].lock().expect("task slot") = Some(future);
            match scheduler.states[id].compare_exchange(
                RUNNING,
                IDLE,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {}
                // Woken mid-poll: requeue ourselves. (Further wakes see
                // NOTIFIED and no-op, so the state cannot change again
                // until we store SCHEDULED — one CAS attempt suffices.)
                Err(NOTIFIED) => {
                    scheduler.states[id].store(SCHEDULED, Ordering::Release);
                    scheduler.enqueue(id);
                }
                Err(_) => unreachable!("only the polling worker leaves RUNNING"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::yield_now;

    fn staircase(clock: &Arc<VirtualClock>, tasks: u64) -> Vec<impl Future<Output = u64> + Send> {
        (0..tasks)
            .map(|i| {
                let clock = Arc::clone(clock);
                // Deadlines derive from the task's own timeline (`local`),
                // not from global `clock.now()` reads — the latter are
                // interleaving-dependent under the work-stealing pool.
                async move {
                    let mut local = 0;
                    for _ in 0..3 {
                        local += i + 1;
                        clock.sleep_until(local).await;
                        yield_now().await;
                    }
                    local
                }
            })
            .collect()
    }

    #[test]
    fn single_worker_is_deterministic() {
        let runs: Vec<(Vec<u64>, AsyncRunReport)> = (0..3)
            .map(|_| {
                let clock = Arc::new(VirtualClock::new());
                block_on_all(1, &clock, staircase(&clock, 6))
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.0, runs[0].0);
            assert_eq!(run.1, runs[0].1);
        }
        // Each task finishes at 3·(i+1): its sleeps stack on its own chain.
        assert_eq!(runs[0].0, vec![3, 6, 9, 12, 15, 18]);
        assert_eq!(runs[0].1.final_tick, 18);
    }

    #[test]
    fn pool_matches_single_worker_outputs_and_ticks() {
        let clock = Arc::new(VirtualClock::new());
        let (reference, single) = block_on_all(1, &clock, staircase(&clock, 8));
        for workers in [2, 3, 8] {
            let clock = Arc::new(VirtualClock::new());
            let (outputs, report) = block_on_all(workers, &clock, staircase(&clock, 8));
            assert_eq!(outputs, reference, "workers = {workers}");
            assert_eq!(report.final_tick, single.final_tick, "workers = {workers}");
            let mut order = report.completion_order.clone();
            order.sort_unstable();
            assert_eq!(order, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn immediate_futures_complete_in_seed_order() {
        let clock = Arc::new(VirtualClock::new());
        let futures: Vec<_> = (0..5u32).map(|i| async move { i * 10 }).collect();
        let (outputs, report) = block_on_all(1, &clock, futures);
        assert_eq!(outputs, vec![0, 10, 20, 30, 40]);
        assert_eq!(report.completion_order, vec![0, 1, 2, 3, 4]);
        assert_eq!(report.final_tick, 0);
        assert_eq!(report.polls, 5);
    }

    #[test]
    fn empty_task_set() {
        let clock = Arc::new(VirtualClock::new());
        let (outputs, report) = block_on_all(4, &clock, Vec::<YieldOnce>::new());
        assert!(outputs.is_empty());
        assert_eq!(report.polls, 0);
    }

    // A nameable future type for the empty-set test.
    struct YieldOnce;
    impl Future for YieldOnce {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            Poll::Ready(())
        }
    }

    #[test]
    fn yields_interleave_tasks() {
        // With yields, a single worker round-robins the run queue.
        let log: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let clock = Arc::new(VirtualClock::new());
        let futures: Vec<_> = (0..3usize)
            .map(|i| {
                let log = Arc::clone(&log);
                async move {
                    for _ in 0..2 {
                        log.lock().unwrap().push(i);
                        yield_now().await;
                    }
                }
            })
            .collect();
        block_on_all(1, &clock, futures);
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 0, 1, 2]);
    }

    struct Stuck;
    impl Future for Stuck {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            Poll::Pending
        }
    }

    #[test]
    #[should_panic(expected = "executor deadlock")]
    fn forever_pending_without_timer_panics() {
        let clock = Arc::new(VirtualClock::new());
        block_on_all(1, &clock, vec![Stuck]);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn pool_deadlock_panic_propagates_instead_of_hanging() {
        // The deadlock verdict fires on one worker; the failed flag must
        // release its peers so the scope join can propagate the panic
        // rather than blocking forever on workers that never exit.
        let clock = Arc::new(VirtualClock::new());
        block_on_all(2, &clock, vec![Stuck, Stuck]);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn pool_task_panic_propagates_instead_of_hanging() {
        let clock = Arc::new(VirtualClock::new());
        let futures: Vec<_> = (0..3)
            .map(|i| {
                let clock = Arc::clone(&clock);
                async move {
                    clock.sleep(1).await;
                    assert!(i != 1, "boom");
                }
            })
            .collect();
        block_on_all(2, &clock, futures);
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let counter = Arc::new(AtomicU64::new(0));
        let clock = Arc::new(VirtualClock::new());
        let futures: Vec<_> = (0..64)
            .map(|_| {
                let counter = Arc::clone(&counter);
                let clock = Arc::clone(&clock);
                async move {
                    clock.sleep(1).await;
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        block_on_all(4, &clock, futures);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
