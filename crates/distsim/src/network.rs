//! An in-memory, byte-accounted message-passing network.
//!
//! Mirrors the paper's experiment environment: all "nodes" live in one
//! process (one thread per base station, Section V-A) and exchange real
//! messages whose payload sizes are metered — the numbers behind the
//! communication-cost comparison in Figure 4(c).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::{DistSimError, Result};
use crate::metrics::{CostMeter, TrafficClass};
use crate::node::NodeId;

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Traffic class, for cost breakdown.
    pub class: TrafficClass,
    /// Opaque payload; its length is the metered communication cost.
    pub payload: Bytes,
}

struct NetworkInner {
    meter: CostMeter,
    mailboxes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
}

/// A shared in-memory network with per-message byte accounting.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use dipm_distsim::{Network, NodeId, TrafficClass, DATA_CENTER};
///
/// # fn main() -> Result<(), dipm_distsim::DistSimError> {
/// let network = Network::new();
/// let center = network.register(DATA_CENTER)?;
/// let station = NodeId::base_station(0);
/// network.register(station)?; // station mailbox unused in this example
///
/// network.send(station, DATA_CENTER, TrafficClass::Report, Bytes::from_static(b"id+w"))?;
/// let env = center.try_recv().expect("delivered");
/// assert_eq!(env.from, station);
/// assert_eq!(network.meter().report().report_bytes, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network {
            inner: Arc::new(NetworkInner {
                meter: CostMeter::new(),
                mailboxes: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The shared cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.inner.meter
    }

    /// Registers `node`, returning its mailbox.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::DuplicateNode`] if `node` already registered.
    pub fn register(&self, node: NodeId) -> Result<Mailbox> {
        let mut boxes = self.inner.mailboxes.lock();
        if boxes.contains_key(&node) {
            return Err(DistSimError::DuplicateNode(node));
        }
        let (tx, rx) = unbounded();
        boxes.insert(node, tx);
        Ok(Mailbox { node, rx })
    }

    /// Sends one metered message.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::UnknownNode`] if `to` never registered and
    /// [`DistSimError::Disconnected`] if its mailbox was dropped.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        class: TrafficClass,
        payload: Bytes,
    ) -> Result<()> {
        let sender = {
            let boxes = self.inner.mailboxes.lock();
            boxes
                .get(&to)
                .cloned()
                .ok_or(DistSimError::UnknownNode(to))?
        };
        self.inner.meter.record_message(class, payload.len() as u64);
        sender
            .send(Envelope {
                from,
                to,
                class,
                payload,
            })
            .map_err(|_| DistSimError::Disconnected(to))
    }

    /// Broadcasts the same payload to every given node, metering each copy
    /// separately (the data center pays per-station dissemination cost).
    ///
    /// # Errors
    ///
    /// Fails on the first unknown or disconnected target.
    pub fn broadcast<I>(
        &self,
        from: NodeId,
        targets: I,
        class: TrafficClass,
        payload: &Bytes,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut delivered = 0;
        for node in targets {
            self.send(from, node, class, payload.clone())?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// The number of registered mailboxes.
    pub fn node_count(&self) -> usize {
        self.inner.mailboxes.lock().len()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// The receiving end of one node's message queue.
#[derive(Debug)]
pub struct Mailbox {
    node: NodeId,
    rx: Receiver<Envelope>,
}

impl Mailbox {
    /// The node this mailbox belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Receives the next message without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Receives, blocking until a message arrives or every sender is gone.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::Disconnected`] when the network was dropped.
    pub fn recv(&self) -> Result<Envelope> {
        self.rx
            .recv()
            .map_err(|_| DistSimError::Disconnected(self.node))
    }

    /// Drains all currently queued messages.
    pub fn drain(&self) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DATA_CENTER;

    #[test]
    fn register_send_receive() {
        let net = Network::new();
        let center = net.register(DATA_CENTER).unwrap();
        net.register(NodeId(1)).unwrap();
        net.send(
            NodeId(1),
            DATA_CENTER,
            TrafficClass::Report,
            Bytes::from_static(b"abc"),
        )
        .unwrap();
        let env = center.recv().unwrap();
        assert_eq!(env.payload.as_ref(), b"abc");
        assert_eq!(env.from, NodeId(1));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let net = Network::new();
        net.register(NodeId(1)).unwrap();
        assert_eq!(
            net.register(NodeId(1)).unwrap_err(),
            DistSimError::DuplicateNode(NodeId(1))
        );
    }

    #[test]
    fn unknown_target_rejected() {
        let net = Network::new();
        let err = net
            .send(NodeId(1), NodeId(9), TrafficClass::Control, Bytes::new())
            .unwrap_err();
        assert_eq!(err, DistSimError::UnknownNode(NodeId(9)));
    }

    #[test]
    fn broadcast_meters_each_copy() {
        let net = Network::new();
        let mut boxes = Vec::new();
        for i in 0..4 {
            boxes.push(net.register(NodeId::base_station(i)).unwrap());
        }
        let payload = Bytes::from(vec![0u8; 100]);
        let delivered = net
            .broadcast(
                DATA_CENTER,
                (0..4).map(NodeId::base_station),
                TrafficClass::Query,
                &payload,
            )
            .unwrap();
        assert_eq!(delivered, 4);
        assert_eq!(net.meter().report().query_bytes, 400);
        for mailbox in &boxes {
            assert_eq!(mailbox.drain().len(), 1);
        }
    }

    #[test]
    fn drain_empties_queue() {
        let net = Network::new();
        let mailbox = net.register(NodeId(1)).unwrap();
        for _ in 0..3 {
            net.send(DATA_CENTER, NodeId(1), TrafficClass::Control, Bytes::new())
                .unwrap();
        }
        assert_eq!(mailbox.drain().len(), 3);
        assert!(mailbox.try_recv().is_none());
    }

    #[test]
    fn network_clones_share_state() {
        let net = Network::new();
        let clone = net.clone();
        let _mailbox = net.register(NodeId(1)).unwrap();
        clone
            .send(
                DATA_CENTER,
                NodeId(1),
                TrafficClass::Data,
                Bytes::from_static(b"xy"),
            )
            .unwrap();
        assert_eq!(net.meter().report().data_bytes, 2);
        assert_eq!(clone.node_count(), 1);
    }
}
