//! An in-memory, byte-accounted message-passing network.
//!
//! Mirrors the paper's experiment environment: all "nodes" live in one
//! process (one thread per base station, Section V-A) and exchange real
//! messages whose payload sizes are metered — the numbers behind the
//! communication-cost comparison in Figure 4(c).
//!
//! A network can additionally carry a [`LatencyModel`] bound to a
//! [`VirtualClock`]: every envelope is then stamped with its modeled send
//! and delivery ticks, which is what the async runtime's `makespan_ticks`
//! meter is computed from. The stamps are simulation metadata — they ride
//! outside the payload, so byte accounting is identical with and without a
//! model.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::error::{DistSimError, Result};
use crate::metrics::{CostMeter, TrafficClass};
use crate::node::NodeId;

/// Deterministic per-message flight-time model, in virtual ticks.
///
/// Flight time is `base_ticks + ticks_per_byte · payload_len + jitter`,
/// where the jitter is a pure hash of `(seed, from, to)` bounded by
/// `jitter_ticks` — the same pair of nodes always sees the same extra
/// delay, so repeated runs produce identical makespans. `ticks_per_row`
/// does not affect messages at all; it is the station-side scan cost the
/// async pipeline charges per stored pattern row, kept here so one struct
/// describes the whole latency dimension of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Fixed per-message propagation delay (one-way), in ticks.
    pub base_ticks: u64,
    /// Serialization cost per payload byte, in ticks.
    pub ticks_per_byte: u64,
    /// Station-side scan cost per stored pattern row, in ticks.
    pub ticks_per_row: u64,
    /// Upper bound on the deterministic per-link jitter, in ticks.
    pub jitter_ticks: u64,
    /// Seed of the jitter hash.
    pub seed: u64,
}

impl Default for LatencyModel {
    /// A mild default: 100-tick propagation, one tick per byte on the wire
    /// and per row scanned, no jitter.
    fn default() -> Self {
        LatencyModel {
            base_ticks: 100,
            ticks_per_byte: 1,
            ticks_per_row: 1,
            jitter_ticks: 0,
            seed: 0,
        }
    }
}

impl LatencyModel {
    /// A model where every message and scan takes zero ticks.
    pub fn zero() -> LatencyModel {
        LatencyModel {
            base_ticks: 0,
            ticks_per_byte: 0,
            ticks_per_row: 0,
            jitter_ticks: 0,
            seed: 0,
        }
    }

    /// Modeled one-way flight time of a `payload_len`-byte message.
    pub fn flight_ticks(&self, from: NodeId, to: NodeId, payload_len: usize) -> u64 {
        self.base_ticks
            .saturating_add(self.ticks_per_byte.saturating_mul(payload_len as u64))
            .saturating_add(self.link_jitter(from, to))
    }

    /// Modeled cost of scanning `rows` stored pattern rows.
    pub fn scan_ticks(&self, rows: usize) -> u64 {
        self.ticks_per_row.saturating_mul(rows as u64)
    }

    /// The deterministic jitter of the `from → to` link.
    fn link_jitter(&self, from: NodeId, to: NodeId) -> u64 {
        if self.jitter_ticks == 0 {
            return 0;
        }
        // SplitMix64 finalizer over (seed, from, to): stateless and stable.
        let mut x = self.seed ^ ((from.0 as u64) << 32 | to.0 as u64);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Saturating like the other tick math: jitter_ticks == u64::MAX
        // must not overflow the modulus.
        x % self.jitter_ticks.saturating_add(1)
    }
}

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Traffic class, for cost breakdown.
    pub class: TrafficClass,
    /// Opaque payload; its length is the metered communication cost.
    pub payload: Bytes,
    /// Virtual tick at which the message was sent (`0` without a
    /// [`LatencyModel`]).
    pub sent_at: u64,
    /// Modeled virtual delivery tick (`sent_at` plus flight time; `0`
    /// without a model). Simulation metadata, not payload.
    pub deliver_at: u64,
}

struct NetworkInner {
    meter: CostMeter,
    mailboxes: Mutex<HashMap<NodeId, Sender<Envelope>>>,
    timing: Option<(LatencyModel, Arc<VirtualClock>)>,
}

/// A shared in-memory network with per-message byte accounting.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use dipm_distsim::{Network, NodeId, TrafficClass, DATA_CENTER};
///
/// # fn main() -> Result<(), dipm_distsim::DistSimError> {
/// let network = Network::new();
/// let center = network.register(DATA_CENTER)?;
/// let station = NodeId::base_station(0);
/// network.register(station)?; // station mailbox unused in this example
///
/// network.send(station, DATA_CENTER, TrafficClass::Report, Bytes::from_static(b"id+w"))?;
/// let env = center.try_recv().expect("delivered");
/// assert_eq!(env.from, station);
/// assert_eq!(network.meter().report().report_bytes, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// Creates an empty network with no latency model (all stamps zero).
    pub fn new() -> Network {
        Network {
            inner: Arc::new(NetworkInner {
                meter: CostMeter::new(),
                mailboxes: Mutex::new(HashMap::new()),
                timing: None,
            }),
        }
    }

    /// Creates an empty network that stamps every envelope with modeled
    /// send/delivery ticks read from `clock`.
    pub fn with_latency(model: LatencyModel, clock: Arc<VirtualClock>) -> Network {
        Network {
            inner: Arc::new(NetworkInner {
                meter: CostMeter::new(),
                mailboxes: Mutex::new(HashMap::new()),
                timing: Some((model, clock)),
            }),
        }
    }

    /// The latency model, if this network stamps delivery times.
    pub fn latency_model(&self) -> Option<&LatencyModel> {
        self.inner.timing.as_ref().map(|(model, _)| model)
    }

    /// The shared cost meter.
    pub fn meter(&self) -> &CostMeter {
        &self.inner.meter
    }

    /// Registers `node`, returning its mailbox.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::DuplicateNode`] if `node` already registered.
    pub fn register(&self, node: NodeId) -> Result<Mailbox> {
        let mut boxes = self.inner.mailboxes.lock();
        if boxes.contains_key(&node) {
            return Err(DistSimError::DuplicateNode(node));
        }
        let (tx, rx) = unbounded();
        boxes.insert(node, tx);
        Ok(Mailbox { node, rx })
    }

    /// Sends one metered message.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::UnknownNode`] if `to` never registered and
    /// [`DistSimError::Disconnected`] if its mailbox was dropped.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        class: TrafficClass,
        payload: Bytes,
    ) -> Result<()> {
        let sender = {
            let boxes = self.inner.mailboxes.lock();
            boxes
                .get(&to)
                .cloned()
                .ok_or(DistSimError::UnknownNode(to))?
        };
        let sent_at = match &self.inner.timing {
            Some((_, clock)) => clock.now(),
            None => 0,
        };
        self.deliver(from, to, class, payload, sent_at, sender)
    }

    /// Sends one metered message stamped as sent at the given virtual tick.
    ///
    /// Asynchronous stations use this instead of [`Network::send`]: a
    /// station's send time is a fact of *its own* virtual timeline (its
    /// broadcast arrival plus its modeled scan time), not of the global
    /// clock — which may already have advanced past it while the station's
    /// final poll sat in an executor queue. Stamping explicitly keeps
    /// delivery times (and therefore `makespan_ticks`) identical whatever
    /// the worker interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::UnknownNode`] if `to` never registered and
    /// [`DistSimError::Disconnected`] if its mailbox was dropped.
    pub fn send_at(
        &self,
        from: NodeId,
        to: NodeId,
        class: TrafficClass,
        payload: Bytes,
        sent_at: u64,
    ) -> Result<()> {
        let sender = {
            let boxes = self.inner.mailboxes.lock();
            boxes
                .get(&to)
                .cloned()
                .ok_or(DistSimError::UnknownNode(to))?
        };
        self.deliver(from, to, class, payload, sent_at, sender)
    }

    fn deliver(
        &self,
        from: NodeId,
        to: NodeId,
        class: TrafficClass,
        payload: Bytes,
        sent_at: u64,
        sender: Sender<Envelope>,
    ) -> Result<()> {
        self.inner.meter.record_message(class, payload.len() as u64);
        let deliver_at = match &self.inner.timing {
            Some((model, _)) => sent_at.saturating_add(model.flight_ticks(from, to, payload.len())),
            None => sent_at,
        };
        sender
            .send(Envelope {
                from,
                to,
                class,
                payload,
                sent_at,
                deliver_at,
            })
            .map_err(|_| DistSimError::Disconnected(to))
    }

    /// Broadcasts the same payload to every given node, metering each copy
    /// separately (the data center pays per-station dissemination cost).
    ///
    /// # Errors
    ///
    /// Fails on the first unknown or disconnected target.
    pub fn broadcast<I>(
        &self,
        from: NodeId,
        targets: I,
        class: TrafficClass,
        payload: &Bytes,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut delivered = 0;
        for node in targets {
            self.send(from, node, class, payload.clone())?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Broadcasts the same payload to every given node, stamping every copy
    /// as sent at the given virtual tick.
    ///
    /// Streaming epochs use this for delta broadcasts: the data center's
    /// send time is a fact of the *session's* timeline (the previous
    /// epoch's makespan), not of whatever the current epoch's fresh clock
    /// happens to read, so each delta envelope is stamped from the tick the
    /// center actually reached — and per-epoch makespans accumulate
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Fails on the first unknown or disconnected target.
    pub fn broadcast_at<I>(
        &self,
        from: NodeId,
        targets: I,
        class: TrafficClass,
        payload: &Bytes,
        sent_at: u64,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut delivered = 0;
        for node in targets {
            self.send_at(from, node, class, payload.clone(), sent_at)?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Broadcasts the same payload with a *per-recipient* send tick,
    /// metering each copy separately.
    ///
    /// This is the dissemination primitive of a multi-tenant service
    /// epoch: concurrent tenants share each station's downlink, so the
    /// second tenant's frame cannot start its flight until the link
    /// finished serializing the first — its copy is stamped from a later
    /// tick than a lone tenant's would be. The stagger is pure simulation
    /// metadata, exactly like [`Network::broadcast_at`]'s single stamp:
    /// byte accounting is identical whatever ticks the copies carry.
    ///
    /// # Errors
    ///
    /// Fails on the first unknown or disconnected target.
    pub fn broadcast_each_at<I>(
        &self,
        from: NodeId,
        targets: I,
        class: TrafficClass,
        payload: &Bytes,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = (NodeId, u64)>,
    {
        let mut delivered = 0;
        for (node, sent_at) in targets {
            self.send_at(from, node, class, payload.clone(), sent_at)?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// The number of registered mailboxes.
    pub fn node_count(&self) -> usize {
        self.inner.mailboxes.lock().len()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// The receiving end of one node's message queue.
#[derive(Debug)]
pub struct Mailbox {
    node: NodeId,
    rx: Receiver<Envelope>,
}

impl Mailbox {
    /// The node this mailbox belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Receives the next message without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Receives, blocking until a message arrives or every sender is gone.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::Disconnected`] when the network was dropped.
    pub fn recv(&self) -> Result<Envelope> {
        self.rx
            .recv()
            .map_err(|_| DistSimError::Disconnected(self.node))
    }

    /// Drains all currently queued messages.
    pub fn drain(&self) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DATA_CENTER;

    #[test]
    fn register_send_receive() {
        let net = Network::new();
        let center = net.register(DATA_CENTER).unwrap();
        net.register(NodeId(1)).unwrap();
        net.send(
            NodeId(1),
            DATA_CENTER,
            TrafficClass::Report,
            Bytes::from_static(b"abc"),
        )
        .unwrap();
        let env = center.recv().unwrap();
        assert_eq!(env.payload.as_ref(), b"abc");
        assert_eq!(env.from, NodeId(1));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let net = Network::new();
        net.register(NodeId(1)).unwrap();
        assert_eq!(
            net.register(NodeId(1)).unwrap_err(),
            DistSimError::DuplicateNode(NodeId(1))
        );
    }

    #[test]
    fn unknown_target_rejected() {
        let net = Network::new();
        let err = net
            .send(NodeId(1), NodeId(9), TrafficClass::Control, Bytes::new())
            .unwrap_err();
        assert_eq!(err, DistSimError::UnknownNode(NodeId(9)));
    }

    #[test]
    fn broadcast_meters_each_copy() {
        let net = Network::new();
        let mut boxes = Vec::new();
        for i in 0..4 {
            boxes.push(net.register(NodeId::base_station(i)).unwrap());
        }
        let payload = Bytes::from(vec![0u8; 100]);
        let delivered = net
            .broadcast(
                DATA_CENTER,
                (0..4).map(NodeId::base_station),
                TrafficClass::Query,
                &payload,
            )
            .unwrap();
        assert_eq!(delivered, 4);
        assert_eq!(net.meter().report().query_bytes, 400);
        for mailbox in &boxes {
            assert_eq!(mailbox.drain().len(), 1);
        }
    }

    #[test]
    fn broadcast_at_stamps_from_the_given_tick() {
        let model = LatencyModel {
            base_ticks: 10,
            ticks_per_byte: 0,
            ticks_per_row: 0,
            jitter_ticks: 0,
            seed: 0,
        };
        let clock = Arc::new(VirtualClock::new());
        let net = Network::with_latency(model, Arc::clone(&clock));
        let mailbox = net.register(NodeId(1)).unwrap();
        net.broadcast_at(
            DATA_CENTER,
            [NodeId(1)],
            TrafficClass::Query,
            &Bytes::from_static(b"delta"),
            500,
        )
        .unwrap();
        let env = mailbox.recv().unwrap();
        assert_eq!(env.sent_at, 500);
        assert_eq!(env.deliver_at, 510);
        assert_eq!(net.meter().report().query_bytes, 5);
    }

    #[test]
    fn broadcast_each_at_staggers_per_recipient_stamps() {
        let model = LatencyModel {
            base_ticks: 10,
            ticks_per_byte: 1,
            ticks_per_row: 0,
            jitter_ticks: 0,
            seed: 0,
        };
        let clock = Arc::new(VirtualClock::new());
        let net = Network::with_latency(model, Arc::clone(&clock));
        let a = net.register(NodeId(1)).unwrap();
        let b = net.register(NodeId(2)).unwrap();
        let payload = Bytes::from_static(b"frame");
        let delivered = net
            .broadcast_each_at(
                DATA_CENTER,
                [(NodeId(1), 100), (NodeId(2), 105)],
                TrafficClass::Query,
                &payload,
            )
            .unwrap();
        assert_eq!(delivered, 2);
        let first = a.recv().unwrap();
        let second = b.recv().unwrap();
        assert_eq!((first.sent_at, first.deliver_at), (100, 115));
        assert_eq!((second.sent_at, second.deliver_at), (105, 120));
        // Byte accounting ignores the stamps: two metered copies.
        assert_eq!(net.meter().report().query_bytes, 10);
        assert_eq!(net.meter().report().messages, 2);
    }

    #[test]
    fn drain_empties_queue() {
        let net = Network::new();
        let mailbox = net.register(NodeId(1)).unwrap();
        for _ in 0..3 {
            net.send(DATA_CENTER, NodeId(1), TrafficClass::Control, Bytes::new())
                .unwrap();
        }
        assert_eq!(mailbox.drain().len(), 3);
        assert!(mailbox.try_recv().is_none());
    }

    #[test]
    fn latency_model_stamps_envelopes_deterministically() {
        let model = LatencyModel {
            base_ticks: 10,
            ticks_per_byte: 2,
            ticks_per_row: 1,
            jitter_ticks: 5,
            seed: 99,
        };
        let clock = Arc::new(VirtualClock::new());
        let net = Network::with_latency(model, Arc::clone(&clock));
        let mailbox = net.register(NodeId(1)).unwrap();
        net.send(
            DATA_CENTER,
            NodeId(1),
            TrafficClass::Query,
            Bytes::from_static(b"abcd"),
        )
        .unwrap();
        let env = mailbox.recv().unwrap();
        assert_eq!(env.sent_at, 0);
        let expected = model.flight_ticks(DATA_CENTER, NodeId(1), 4);
        assert_eq!(env.deliver_at, expected);
        assert!(expected >= 18, "base + 2·4 bytes before jitter");
        assert!(expected <= 23, "jitter bounded by jitter_ticks");
        // Same link, same model ⇒ same stamp, run after run.
        assert_eq!(expected, model.flight_ticks(DATA_CENTER, NodeId(1), 4));
        // Byte accounting is untouched by the stamps.
        assert_eq!(net.meter().report().query_bytes, 4);
    }

    #[test]
    fn unmodeled_network_stamps_zero() {
        let net = Network::new();
        let mailbox = net.register(NodeId(1)).unwrap();
        net.send(
            DATA_CENTER,
            NodeId(1),
            TrafficClass::Control,
            Bytes::from_static(b"x"),
        )
        .unwrap();
        let env = mailbox.recv().unwrap();
        assert_eq!((env.sent_at, env.deliver_at), (0, 0));
        assert!(net.latency_model().is_none());
    }

    #[test]
    fn zero_model_is_all_zeros() {
        let model = LatencyModel::zero();
        assert_eq!(model.flight_ticks(NodeId(1), NodeId(2), 10_000), 0);
        assert_eq!(model.scan_ticks(5_000), 0);
    }

    #[test]
    fn extreme_model_values_saturate_instead_of_panicking() {
        let model = LatencyModel {
            base_ticks: u64::MAX,
            ticks_per_byte: u64::MAX,
            ticks_per_row: u64::MAX,
            jitter_ticks: u64::MAX,
            seed: 1,
        };
        assert_eq!(
            model.flight_ticks(NodeId(1), NodeId(2), usize::MAX),
            u64::MAX
        );
        assert_eq!(model.scan_ticks(usize::MAX), u64::MAX);
    }

    #[test]
    fn network_clones_share_state() {
        let net = Network::new();
        let clone = net.clone();
        let _mailbox = net.register(NodeId(1)).unwrap();
        clone
            .send(
                DATA_CENTER,
                NodeId(1),
                TrafficClass::Data,
                Bytes::from_static(b"xy"),
            )
            .unwrap();
        assert_eq!(net.meter().report().data_bytes, 2);
        assert_eq!(clone.node_count(), 1);
    }
}
