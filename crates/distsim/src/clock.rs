//! Virtual time for the async station runtime.
//!
//! The paper's prototype measures wall time on one machine; a latency-bound
//! deployment is better modeled with *virtual* ticks — broadcast and report
//! frames carry modeled delivery times, and the executor advances this clock
//! discrete-event style whenever every task is blocked on a timer. Ticks are
//! deterministic under a fixed latency model and seed, so the
//! `makespan_ticks` meter is reproducible in a way wall time never is.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// A shared discrete-event clock: a monotone tick counter plus a pending
/// timer heap.
///
/// Tasks park on it with [`VirtualClock::sleep_until`]; the executor calls
/// [`VirtualClock::fire_next`] when no task is runnable, jumping time
/// forward to the earliest deadline. Timers registered at the same tick fire
/// in registration order, so single-worker runs are fully deterministic.
///
/// # Examples
///
/// ```
/// use dipm_distsim::VirtualClock;
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), 0);
/// assert!(!clock.fire_next()); // nothing pending, time stands still
/// ```
#[derive(Debug)]
pub struct VirtualClock {
    inner: Mutex<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    now: u64,
    seq: u64,
    timers: BinaryHeap<Reverse<TimerEntry>>,
}

#[derive(Debug)]
struct TimerEntry {
    deadline: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline, self.seq) == (other.deadline, other.seq)
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl VirtualClock {
    /// A clock at tick zero with no pending timers.
    pub fn new() -> VirtualClock {
        VirtualClock {
            inner: Mutex::new(ClockInner {
                now: 0,
                seq: 0,
                timers: BinaryHeap::new(),
            }),
        }
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.inner.lock().expect("clock lock").now
    }

    /// The number of registered, unfired timers.
    pub fn pending_timers(&self) -> usize {
        self.inner.lock().expect("clock lock").timers.len()
    }

    /// A future resolving once the clock reaches `deadline` (immediately if
    /// it already has).
    pub fn sleep_until(self: &Arc<Self>, deadline: u64) -> Sleep {
        Sleep {
            clock: Arc::clone(self),
            deadline,
        }
    }

    /// A future resolving `ticks` from now.
    pub fn sleep(self: &Arc<Self>, ticks: u64) -> Sleep {
        let deadline = self.now().saturating_add(ticks);
        self.sleep_until(deadline)
    }

    /// Advances time to the earliest pending deadline and wakes every timer
    /// due at (or before) it, in registration order. Returns `false` when no
    /// timer is pending — the clock never moves on its own.
    ///
    /// The wakes run **inside** the clock lock, making pop-and-wake atomic:
    /// a concurrent caller can never observe the heap empty while a woken
    /// task is still invisible to its scheduler, which is what keeps the
    /// executor's idle-pool deadlock detector sound. (The lock is a leaf —
    /// waker callbacks must not re-enter the clock, and the executor's
    /// don't: they only touch run queues.)
    pub fn fire_next(&self) -> bool {
        let mut inner = self.inner.lock().expect("clock lock");
        let Some(Reverse(first)) = inner.timers.peek() else {
            return false;
        };
        inner.now = inner.now.max(first.deadline);
        let now = inner.now;
        while inner
            .timers
            .peek()
            .is_some_and(|Reverse(t)| t.deadline <= now)
        {
            let Reverse(entry) = inner.timers.pop().expect("peeked entry");
            entry.waker.wake();
        }
        true
    }

    /// Registers `waker` for `deadline` unless the deadline already passed
    /// (in which case the caller should complete immediately).
    fn register(&self, deadline: u64, waker: &Waker) -> bool {
        let mut inner = self.inner.lock().expect("clock lock");
        if inner.now >= deadline {
            return false;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.timers.push(Reverse(TimerEntry {
            deadline,
            seq,
            waker: waker.clone(),
        }));
        true
    }
}

/// Future returned by [`VirtualClock::sleep_until`] / [`VirtualClock::sleep`].
#[derive(Debug)]
pub struct Sleep {
    clock: Arc<VirtualClock>,
    deadline: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.register(self.deadline, cx.waker()) {
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    }
}

/// A future that yields to the executor exactly once, then completes.
///
/// The station pipeline awaits this between shard scans so one slow station
/// cannot monopolize a worker for its whole store.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn fires_in_deadline_then_registration_order() {
        let clock = Arc::new(VirtualClock::new());
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        assert!(clock.register(10, &waker));
        assert!(clock.register(5, &waker));
        assert!(clock.register(10, &waker));
        assert!(clock.fire_next());
        assert_eq!(clock.now(), 5);
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
        assert!(clock.fire_next());
        assert_eq!(clock.now(), 10);
        assert_eq!(counter.0.load(Ordering::Relaxed), 3);
        assert!(!clock.fire_next());
    }

    #[test]
    fn register_past_deadline_declines() {
        let clock = Arc::new(VirtualClock::new());
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(counter);
        assert!(clock.register(3, &waker));
        clock.fire_next();
        assert!(!clock.register(3, &waker), "elapsed deadline must decline");
        assert!(!clock.register(2, &waker));
    }

    #[test]
    fn sleep_for_is_relative_to_now() {
        let clock = Arc::new(VirtualClock::new());
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(counter);
        clock.register(7, &waker);
        clock.fire_next();
        let sleep = clock.sleep(3);
        assert_eq!(sleep.deadline, 10);
    }
}
