//! Error types for the simulated network.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// A convenient result alias used throughout [`dipm-distsim`](crate).
pub type Result<T, E = DistSimError> = std::result::Result<T, E>;

/// Errors produced by the simulated network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistSimError {
    /// A message targeted a node that never registered a mailbox.
    UnknownNode(NodeId),
    /// A node registered twice.
    DuplicateNode(NodeId),
    /// The receiving mailbox was dropped before delivery.
    Disconnected(NodeId),
    /// The `DIPM_MODE` environment variable held a value outside the
    /// documented grammar. Malformed operator input must fail loudly —
    /// silently falling back to a default mode would run a benchmark or CI
    /// job under the wrong runtime.
    InvalidMode {
        /// The rejected value, verbatim.
        value: String,
    },
}

impl fmt::Display for DistSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistSimError::UnknownNode(node) => write!(f, "no mailbox registered for {node}"),
            DistSimError::DuplicateNode(node) => {
                write!(f, "mailbox already registered for {node}")
            }
            DistSimError::Disconnected(node) => {
                write!(f, "mailbox for {node} disconnected")
            }
            DistSimError::InvalidMode { value } => {
                write!(
                    f,
                    "DIPM_MODE={value:?} is not a valid execution mode \
                     (expected sequential|seq|threaded|pool:N|async|async:N)"
                )
            }
        }
    }
}

impl Error for DistSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_node() {
        assert!(DistSimError::UnknownNode(NodeId(4))
            .to_string()
            .contains("N4"));
    }
}
