//! Simulated distributed environment for **DI-matching** (ICDCS 2012
//! reproduction).
//!
//! The paper evaluates on a single server running one thread per base
//! station (Section V-A). This crate reproduces that substrate and adds the
//! instrumentation the evaluation needs:
//!
//! * [`NodeId`] — the data center `N0` plus base stations `N1..Nl`.
//! * [`Network`] / [`Mailbox`] — in-memory message passing where every
//!   payload byte is metered per [`TrafficClass`] (Fig. 4c communication
//!   cost).
//! * [`CostMeter`] / [`CostReport`] — lock-free accounting of bytes moved,
//!   bytes stored and operations executed (Fig. 4b/4d machine-independent
//!   cost).
//! * [`run_stations`] / [`run_station_shards`] — sequential,
//!   thread-per-station, fixed-pool or async execution ([`ExecutionMode`]),
//!   with identical results in every mode; the shard entry point lets a
//!   sharded station parallelize internally while the pool stays far below
//!   one thread per station.
//! * [`block_on_all`] / [`VirtualClock`] — the vendored mini-executor
//!   behind [`ExecutionMode::Async`]: a deterministic single-worker task
//!   queue, a work-stealing pool, and a discrete-event clock that the
//!   [`LatencyModel`] stamps broadcast/report envelopes against, producing
//!   the [`CostReport::makespan_ticks`] latency meter.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use dipm_distsim::{
//!     run_stations, ExecutionMode, Network, NodeId, TrafficClass, DATA_CENTER,
//! };
//!
//! # fn main() -> Result<(), dipm_distsim::DistSimError> {
//! let network = Network::new();
//! let center = network.register(DATA_CENTER)?;
//! let stations: Vec<NodeId> = (0..4).map(NodeId::base_station).collect();
//! for s in &stations {
//!     network.register(*s)?;
//! }
//!
//! // Every station reports 8 bytes to the center, one thread per station.
//! run_stations(ExecutionMode::Threaded, &stations, |_, s| {
//!     network
//!         .send(*s, DATA_CENTER, TrafficClass::Report, Bytes::from_static(b"id+wght!"))
//!         .expect("center is registered");
//! });
//! assert_eq!(center.drain().len(), 4);
//! assert_eq!(network.meter().report().report_bytes, 32);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod clock;
mod error;
mod executor;
mod metrics;
mod network;
mod node;
mod runtime;

pub use clock::{yield_now, Sleep, VirtualClock, YieldNow};
pub use error::{DistSimError, Result};
pub use executor::{block_on_all, AsyncRunReport};
pub use metrics::{CostMeter, CostReport, LatencyReport, StationLatency, TrafficClass};
pub use network::{Envelope, LatencyModel, Mailbox, Network};
pub use node::{NodeId, DATA_CENTER};
pub use runtime::{run_station_shards, run_stations, ExecutionMode};
