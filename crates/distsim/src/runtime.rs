//! Station execution runtimes.
//!
//! The paper's experiment environment runs "one thread as a base station"
//! (Section V-A). [`ExecutionMode::Threaded`] reproduces that: one OS thread
//! per station via crossbeam's scoped threads. [`ExecutionMode::Sequential`]
//! runs the same closures in station order on the calling thread, which is
//! deterministic and convenient for tests. [`ExecutionMode::ThreadPool`]
//! multiplexes the work items over a fixed pool of workers so the simulated
//! city can grow past one OS thread per station. All modes must produce
//! identical results and byte-identical cost reports (property-tested at
//! pipeline level in the facade crate's `mode_agreement` suite as well as in
//! the protocol crate).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::thread;

use crate::clock::VirtualClock;
use crate::error::{DistSimError, Result};
use crate::executor::block_on_all;

/// How per-station (or per-shard) work is executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Run work items one after another on the calling thread.
    #[default]
    Sequential,
    /// Run one scoped OS thread per work item (the paper's setup, where the
    /// item is a whole station).
    Threaded,
    /// Run all work items over a fixed pool of `workers` scoped threads.
    ///
    /// The pool is capped at the number of work items (spawning idle workers
    /// is pointless), so a deployment can keep `workers` well below one
    /// thread per station and still scan every station — the intended
    /// configuration once stations are sharded and the work items are
    /// `(station, shard)` pairs.
    ThreadPool {
        /// Number of worker threads; clamped to `1..=items`.
        workers: usize,
    },
    /// Run work items as futures on the vendored mini-executor
    /// ([`block_on_all`]): `workers == 1` is the deterministic
    /// single-threaded task queue, more workers the work-stealing pool. In
    /// the matching pipeline this mode additionally models broadcast/report
    /// flight times on a [`VirtualClock`], producing the `makespan_ticks`
    /// latency meter; results and byte meters stay identical to every other
    /// mode.
    Async {
        /// Number of executor workers; clamped to `1..=items`.
        workers: usize,
    },
}

impl ExecutionMode {
    /// Reads the mode from the `DIPM_MODE` environment variable: `default`
    /// when unset or empty, an error when set to anything outside the
    /// grammar.
    ///
    /// Accepted forms: `sequential` (or `seq`), `threaded`, `pool:N`,
    /// `async`, `async:N` (`async` alone means one deterministic worker).
    /// The CI example jobs use this to re-run every example under
    /// [`ExecutionMode::Async`] without code changes — which is exactly why
    /// a typo must fail loudly instead of silently running the default
    /// runtime under the wrong label.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::InvalidMode`] when the variable is set to a
    /// value [`ExecutionMode::parse`] rejects.
    ///
    /// # Examples
    ///
    /// ```
    /// use dipm_distsim::ExecutionMode;
    ///
    /// // Unset (or empty) falls back to the given default.
    /// let mode = ExecutionMode::from_env(ExecutionMode::Threaded)?;
    /// assert!(matches!(
    ///     mode,
    ///     ExecutionMode::Threaded | ExecutionMode::Sequential
    ///         | ExecutionMode::ThreadPool { .. } | ExecutionMode::Async { .. }
    /// ));
    /// # Ok::<(), dipm_distsim::DistSimError>(())
    /// ```
    pub fn from_env(default: ExecutionMode) -> Result<ExecutionMode> {
        match std::env::var("DIPM_MODE") {
            Ok(value) => ExecutionMode::from_env_value(Some(&value), default),
            Err(std::env::VarError::NotPresent) => Ok(default),
            // Non-UTF-8 is set-but-garbage — the same loud-error class as
            // a value outside the grammar, never a silent fallback.
            Err(std::env::VarError::NotUnicode(raw)) => Err(DistSimError::InvalidMode {
                value: raw.to_string_lossy().into_owned(),
            }),
        }
    }

    /// The pure core of [`ExecutionMode::from_env`]: resolves an optional
    /// `DIPM_MODE` value against a default. Split out so the grammar's
    /// error path is unit-testable without touching process-global
    /// environment state.
    ///
    /// # Errors
    ///
    /// Returns [`DistSimError::InvalidMode`] on a non-empty value outside
    /// the grammar. An unset variable or an empty/whitespace value (e.g. a
    /// CI matrix arm passing `DIPM_MODE=""`) resolves to `default`.
    pub fn from_env_value(value: Option<&str>, default: ExecutionMode) -> Result<ExecutionMode> {
        match value {
            None => Ok(default),
            Some(value) if value.trim().is_empty() => Ok(default),
            Some(value) => ExecutionMode::parse(value).ok_or_else(|| DistSimError::InvalidMode {
                value: value.to_string(),
            }),
        }
    }

    /// Parses the `DIPM_MODE` grammar; `None` on unrecognized input.
    pub fn parse(value: &str) -> Option<ExecutionMode> {
        let value = value.trim().to_ascii_lowercase();
        match value.as_str() {
            "sequential" | "seq" => Some(ExecutionMode::Sequential),
            "threaded" => Some(ExecutionMode::Threaded),
            "async" => Some(ExecutionMode::Async { workers: 1 }),
            other => {
                let (kind, count) = other.split_once(':')?;
                let workers: usize = count.parse().ok()?;
                match kind {
                    "pool" => Some(ExecutionMode::ThreadPool { workers }),
                    "async" => Some(ExecutionMode::Async { workers }),
                    _ => None,
                }
            }
        }
    }
}

/// Shared executor behind [`run_stations`] and [`run_station_shards`]:
/// returns outputs in item order regardless of mode.
fn execute<S, T, F>(mode: ExecutionMode, items: &[S], work: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    match mode {
        ExecutionMode::Sequential => items.iter().enumerate().map(|(i, s)| work(i, s)).collect(),
        ExecutionMode::Threaded => thread::scope(|scope| {
            let handles: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    scope.spawn({
                        let work = &work;
                        move |_| work(i, s)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("station thread panicked"))
                .collect()
        })
        .expect("station scope panicked"),
        ExecutionMode::ThreadPool { workers } => {
            if items.is_empty() {
                return Vec::new();
            }
            let workers = workers.clamp(1, items.len());
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
            let done = thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn({
                            let work = &work;
                            let next = &next;
                            move |_| {
                                let mut out = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= items.len() {
                                        break;
                                    }
                                    out.push((i, work(i, &items[i])));
                                }
                                out
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("pool worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("pool scope panicked");
            for (i, value) in done {
                slots[i] = Some(value);
            }
            slots
                .into_iter()
                .map(|s| s.expect("every work item executed exactly once"))
                .collect()
        }
        ExecutionMode::Async { workers } => {
            // Plain closures become immediately-ready futures; the executor
            // still drives them (and a pipeline passing real futures gets
            // the full virtual-clock treatment through `block_on_all`
            // directly).
            let clock = Arc::new(VirtualClock::new());
            let futures: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let work = &work;
                    async move { work(i, s) }
                })
                .collect();
            let (outputs, _report) = block_on_all(workers, &clock, futures);
            outputs
        }
    }
}

/// Runs `work` once per station, returning outputs in station order
/// regardless of execution mode.
///
/// `work` receives the station's index and the station item itself.
///
/// # Panics
///
/// Propagates panics from `work` (in threaded/pool modes, after the scope's
/// threads have been joined).
///
/// # Examples
///
/// ```
/// use dipm_distsim::{run_stations, ExecutionMode};
///
/// let stations = vec![10u64, 20, 30];
/// let out = run_stations(ExecutionMode::Threaded, &stations, |i, s| s + i as u64);
/// assert_eq!(out, vec![10, 21, 32]);
/// ```
pub fn run_stations<S, T, F>(mode: ExecutionMode, stations: &[S], work: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    execute(mode, stations, work)
}

/// Runs `work` once per shard work item, returning outputs in item order
/// regardless of execution mode.
///
/// This is the scan entry point for hash-sharded stations: the caller
/// flattens every station's shards into one item grid (station-major order)
/// so a station parallelizes *internally* — under
/// [`ExecutionMode::ThreadPool`] shards from many stations multiplex onto a
/// worker pool much smaller than the station count, and under
/// [`ExecutionMode::Threaded`] each shard gets its own scoped thread. The
/// contract is identical to [`run_stations`]; only the unit of work differs.
///
/// # Panics
///
/// Propagates panics from `work` (in threaded/pool modes, after the scope's
/// threads have been joined).
///
/// # Examples
///
/// ```
/// use dipm_distsim::{run_station_shards, ExecutionMode};
///
/// // Two stations with two shards each, flattened station-major.
/// let grid = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
/// let out = run_station_shards(
///     ExecutionMode::ThreadPool { workers: 2 },
///     &grid,
///     |_, &(station, shard)| station * 10 + shard,
/// );
/// assert_eq!(out, vec![0, 1, 10, 11]);
/// ```
pub fn run_station_shards<S, T, F>(mode: ExecutionMode, shards: &[S], work: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    execute(mode, shards, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_preserves_order() {
        let stations = vec!["a", "b", "c"];
        let out = run_stations(ExecutionMode::Sequential, &stations, |i, s| {
            format!("{i}{s}")
        });
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let stations: Vec<u64> = (0..32).collect();
        let seq = run_stations(ExecutionMode::Sequential, &stations, |i, s| {
            s * 3 + i as u64
        });
        let thr = run_stations(ExecutionMode::Threaded, &stations, |i, s| s * 3 + i as u64);
        assert_eq!(seq, thr);
    }

    #[test]
    fn pool_matches_sequential_in_item_order() {
        let items: Vec<u64> = (0..57).collect();
        let seq = run_stations(ExecutionMode::Sequential, &items, |i, s| s * 7 + i as u64);
        for workers in [1, 2, 3, 8, 200] {
            let pooled = run_stations(ExecutionMode::ThreadPool { workers }, &items, |i, s| {
                s * 7 + i as u64
            });
            assert_eq!(seq, pooled, "workers = {workers}");
        }
    }

    #[test]
    fn pool_clamps_zero_workers() {
        let items = vec![1u32, 2, 3];
        let out = run_stations(ExecutionMode::ThreadPool { workers: 0 }, &items, |_, s| {
            s * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let counter = AtomicU64::new(0);
        let items = vec![(); 64];
        run_stations(ExecutionMode::ThreadPool { workers: 4 }, &items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn threaded_actually_runs_every_station() {
        let counter = AtomicU64::new(0);
        let stations = vec![(); 16];
        run_stations(ExecutionMode::Threaded, &stations, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn empty_station_list() {
        for mode in [
            ExecutionMode::Sequential,
            ExecutionMode::Threaded,
            ExecutionMode::ThreadPool { workers: 4 },
            ExecutionMode::Async { workers: 4 },
        ] {
            let out: Vec<u32> = run_stations(mode, &[] as &[u32], |_, s| *s);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn async_matches_sequential_in_item_order() {
        let items: Vec<u64> = (0..41).collect();
        let seq = run_stations(ExecutionMode::Sequential, &items, |i, s| s * 5 + i as u64);
        for workers in [1, 2, 7] {
            let run = run_stations(ExecutionMode::Async { workers }, &items, |i, s| {
                s * 5 + i as u64
            });
            assert_eq!(seq, run, "workers = {workers}");
        }
    }

    #[test]
    fn mode_env_grammar() {
        assert_eq!(
            ExecutionMode::parse("sequential"),
            Some(ExecutionMode::Sequential)
        );
        assert_eq!(ExecutionMode::parse("SEQ"), Some(ExecutionMode::Sequential));
        assert_eq!(
            ExecutionMode::parse("threaded"),
            Some(ExecutionMode::Threaded)
        );
        assert_eq!(
            ExecutionMode::parse("pool:6"),
            Some(ExecutionMode::ThreadPool { workers: 6 })
        );
        assert_eq!(
            ExecutionMode::parse("async"),
            Some(ExecutionMode::Async { workers: 1 })
        );
        assert_eq!(
            ExecutionMode::parse(" async:3 "),
            Some(ExecutionMode::Async { workers: 3 })
        );
        assert_eq!(ExecutionMode::parse("fibers:2"), None);
        assert_eq!(ExecutionMode::parse("pool"), None);
        // `from_env` treats empty as unset (no warning); `parse` rejects it.
        assert_eq!(ExecutionMode::parse(""), None);
    }

    #[test]
    fn from_env_value_resolves_the_full_grammar() {
        let default = ExecutionMode::Threaded;
        // Unset and empty/whitespace values mean "use the default".
        assert_eq!(
            ExecutionMode::from_env_value(None, default),
            Ok(ExecutionMode::Threaded)
        );
        assert_eq!(
            ExecutionMode::from_env_value(Some(""), default),
            Ok(ExecutionMode::Threaded)
        );
        assert_eq!(
            ExecutionMode::from_env_value(Some("  "), default),
            Ok(ExecutionMode::Threaded)
        );
        // Every documented form resolves.
        for (value, expect) in [
            ("sequential", ExecutionMode::Sequential),
            ("SEQ", ExecutionMode::Sequential),
            ("threaded", ExecutionMode::Threaded),
            ("pool:6", ExecutionMode::ThreadPool { workers: 6 }),
            ("async", ExecutionMode::Async { workers: 1 }),
            (" async:3 ", ExecutionMode::Async { workers: 3 }),
        ] {
            assert_eq!(
                ExecutionMode::from_env_value(Some(value), default),
                Ok(expect)
            );
        }
    }

    #[test]
    fn from_env_value_rejects_malformed_values_loudly() {
        let default = ExecutionMode::Sequential;
        for bad in [
            "fibers:2",
            "pool",
            "pool:",
            "pool:x",
            "pool:-1",
            "async:",
            "async:two",
            "Async 3",
            "seq,threaded",
        ] {
            let err = ExecutionMode::from_env_value(Some(bad), default).unwrap_err();
            assert_eq!(
                err,
                DistSimError::InvalidMode {
                    value: bad.to_string()
                },
                "{bad:?} must error, not silently fall back"
            );
            assert!(err.to_string().contains("DIPM_MODE"));
        }
    }

    #[test]
    fn shard_grid_entry_point_matches_station_entry_point() {
        let grid: Vec<(usize, usize)> = (0..6).flat_map(|s| (0..3).map(move |h| (s, h))).collect();
        let a = run_stations(ExecutionMode::Sequential, &grid, |_, &(s, h)| s * 100 + h);
        let b = run_station_shards(
            ExecutionMode::ThreadPool { workers: 3 },
            &grid,
            |_, &(s, h)| s * 100 + h,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "station thread panicked")]
    fn threaded_propagates_panics() {
        run_stations(ExecutionMode::Threaded, &[1u32], |_, _| -> u32 {
            panic!("boom");
        });
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn pool_propagates_panics() {
        run_station_shards(
            ExecutionMode::ThreadPool { workers: 2 },
            &[1u32, 2],
            |_, _| -> u32 {
                panic!("boom");
            },
        );
    }
}
