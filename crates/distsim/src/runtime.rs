//! Station execution runtimes.
//!
//! The paper's experiment environment runs "one thread as a base station"
//! (Section V-A). [`ExecutionMode::Threaded`] reproduces that: one OS thread
//! per station via crossbeam's scoped threads. [`ExecutionMode::Sequential`]
//! runs the same closures in station order on the calling thread, which is
//! deterministic and convenient for tests; both modes must produce identical
//! results (property-tested in the protocol crate).

use crossbeam::thread;

/// How per-station work is executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Run stations one after another on the calling thread.
    #[default]
    Sequential,
    /// Run one scoped OS thread per station (the paper's setup).
    Threaded,
}

/// Runs `work` once per station, returning outputs in station order
/// regardless of execution mode.
///
/// `work` receives the station's index and the station item itself.
///
/// # Panics
///
/// Propagates panics from `work` (in threaded mode, after all threads have
/// been joined).
///
/// # Examples
///
/// ```
/// use dipm_distsim::{run_stations, ExecutionMode};
///
/// let stations = vec![10u64, 20, 30];
/// let out = run_stations(ExecutionMode::Threaded, &stations, |i, s| s + i as u64);
/// assert_eq!(out, vec![10, 21, 32]);
/// ```
pub fn run_stations<S, T, F>(mode: ExecutionMode, stations: &[S], work: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    match mode {
        ExecutionMode::Sequential => stations
            .iter()
            .enumerate()
            .map(|(i, s)| work(i, s))
            .collect(),
        ExecutionMode::Threaded => thread::scope(|scope| {
            let handles: Vec<_> = stations
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    scope.spawn({
                        let work = &work;
                        move |_| work(i, s)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("station thread panicked"))
                .collect()
        })
        .expect("station scope panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_preserves_order() {
        let stations = vec!["a", "b", "c"];
        let out = run_stations(ExecutionMode::Sequential, &stations, |i, s| {
            format!("{i}{s}")
        });
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let stations: Vec<u64> = (0..32).collect();
        let seq = run_stations(ExecutionMode::Sequential, &stations, |i, s| {
            s * 3 + i as u64
        });
        let thr = run_stations(ExecutionMode::Threaded, &stations, |i, s| s * 3 + i as u64);
        assert_eq!(seq, thr);
    }

    #[test]
    fn threaded_actually_runs_every_station() {
        let counter = AtomicU64::new(0);
        let stations = vec![(); 16];
        run_stations(ExecutionMode::Threaded, &stations, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn empty_station_list() {
        let out: Vec<u32> = run_stations(ExecutionMode::Threaded, &[] as &[u32], |_, s| *s);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "station thread panicked")]
    fn threaded_propagates_panics() {
        run_stations(ExecutionMode::Threaded, &[1u32], |_, _| -> u32 {
            panic!("boom");
        });
    }
}
