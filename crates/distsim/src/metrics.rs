//! Cost accounting: the quantities behind the paper's Figure 4.
//!
//! The evaluation compares methods on four axes — precision, time,
//! communication and storage. [`CostMeter`] collects the machine-independent
//! ones (bytes moved per traffic class, bytes stored, operation counts) with
//! lock-free atomics so the thread-per-station runtime can record
//! concurrently; wall time is measured by the harness around the run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Traffic classes, so communication cost can be broken down by purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Query dissemination: the data center broadcasting a filter.
    Query,
    /// Station→center candidate reports (IDs and weights).
    Report,
    /// Bulk raw-data shipping (the naive method).
    Data,
    /// Protocol control traffic.
    Control,
}

impl TrafficClass {
    /// All classes, in a stable order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Query,
        TrafficClass::Report,
        TrafficClass::Data,
        TrafficClass::Control,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Query => 0,
            TrafficClass::Report => 1,
            TrafficClass::Data => 2,
            TrafficClass::Control => 3,
        }
    }
}

/// Thread-safe accumulator for communication, storage and computation costs.
#[derive(Debug, Default)]
pub struct CostMeter {
    messages: AtomicU64,
    bytes: [AtomicU64; 4],
    storage_bytes: AtomicU64,
    hash_ops: AtomicU64,
    comparisons: AtomicU64,
    scan_passes: AtomicU64,
    rows_pruned: AtomicU64,
    blocks_skipped: AtomicU64,
    stations_pruned: AtomicU64,
    routing_bytes: AtomicU64,
    deferred_epochs: AtomicU64,
    makespan_ticks: AtomicU64,
}

impl CostMeter {
    /// Creates a zeroed meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Records one message of `bytes` payload bytes in `class`.
    pub fn record_message(&self, class: TrafficClass, bytes: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes[class.index()].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` of data held at some node.
    pub fn record_storage(&self, bytes: u64) {
        self.storage_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `count` hash evaluations.
    pub fn record_hash_ops(&self, count: u64) {
        self.hash_ops.fetch_add(count, Ordering::Relaxed);
    }

    /// Records `count` pattern/value comparisons.
    pub fn record_comparisons(&self, count: u64) {
        self.comparisons.fetch_add(count, Ordering::Relaxed);
    }

    /// Records one full pass over a station's local store.
    ///
    /// A batch-aware pipeline scans each station once per *batch*, however
    /// many queries the batch carries — this counter is how that claim is
    /// asserted (a batch of Q queries over N stations must record exactly N
    /// passes, not Q × N).
    pub fn record_scan_pass(&self) {
        self.scan_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `count` candidate `(row × section)` evaluations skipped by a
    /// dynamic-pruning scan's score bound before any hashing or weight fold.
    ///
    /// Pruning decisions are pure functions of the row, the section and the
    /// scan algorithm, so within one algorithm this counter is as
    /// mode-invariant as `hash_ops`; it stays zero under exhaustive scans.
    pub fn record_rows_pruned(&self, count: u64) {
        self.rows_pruned.fetch_add(count, Ordering::Relaxed);
    }

    /// Records `count` whole row blocks skipped by block-max metadata.
    ///
    /// Only `ScanAlgorithm::BlockMaxWand` produces these. The block
    /// partition follows the shard layout, so the count is comparable across
    /// execution modes but not across different shard counts.
    pub fn record_blocks_skipped(&self, count: u64) {
        self.blocks_skipped.fetch_add(count, Ordering::Relaxed);
    }

    /// Records `count` stations a routing tree excluded from a query
    /// broadcast — stations whose summary filter proved the query cannot
    /// match anything they hold, so they neither receive, scan nor report.
    ///
    /// Routing decisions are made center-side before any station work is
    /// scheduled, so the count is mode-invariant; it stays zero under
    /// `RoutingPolicy::BroadcastAll`.
    pub fn record_stations_pruned(&self, count: u64) {
        self.stations_pruned.fetch_add(count, Ordering::Relaxed);
    }

    /// Records `bytes` of routing-maintenance traffic: station summary
    /// uploads and routed-probe plan frames. Kept out of the per-class
    /// message meters so query/report traffic stays directly comparable
    /// between routed and broadcast runs; it still counts toward
    /// [`CostReport::total_bytes`].
    pub fn record_routing_bytes(&self, bytes: u64) {
        self.routing_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one epoch an admission policy deferred: the tenant's update
    /// was held back to the next epoch instead of broadcast (never dropped —
    /// the pending churn stays queued at the center).
    ///
    /// Admission decisions are made center-side from planned frame sizes
    /// before any station work is scheduled, so the count is mode-invariant;
    /// it stays zero for a session running outside a service or under a
    /// service with no delta budget.
    pub fn record_deferred_epoch(&self) {
        self.deferred_epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished run's [`CostReport`] into this meter: every additive
    /// counter is added, and the makespan joins via maximum like
    /// [`CostMeter::record_makespan`]. This is how a service accumulates one
    /// lifetime cost ledger per tenant out of its per-epoch reports.
    pub fn absorb(&self, report: &CostReport) {
        self.messages.fetch_add(report.messages, Ordering::Relaxed);
        self.bytes[0].fetch_add(report.query_bytes, Ordering::Relaxed);
        self.bytes[1].fetch_add(report.report_bytes, Ordering::Relaxed);
        self.bytes[2].fetch_add(report.data_bytes, Ordering::Relaxed);
        self.bytes[3].fetch_add(report.control_bytes, Ordering::Relaxed);
        self.storage_bytes
            .fetch_add(report.storage_bytes, Ordering::Relaxed);
        self.hash_ops.fetch_add(report.hash_ops, Ordering::Relaxed);
        self.comparisons
            .fetch_add(report.comparisons, Ordering::Relaxed);
        self.scan_passes
            .fetch_add(report.scan_passes, Ordering::Relaxed);
        self.rows_pruned
            .fetch_add(report.rows_pruned, Ordering::Relaxed);
        self.blocks_skipped
            .fetch_add(report.blocks_skipped, Ordering::Relaxed);
        self.stations_pruned
            .fetch_add(report.stations_pruned, Ordering::Relaxed);
        self.routing_bytes
            .fetch_add(report.routing_bytes, Ordering::Relaxed);
        self.deferred_epochs
            .fetch_add(report.deferred_epochs, Ordering::Relaxed);
        self.makespan_ticks
            .fetch_max(report.makespan_ticks, Ordering::Relaxed);
    }

    /// Records a completion time on the virtual clock; the report keeps the
    /// maximum seen (the run's makespan).
    ///
    /// Only the async runtime models time, so this stays zero in every
    /// synchronous mode — it is the one [`CostReport`] dimension excluded
    /// from [`CostReport::mode_invariant`].
    pub fn record_makespan(&self, ticks: u64) {
        self.makespan_ticks.fetch_max(ticks, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting (individual counters
    /// are exact; cross-counter skew is possible while threads still run).
    pub fn report(&self) -> CostReport {
        CostReport {
            messages: self.messages.load(Ordering::Relaxed),
            query_bytes: self.bytes[0].load(Ordering::Relaxed),
            report_bytes: self.bytes[1].load(Ordering::Relaxed),
            data_bytes: self.bytes[2].load(Ordering::Relaxed),
            control_bytes: self.bytes[3].load(Ordering::Relaxed),
            storage_bytes: self.storage_bytes.load(Ordering::Relaxed),
            hash_ops: self.hash_ops.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            scan_passes: self.scan_passes.load(Ordering::Relaxed),
            rows_pruned: self.rows_pruned.load(Ordering::Relaxed),
            blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
            stations_pruned: self.stations_pruned.load(Ordering::Relaxed),
            routing_bytes: self.routing_bytes.load(Ordering::Relaxed),
            deferred_epochs: self.deferred_epochs.load(Ordering::Relaxed),
            makespan_ticks: self.makespan_ticks.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        for b in &self.bytes {
            b.store(0, Ordering::Relaxed);
        }
        self.storage_bytes.store(0, Ordering::Relaxed);
        self.hash_ops.store(0, Ordering::Relaxed);
        self.comparisons.store(0, Ordering::Relaxed);
        self.scan_passes.store(0, Ordering::Relaxed);
        self.rows_pruned.store(0, Ordering::Relaxed);
        self.blocks_skipped.store(0, Ordering::Relaxed);
        self.stations_pruned.store(0, Ordering::Relaxed);
        self.routing_bytes.store(0, Ordering::Relaxed);
        self.deferred_epochs.store(0, Ordering::Relaxed);
        self.makespan_ticks.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of a [`CostMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total messages sent.
    pub messages: u64,
    /// Bytes of query (filter broadcast) traffic.
    pub query_bytes: u64,
    /// Bytes of station→center report traffic.
    pub report_bytes: u64,
    /// Bytes of bulk raw-data traffic.
    pub data_bytes: u64,
    /// Bytes of control traffic.
    pub control_bytes: u64,
    /// Bytes stored across nodes.
    pub storage_bytes: u64,
    /// Hash function evaluations.
    pub hash_ops: u64,
    /// Pattern/value comparisons.
    pub comparisons: u64,
    /// Full passes over a station's local store (one per station per batch
    /// in the batch-aware pipeline).
    pub scan_passes: u64,
    /// Candidate `(row × section)` evaluations a dynamic-pruning scan
    /// skipped via score bounds (zero under `ScanAlgorithm::Exhaustive`).
    pub rows_pruned: u64,
    /// Whole row blocks skipped via block-max metadata (nonzero only under
    /// `ScanAlgorithm::BlockMaxWand`).
    pub blocks_skipped: u64,
    /// Stations a routing tree excluded from a query broadcast (zero under
    /// `RoutingPolicy::BroadcastAll`). Decided center-side before any
    /// station work is scheduled, hence mode-invariant.
    pub stations_pruned: u64,
    /// Bytes of routing-maintenance traffic (station summary uploads and
    /// routed-probe plan frames), metered separately from the per-class
    /// message meters so routed and broadcast query traffic stay directly
    /// comparable.
    pub routing_bytes: u64,
    /// Epochs an admission policy deferred this tenant's update to the next
    /// epoch (zero outside a service, or under a service with no delta
    /// budget). Decided center-side from planned frame sizes, hence
    /// mode-invariant.
    pub deferred_epochs: u64,
    /// Virtual-clock makespan of the run: the latest modeled report
    /// delivery tick. Zero outside `ExecutionMode::Async` (wall time is not
    /// modeled there); deterministic under a fixed latency model and seed.
    pub makespan_ticks: u64,
}

impl CostReport {
    /// Total communication bytes across all classes, routing maintenance
    /// included.
    pub fn total_bytes(&self) -> u64 {
        self.query_bytes
            + self.report_bytes
            + self.data_bytes
            + self.control_bytes
            + self.routing_bytes
    }

    /// The mode-invariant projection: every byte, storage and operation
    /// meter, with the latency dimension (`makespan_ticks`) zeroed.
    ///
    /// The protocol promises these meters are **byte-identical across all
    /// execution modes** (the Fig. 4 comparisons depend on it); makespan is
    /// the one dimension only the async runtime produces, so agreement
    /// suites compare this projection and pin makespan determinism
    /// separately.
    pub fn mode_invariant(&self) -> CostReport {
        CostReport {
            makespan_ticks: 0,
            ..*self
        }
    }
}

/// The latency dimension of one async pipeline run, in virtual ticks.
///
/// Produced only under `ExecutionMode::Async`, where broadcast and report
/// frames carry modeled delivery times. `stations` is in **modeled delivery
/// order** — the order the center hears from stations on the virtual clock
/// (fast stations first), not station order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyReport {
    /// The latest modeled report delivery tick — when the data center has
    /// heard from every station and can aggregate.
    pub makespan_ticks: u64,
    /// Per-station critical paths, in report-arrival (completion) order.
    pub stations: Vec<StationLatency>,
}

impl LatencyReport {
    /// The slowest station's critical path (equals the makespan when every
    /// station reported).
    pub fn critical_path_ticks(&self) -> u64 {
        self.stations
            .iter()
            .map(|s| s.report_delivered)
            .max()
            .unwrap_or(0)
    }
}

/// One station's critical path through an async run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StationLatency {
    /// Station index (the wire-frame station id).
    pub station: u32,
    /// Tick at which the station finished scanning and sent its report
    /// (includes broadcast flight and modeled scan time).
    pub report_sent: u64,
    /// Tick at which the report reached the data center.
    pub report_delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_by_class() {
        let meter = CostMeter::new();
        meter.record_message(TrafficClass::Query, 100);
        meter.record_message(TrafficClass::Query, 50);
        meter.record_message(TrafficClass::Report, 8);
        let report = meter.report();
        assert_eq!(report.messages, 3);
        assert_eq!(report.query_bytes, 150);
        assert_eq!(report.report_bytes, 8);
        assert_eq!(report.total_bytes(), 158);
    }

    #[test]
    fn storage_and_ops() {
        let meter = CostMeter::new();
        meter.record_storage(4096);
        meter.record_hash_ops(12);
        meter.record_comparisons(3);
        meter.record_scan_pass();
        meter.record_scan_pass();
        let report = meter.report();
        assert_eq!(report.storage_bytes, 4096);
        assert_eq!(report.hash_ops, 12);
        assert_eq!(report.comparisons, 3);
        assert_eq!(report.scan_passes, 2);
    }

    #[test]
    fn pruning_counters_accumulate_and_reset() {
        let meter = CostMeter::new();
        meter.record_rows_pruned(64);
        meter.record_rows_pruned(3);
        meter.record_blocks_skipped(2);
        let report = meter.report();
        assert_eq!(report.rows_pruned, 67);
        assert_eq!(report.blocks_skipped, 2);
        assert_eq!(report.mode_invariant().rows_pruned, 67);
        meter.reset();
        assert_eq!(meter.report(), CostReport::default());
    }

    #[test]
    fn routing_counters_accumulate_and_join_totals() {
        let meter = CostMeter::new();
        meter.record_stations_pruned(5);
        meter.record_stations_pruned(2);
        meter.record_routing_bytes(300);
        meter.record_message(TrafficClass::Query, 100);
        let report = meter.report();
        assert_eq!(report.stations_pruned, 7);
        assert_eq!(report.routing_bytes, 300);
        // Routing bytes count toward the grand total but not query traffic.
        assert_eq!(report.query_bytes, 100);
        assert_eq!(report.total_bytes(), 400);
        // Both are mode-invariant dimensions.
        assert_eq!(report.mode_invariant().stations_pruned, 7);
        assert_eq!(report.mode_invariant().routing_bytes, 300);
        meter.reset();
        assert_eq!(meter.report(), CostReport::default());
    }

    #[test]
    fn reset_zeroes_everything() {
        let meter = CostMeter::new();
        meter.record_message(TrafficClass::Data, 1);
        meter.record_storage(1);
        meter.reset();
        assert_eq!(meter.report(), CostReport::default());
    }

    #[test]
    fn makespan_keeps_the_maximum() {
        let meter = CostMeter::new();
        meter.record_makespan(40);
        meter.record_makespan(12);
        meter.record_makespan(55);
        assert_eq!(meter.report().makespan_ticks, 55);
        meter.reset();
        assert_eq!(meter.report().makespan_ticks, 0);
    }

    #[test]
    fn mode_invariant_drops_only_the_latency_dimension() {
        let meter = CostMeter::new();
        meter.record_message(TrafficClass::Query, 7);
        meter.record_scan_pass();
        meter.record_makespan(1234);
        let report = meter.report();
        let invariant = report.mode_invariant();
        assert_eq!(invariant.makespan_ticks, 0);
        assert_eq!(invariant.query_bytes, 7);
        assert_eq!(invariant.scan_passes, 1);
        assert_ne!(report, invariant);
        assert_eq!(report.mode_invariant(), invariant.mode_invariant());
    }

    #[test]
    fn deferred_epochs_accumulate_and_stay_mode_invariant() {
        let meter = CostMeter::new();
        meter.record_deferred_epoch();
        meter.record_deferred_epoch();
        let report = meter.report();
        assert_eq!(report.deferred_epochs, 2);
        assert_eq!(report.mode_invariant().deferred_epochs, 2);
        meter.reset();
        assert_eq!(meter.report(), CostReport::default());
    }

    #[test]
    fn absorb_adds_counters_and_joins_makespan() {
        let meter = CostMeter::new();
        meter.record_message(TrafficClass::Query, 10);
        meter.record_makespan(100);
        let epoch = CostReport {
            messages: 3,
            query_bytes: 7,
            report_bytes: 5,
            storage_bytes: 11,
            deferred_epochs: 1,
            makespan_ticks: 60,
            ..CostReport::default()
        };
        meter.absorb(&epoch);
        let ledger = meter.report();
        assert_eq!(ledger.messages, 4);
        assert_eq!(ledger.query_bytes, 17);
        assert_eq!(ledger.report_bytes, 5);
        assert_eq!(ledger.storage_bytes, 11);
        assert_eq!(ledger.deferred_epochs, 1);
        // Makespan joins by maximum: the ledger keeps the latest tick
        // reached, not a sum of per-epoch makespans.
        assert_eq!(ledger.makespan_ticks, 100);
        meter.absorb(&CostReport {
            makespan_ticks: 250,
            ..CostReport::default()
        });
        assert_eq!(meter.report().makespan_ticks, 250);
    }

    #[test]
    fn latency_report_critical_path() {
        let report = LatencyReport {
            makespan_ticks: 30,
            stations: vec![
                StationLatency {
                    station: 1,
                    report_sent: 12,
                    report_delivered: 30,
                },
                StationLatency {
                    station: 0,
                    report_sent: 10,
                    report_delivered: 25,
                },
            ],
        };
        assert_eq!(report.critical_path_ticks(), 30);
        assert_eq!(LatencyReport::default().critical_path_ticks(), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let meter = CostMeter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        meter.record_message(TrafficClass::Report, 2);
                    }
                });
            }
        });
        let report = meter.report();
        assert_eq!(report.messages, 8000);
        assert_eq!(report.report_bytes, 16_000);
    }
}
