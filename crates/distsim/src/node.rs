//! Node identities in the simulated deployment.

use std::fmt;

/// A node in the distributed deployment: the data center or a base station.
///
/// By the paper's convention (Section III-B) node 0 is the data center `N0`
/// and nodes `1..=l` are the base stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The data center node `N0`.
pub const DATA_CENTER: NodeId = NodeId(0);

impl NodeId {
    /// Whether this node is the data center.
    pub fn is_data_center(self) -> bool {
        self == DATA_CENTER
    }

    /// The node id for the `i`-th base station (zero-based).
    pub fn base_station(index: u32) -> NodeId {
        NodeId(index + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_data_center() {
            write!(f, "N0(center)")
        } else {
            write!(f, "N{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_center_is_node_zero() {
        assert!(DATA_CENTER.is_data_center());
        assert!(!NodeId(1).is_data_center());
    }

    #[test]
    fn base_station_indexing_skips_center() {
        assert_eq!(NodeId::base_station(0), NodeId(1));
        assert_eq!(NodeId::base_station(9), NodeId(10));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DATA_CENTER.to_string(), "N0(center)");
        assert_eq!(NodeId(3).to_string(), "N3");
    }
}
