//! Executor determinism properties.
//!
//! The deterministic single-worker executor promises that the same task set
//! produces the same schedule on every run: identical completion order,
//! identical per-task wake counts, identical poll count and identical
//! virtual-clock readings. The work-stealing pool may schedule differently,
//! but anything computed from *virtual time* — task outputs and the final
//! tick — must still agree with the single-worker run, because sleep
//! deadlines stack on each task's own chain, never on worker interleaving.

use std::sync::Arc;

use dipm_distsim::{block_on_all, yield_now, AsyncRunReport, VirtualClock};
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a task's script: sleep some virtual ticks (0 ⇒ ready
/// immediately) or yield to the executor.
#[derive(Debug, Clone, Copy)]
enum Op {
    Sleep(u64),
    Yield,
}

fn op() -> impl Strategy<Value = Op> {
    (0u64..40, 0u8..2).prop_map(|(ticks, kind)| {
        if kind == 0 {
            Op::Sleep(ticks)
        } else {
            Op::Yield
        }
    })
}

/// Runs a scripted task set and returns each task's finish tick plus the
/// scheduler's report.
///
/// Deadlines derive from each task's own timeline (the `local` counter),
/// the pattern the matching pipeline uses too: global `clock.now()` reads
/// mid-task are interleaving-dependent under the pool, deadlines are not.
fn run_scripts(workers: usize, scripts: &[Vec<Op>]) -> (Vec<u64>, AsyncRunReport) {
    let clock = Arc::new(VirtualClock::new());
    let futures: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|ops| {
            let clock = Arc::clone(&clock);
            async move {
                let mut local = 0u64;
                for op in ops {
                    match op {
                        Op::Sleep(ticks) => {
                            local += ticks;
                            clock.sleep_until(local).await;
                        }
                        Op::Yield => yield_now().await,
                    }
                }
                local
            }
        })
        .collect();
    block_on_all(workers, &clock, futures)
}

#[test]
fn pool_survives_compute_heavy_tasks_under_contention() {
    // Regression test for a false-positive deadlock verdict: with long
    // compute inside polls, a momentary last-idler could fire the final
    // timer, hand the woken task to a peer, and leave a *stale* last-idler
    // staring at empty queues and an empty heap while the task ran — the
    // detector must consult task states, not just queues and timers.
    for round in 0..400u64 {
        let clock = Arc::new(VirtualClock::new());
        let tasks = 2 + (round % 9) as usize;
        let workers = 2 + (round % 4) as usize;
        let futures: Vec<_> = (0..tasks)
            .map(|i| {
                let clock = Arc::clone(&clock);
                async move {
                    let mut local = 0u64;
                    let mut acc = 0u64;
                    for step in 0..4u64 {
                        local += (i as u64 * 7 + step * 3 + round) % 40;
                        clock.sleep_until(local).await;
                        // Long compute inside the poll, like a shard scan.
                        for k in 0..10_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        yield_now().await;
                    }
                    local | (acc & 1)
                }
            })
            .collect();
        let (out, report) = block_on_all(workers, &clock, futures);
        assert_eq!(out.len(), tasks, "round {round}");
        let mut order = report.completion_order;
        order.sort_unstable();
        assert_eq!(order, (0..tasks).collect::<Vec<_>>(), "round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_worker_schedule_is_identical_across_runs(
        scripts in vec(vec(op(), 0..8), 1..10),
    ) {
        let (outputs, report) = run_scripts(1, &scripts);
        for _ in 0..2 {
            let (again_outputs, again_report) = run_scripts(1, &scripts);
            prop_assert_eq!(&again_outputs, &outputs, "finish ticks drifted");
            prop_assert_eq!(
                &again_report.completion_order,
                &report.completion_order,
                "completion order drifted"
            );
            prop_assert_eq!(
                &again_report.wake_counts,
                &report.wake_counts,
                "wake counts drifted"
            );
            prop_assert_eq!(again_report.polls, report.polls, "poll count drifted");
            prop_assert_eq!(
                again_report.final_tick,
                report.final_tick,
                "final clock reading drifted"
            );
        }
        // Every task completed exactly once.
        let mut order = report.completion_order.clone();
        order.sort_unstable();
        prop_assert_eq!(order, (0..scripts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn pool_agrees_with_single_worker_on_virtual_time(
        scripts in vec(vec(op(), 0..8), 1..10),
        workers in 2usize..5,
    ) {
        let (reference, single) = run_scripts(1, &scripts);
        let (outputs, report) = run_scripts(workers, &scripts);
        // Each task's finish tick is its own sleep chain — worker count and
        // steal order cannot move it.
        prop_assert_eq!(&outputs, &reference, "virtual finish ticks drifted");
        prop_assert_eq!(report.final_tick, single.final_tick);
        let mut order = report.completion_order.clone();
        order.sort_unstable();
        prop_assert_eq!(order, (0..scripts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn final_tick_is_the_longest_sleep_chain(
        scripts in vec(vec(op(), 0..8), 1..10),
    ) {
        let (outputs, report) = run_scripts(1, &scripts);
        let expected: Vec<u64> = scripts
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match op {
                        Op::Sleep(t) => *t,
                        Op::Yield => 0,
                    })
                    .sum()
            })
            .collect();
        prop_assert_eq!(&outputs, &expected, "a task finishes at its summed sleeps");
        prop_assert_eq!(
            report.final_tick,
            expected.iter().copied().max().unwrap_or(0)
        );
    }
}
