//! Plain-text experiment reports.
//!
//! Every experiment produces a [`Report`]: the paper's claim, a table of
//! measured rows, and free-form notes. The `repro` binary prints them; the
//! same structures back `EXPERIMENTS.md`.
//!
//! Rows come in two flavours. [`Report::row`] records display strings only
//! (the original API, still used by the paper-figure tables). Sweeps whose
//! numbers feed later machinery — JSON emission, regression gates, unit
//! tests — use [`Report::row_cells`] with typed [`Cell`]s instead, so the
//! measured values survive alongside their rendering and never need to be
//! re-parsed out of a formatted string.

use std::fmt;

/// One table cell: the display string plus the typed value it was rendered
/// from (`None` for purely textual cells such as mode labels).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// What the table prints.
    pub text: String,
    /// The number the text was formatted from, if the cell is numeric.
    pub value: Option<f64>,
}

impl Cell {
    /// A purely textual cell (no typed value).
    pub fn text(text: impl Into<String>) -> Cell {
        Cell {
            text: text.into(),
            value: None,
        }
    }

    /// An integer-valued cell, displayed in plain decimal.
    pub fn int(value: u64) -> Cell {
        Cell {
            text: value.to_string(),
            value: Some(value as f64),
        }
    }

    /// A float-valued cell displayed with `precision` decimal places.
    pub fn float(value: f64, precision: usize) -> Cell {
        Cell {
            text: format!("{value:.precision$}"),
            value: Some(value),
        }
    }

    /// A float-valued cell with a custom rendering.
    pub fn rendered(value: f64, text: impl Into<String>) -> Cell {
        Cell {
            text: text.into(),
            value: Some(value),
        }
    }
}

/// One regenerated table or figure.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier, e.g. `Figure 4(a)`.
    pub id: String,
    /// Short title.
    pub title: String,
    /// What the paper claims the result shows.
    pub claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows (display strings).
    pub rows: Vec<Vec<String>>,
    /// Typed mirror of [`Report::rows`]: one value per cell, `None` where
    /// the cell is textual or the row was recorded display-only.
    pub values: Vec<Vec<Option<f64>>>,
    /// Additional observations.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts a report with identifier, title and paper claim.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
    ) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            ..Report::default()
        }
    }

    /// Sets the column headers.
    pub fn columns<I, S>(&mut self, columns: I) -> &mut Report
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one display-only row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Report
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        self.values.push(vec![None; row.len()]);
        self.rows.push(row);
        self
    }

    /// Appends one typed row: the display strings and the measured values
    /// travel together.
    pub fn row_cells<I>(&mut self, row: I) -> &mut Report
    where
        I: IntoIterator<Item = Cell>,
    {
        let (texts, values): (Vec<String>, Vec<Option<f64>>) =
            row.into_iter().map(|c| (c.text, c.value)).unzip();
        self.rows.push(texts);
        self.values.push(values);
        self
    }

    /// The typed value of cell `(row, col)`, if that cell carries one.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        self.values.get(row)?.get(col).copied().flatten()
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Report {
        self.notes.push(note.into());
        self
    }

    /// Serializes the report as a JSON object: metadata plus one object per
    /// row keyed by column header, numeric where the row was recorded with
    /// typed cells. This is the payload of the checked-in `BENCH_*.json`
    /// perf-trajectory files.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str(&format!("  \"claim\": {},\n", json_string(&self.claim)));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\n  \"rows\": [\n");
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (c, text) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                let key = self
                    .columns
                    .get(c)
                    .cloned()
                    .unwrap_or_else(|| format!("col{c}"));
                out.push_str(&json_string(&key));
                out.push_str(": ");
                match self.value(r, c) {
                    Some(v) => out.push_str(&json_number(v)),
                    None => out.push_str(&json_string(text)),
                }
            }
            out.push('}');
            if r + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(n));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite f64 as a JSON number (integers without a fraction).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "paper: {}", self.claim)?;
        // Column widths over header + rows.
        let cols = self
            .columns
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, c) in self.columns.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        if !self.columns.is_empty() {
            let header: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", header.join("  "))?;
        }
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("Fig. X", "demo", "something holds");
        r.columns(["a", "bbbb"])
            .row(["1", "2"])
            .row(["333", "4"])
            .note("done");
        let text = r.to_string();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("something holds"));
        assert!(text.contains("333"));
        assert!(text.contains("note: done"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new("id", "t", "c");
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn typed_rows_carry_values_alongside_display() {
        let mut r = Report::new("id", "t", "c");
        r.columns(["n", "rate", "mode"]).row_cells([
            Cell::int(42),
            Cell::float(0.125, 2),
            Cell::text("seq"),
        ]);
        assert_eq!(r.rows[0], vec!["42", "0.12", "seq"]);
        assert_eq!(r.value(0, 0), Some(42.0));
        assert_eq!(r.value(0, 1), Some(0.125), "value survives rounding");
        assert_eq!(r.value(0, 2), None, "textual cells have no value");
    }

    #[test]
    fn display_only_rows_have_no_values() {
        let mut r = Report::new("id", "t", "c");
        r.row(["1", "2"]);
        assert_eq!(r.value(0, 0), None);
        assert_eq!(r.value(0, 1), None);
    }

    #[test]
    fn json_roundtrips_numbers_and_escapes_strings() {
        let mut r = Report::new("Scan", "hot \"scan\"", "fast");
        r.columns(["rows", "mode"])
            .row_cells([Cell::int(1000), Cell::text("seq\n")])
            .note("line");
        let json = r.to_json();
        assert!(json.contains("\"rows\": 1000"), "{json}");
        assert!(json.contains("\\\"scan\\\""), "{json}");
        assert!(json.contains("seq\\n"), "{json}");
        assert!(json.contains("\"notes\": [\"line\"]"), "{json}");
    }

    #[test]
    fn json_number_rendering() {
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1e18), "1000000000000000000");
    }

    #[test]
    fn rendered_cell_keeps_custom_text() {
        let c = Cell::rendered(1536.0, "1.5k");
        assert_eq!(c.text, "1.5k");
        assert_eq!(c.value, Some(1536.0));
    }
}
