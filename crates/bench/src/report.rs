//! Plain-text experiment reports.
//!
//! Every experiment produces a [`Report`]: the paper's claim, a table of
//! measured rows, and free-form notes. The `repro` binary prints them; the
//! same structures back `EXPERIMENTS.md`.

use std::fmt;

/// One regenerated table or figure.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier, e.g. `Figure 4(a)`.
    pub id: String,
    /// Short title.
    pub title: String,
    /// What the paper claims the result shows.
    pub claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Additional observations.
    pub notes: Vec<String>,
}

impl Report {
    /// Starts a report with identifier, title and paper claim.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        claim: impl Into<String>,
    ) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            ..Report::default()
        }
    }

    /// Sets the column headers.
    pub fn columns<I, S>(&mut self, columns: I) -> &mut Report
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Report
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Report {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "paper: {}", self.claim)?;
        // Column widths over header + rows.
        let cols = self
            .columns
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, c) in self.columns.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        if !self.columns.is_empty() {
            let header: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", header.join("  "))?;
        }
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("Fig. X", "demo", "something holds");
        r.columns(["a", "bbbb"])
            .row(["1", "2"])
            .row(["333", "4"])
            .note("done");
        let text = r.to_string();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("something holds"));
        assert!(text.contains("333"));
        assert!(text.contains("note: done"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new("id", "t", "c");
        assert!(!r.to_string().is_empty());
    }
}
