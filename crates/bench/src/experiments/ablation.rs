//! Ablations over the design choices DESIGN.md calls out.
//!
//! * Hash scheme: value-only (paper) vs position-tagged keys.
//! * Tolerance mode: exact accumulated bands vs constant bands.
//! * Similarity tolerance ε.
//!
//! Each variant runs the full pipeline on the same dataset and reports
//! R-precision, recall, filter size and communication.

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::{ground_truth, Dataset};
use dipm_protocol::{evaluate, run_wbf, DiMatchingConfig, HashScheme, MethodDetails, PatternQuery};
use dipm_timeseries::ToleranceMode;

use crate::report::Report;
use crate::scale::Scale;

fn run_variant(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
) -> (f64, f64, usize, u64) {
    let mut relevant = std::collections::BTreeSet::new();
    for q in queries {
        relevant.extend(ground_truth::eps_similar_users(
            dataset,
            q.global(),
            config.eps,
        ));
    }
    let outcome = run_wbf(
        dataset,
        queries,
        config,
        ExecutionMode::Threaded,
        Some(relevant.len()),
    )
    .expect("pipeline runs");
    let score = evaluate(outcome.retrieved(), &relevant);
    let bits = match &outcome.details {
        MethodDetails::Wbf { build, .. } => build.bits,
        _ => 0,
    };
    (
        score.precision,
        score.recall,
        bits,
        outcome.cost.total_bytes(),
    )
}

/// Runs the ablation grid.
pub fn ablation(scale: &Scale) -> Report {
    let mut report = Report::new(
        "Ablation",
        "design-choice ablations on one dataset",
        "(extension beyond the paper) quantifies each design decision",
    );
    report.columns([
        "variant",
        "precision",
        "recall",
        "filter bits",
        "comm bytes",
    ]);

    let dataset = Dataset::city_slice(scale.users.min(1_000), scale.stations, scale.seed)
        .expect("valid preset");
    let queries: Vec<PatternQuery> = (0..10)
        .map(|i| {
            let user = dataset.users()[i * 13 % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid query")
        })
        .collect();

    let mut variants: Vec<(String, DiMatchingConfig)> = Vec::new();

    let base = DiMatchingConfig::default();
    variants.push(("value-only (paper)".into(), base.clone()));

    let mut tagged = base.clone();
    tagged.hash_scheme = HashScheme::PositionTagged;
    variants.push(("position-tagged".into(), tagged));

    let mut uniform = base.clone();
    uniform.tolerance = ToleranceMode::Uniform;
    variants.push(("uniform bands".into(), uniform));

    for eps in [0u64, 1, 4] {
        let mut v = base.clone();
        v.eps = eps;
        variants.push((format!("eps = {eps}"), v));
    }

    for (name, config) in variants {
        let (precision, recall, bits, comm) = run_variant(&dataset, &queries, &config);
        report.row([
            name,
            format!("{precision:.3}"),
            format!("{recall:.3}"),
            format!("{bits}"),
            format!("{comm}"),
        ]);
    }
    report.note("uniform bands shrink the filter but can miss ε-similar users (false negatives)");
    report.note("position tagging can only remove cross-position stitches; the paper's accumulation already removes most");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_grid_runs_and_orders_sanely() {
        let report = ablation(&Scale::quick());
        assert_eq!(report.rows.len(), 6);
        let find = |name: &str| -> Vec<String> {
            report
                .rows
                .iter()
                .find(|r| r[0].starts_with(name))
                .unwrap()
                .clone()
        };
        let base_recall: f64 = find("value-only")[2].parse().unwrap();
        assert!(
            base_recall > 0.9,
            "paper configuration recall {base_recall}"
        );
        // Uniform bands produce a smaller filter.
        let base_bits: usize = find("value-only")[3].parse().unwrap();
        let uniform_bits: usize = find("uniform")[3].parse().unwrap();
        assert!(uniform_bits <= base_bits);
    }
}
