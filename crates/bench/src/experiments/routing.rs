//! Query-routing economics — the Bloofi-style summary tree against
//! broadcast-to-all.
//!
//! Sweeps deployment size × tree fanout for a *selective* query set (high
//! volume always-on profiles under the position-tagged hash scheme — the
//! regime where station summaries can actually discriminate; see the
//! routing module docs in `dipm-protocol`) and reports what the tree
//! pruned, the standing summary-upload cost, and the per-batch query
//! broadcast bytes against broadcast-to-all, plus the modeled makespan of
//! both runs. Every routed point's rankings are asserted equal to the
//! broadcast reference before it is recorded — the sweep measures *traffic
//! avoided*, never answers changed.
//!
//! `repro routing` emits the table and the `BENCH_routing.json` trajectory
//! file; `repro routing --quick --check BENCH_routing_quick.json` is the CI
//! perf-smoke gate (the byte meters are mode-invariant and deterministic,
//! so the gate is exact, not statistical).

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::Dataset;
use dipm_protocol::{
    run_pipeline, DiMatchingConfig, HashScheme, PatternQuery, PipelineOptions, RoutingPolicy, Wbf,
};

use crate::report::{Cell, Report};
use crate::scale::Scale;

/// Always-on per-interval rates of the selective query set. No generated
/// phone sustains these volumes, so their tolerance bands miss most station
/// populations and the tree has something to prune.
const WHALE_RATES: [u64; 2] = [300, 450];

/// Candidates kept per query ranking.
const TOP_K: usize = 10;

/// One `(stations, fanout)` sweep point.
#[derive(Debug, Clone)]
pub struct RoutingPoint {
    /// Base stations in the deployment.
    pub stations: u32,
    /// Routing-tree fanout.
    pub fanout: usize,
    /// Stations the tree excluded from the query broadcast.
    pub pruned: u64,
    /// Standing routing traffic: summary uploads plus routed-probe frames.
    pub routing_bytes: u64,
    /// Query broadcast bytes under the tree.
    pub query_bytes: u64,
    /// Query broadcast bytes under `RoutingPolicy::BroadcastAll`.
    pub broadcast_bytes: u64,
    /// `broadcast_bytes − query_bytes`: what routing saved this batch.
    pub saved_bytes: u64,
    /// Modeled makespan of the routed run (virtual ticks).
    pub makespan: u64,
    /// Modeled makespan of the broadcast reference.
    pub broadcast_makespan: u64,
}

/// The sweep grid for one scale: station counts × fanouts.
fn grid(scale: &Scale) -> (Vec<u32>, Vec<usize>) {
    if scale.users <= Scale::quick().users {
        (vec![8, 16], vec![2, 4])
    } else {
        (vec![16, 64, 128], vec![2, 4, 8])
    }
}

/// The sweep's selective query set: constant always-on profiles at each
/// whale rate (two locals per query, full and half rate). Routing is
/// batch-level — the tree probes the union of the batch's keys — so the
/// whole set must be selective for subtrees to fall away; a single wide
/// query (say a resident phone's own fragments) would pin every station.
fn query_set(dataset: &Dataset) -> Vec<PatternQuery> {
    let intervals = dataset.intervals();
    WHALE_RATES
        .iter()
        .map(|&rate| {
            PatternQuery::from_locals(vec![
                (0..intervals).map(|_| rate).collect(),
                (0..intervals).map(|_| rate / 2).collect(),
            ])
            .expect("constant profiles form a valid query")
        })
        .collect()
}

/// Runs the stations × fanout sweep, asserting routed answers equal
/// broadcast's at every point.
pub fn routing_sweep(scale: &Scale) -> Vec<RoutingPoint> {
    let (stations_axis, fanouts) = grid(scale);
    let base = DiMatchingConfig {
        hash_scheme: HashScheme::PositionTagged,
        seed: scale.seed,
        ..DiMatchingConfig::default()
    };
    let options = PipelineOptions {
        mode: ExecutionMode::Async { workers: 4 },
        top_k: Some(TOP_K),
        ..PipelineOptions::default()
    };
    let mut points = Vec::new();
    for &stations in &stations_axis {
        let dataset =
            Dataset::city_slice(scale.users, stations, scale.seed).expect("city generates");
        let queries = query_set(&dataset);
        let reference =
            run_pipeline::<Wbf>(&dataset, &queries, &base, &options).expect("broadcast runs");
        for &fanout in &fanouts {
            let config = DiMatchingConfig {
                routing: RoutingPolicy::Tree { fanout },
                ..base.clone()
            };
            let routed =
                run_pipeline::<Wbf>(&dataset, &queries, &config, &options).expect("routed runs");
            for (i, (a, b)) in reference.queries.iter().zip(&routed.queries).enumerate() {
                assert_eq!(
                    a.ranked, b.ranked,
                    "stations {stations} fanout {fanout}: query {i} diverged under routing"
                );
            }
            points.push(RoutingPoint {
                stations,
                fanout,
                pruned: routed.cost.stations_pruned,
                routing_bytes: routed.cost.routing_bytes,
                query_bytes: routed.cost.query_bytes,
                broadcast_bytes: reference.cost.query_bytes,
                saved_bytes: reference
                    .cost
                    .query_bytes
                    .saturating_sub(routed.cost.query_bytes),
                makespan: routed.cost.makespan_ticks,
                broadcast_makespan: reference.cost.makespan_ticks,
            });
        }
    }
    points
}

/// Routing-tree economics across deployment size × fanout.
pub fn routing(scale: &Scale) -> Report {
    let points = routing_sweep(scale);
    let mut report = Report::new(
        "Query routing",
        "Bloofi-style summary tree vs broadcast-to-all across stations × fanout",
        "for selective query sets the tree must cut query broadcast bytes strictly below \
         broadcast-to-all without changing a single ranking",
    );
    report.columns([
        "stations",
        "fanout",
        "pruned",
        "routing_bytes",
        "query_bytes",
        "broadcast_bytes",
        "saved_bytes",
        "makespan",
        "broadcast_makespan",
    ]);
    for p in &points {
        report.row_cells([
            Cell::int(u64::from(p.stations)),
            Cell::int(p.fanout as u64),
            Cell::int(p.pruned),
            Cell::int(p.routing_bytes),
            Cell::int(p.query_bytes),
            Cell::int(p.broadcast_bytes),
            Cell::int(p.saved_bytes),
            Cell::int(p.makespan),
            Cell::int(p.broadcast_makespan),
        ]);
    }
    report.note(format!(
        "selective query set: always-on profiles at {WHALE_RATES:?} units/interval, \
         position-tagged keys, seed {}; routing is batch-level (union of the batch's probe \
         keys), so one wide query in the set would pin every station; every point's rankings \
         equal broadcast-to-all",
        scale.seed
    ));
    report.note(
        "routing_bytes is the standing summary-upload + probe-frame cost, metered apart from \
         query_bytes so routed and broadcast query traffic stay directly comparable"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_the_grid() {
        let report = routing(&Scale::quick());
        // 2 station counts × 2 fanouts.
        assert_eq!(report.rows.len(), 4);
    }

    #[test]
    fn selective_queries_beat_broadcast_at_every_point() {
        let points = routing_sweep(&Scale::quick());
        for p in &points {
            assert!(
                p.pruned > 0,
                "stations {} fanout {}: the tree pruned nothing",
                p.stations,
                p.fanout
            );
            assert!(
                p.query_bytes < p.broadcast_bytes,
                "stations {} fanout {}: routed query traffic not strictly below broadcast",
                p.stations,
                p.fanout
            );
            assert_eq!(p.saved_bytes, p.broadcast_bytes - p.query_bytes);
            assert!(p.routing_bytes > 0, "summary uploads must be metered");
        }
    }

    #[test]
    fn pruning_is_fanout_invariant() {
        // What gets pruned is a property of the summaries and the probe
        // set, not of the tree's shape.
        let points = routing_sweep(&Scale::quick());
        for pair in points.chunks(2) {
            assert_eq!(pair[0].pruned, pair[1].pruned);
            assert_eq!(pair[0].query_bytes, pair[1].query_bytes);
        }
    }
}
