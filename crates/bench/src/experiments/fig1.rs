//! Figure 1 — realistic pattern features of the (synthetic) corpus.
//!
//! (a) Normalized category patterns over two days at 6-hour resolution are
//! daily-periodic and divisible. (b) Among pairs of users with ε-similar
//! *global* patterns, more than 90 % share at least one ε-similar *local*
//! pattern (Observation 2) — the property DI-matching's combination
//! enumeration relies on.

use dipm_mobilenet::{ground_truth, Category, Dataset};
use dipm_timeseries::stats::{normalize_to_mean, periodicity_score, Cdf};

use crate::report::Report;
use crate::scale::Scale;

/// Regenerates Figure 1(a): six normalized category curves plus their
/// daily-periodicity scores.
pub fn fig1a() -> Report {
    let mut report = Report::new(
        "Figure 1(a)",
        "category patterns: periodicity and divisibility",
        "normalized category curves repeat daily and separate from each other",
    );
    let intervals_per_day = 4; // the paper plots 6-hour units
    let days = 2;
    let mut columns = vec!["category".to_string(), "periodicity".to_string()];
    columns.extend((0..days * intervals_per_day).map(|i| format!("t{i}")));
    report.columns(columns);

    for category in Category::ALL {
        let pattern = category.profile().expected_pattern(days, intervals_per_day);
        let normalized = normalize_to_mean(&pattern);
        let score = periodicity_score(&normalized, intervals_per_day).unwrap_or(f64::NAN);
        let mut row = vec![category.to_string(), format!("{score:.3}")];
        row.extend(normalized.iter().map(|v| format!("{v:.2}")));
        report.row(row);
    }
    report.note(
        "periodicity = mean Pearson correlation between consecutive days (1.0 = exact repeat)",
    );
    report
}

/// Regenerates Figure 1(b): the CDF of the number of ε-similar local
/// patterns among ε-similar-global user pairs.
pub fn fig1b(scale: &Scale) -> Report {
    let mut report = Report::new(
        "Figure 1(b)",
        "local-pattern similarity among similar-global pairs (CDF)",
        "P(at least one similar local pattern) > 90%",
    );
    let dataset = Dataset::city_slice(scale.users.min(800), scale.stations, scale.seed)
        .expect("valid preset");
    let eps = 4;

    // Sample similar-global pairs and count their similar locals.
    let users = dataset.users();
    let mut observations = Vec::new();
    'outer: for (i, a) in users.iter().enumerate() {
        for b in users.iter().skip(i + 1) {
            let ga = dataset.global(a.id).expect("known user");
            let gb = dataset.global(b.id).expect("known user");
            if dipm_timeseries::eps_match(ga, gb, eps) {
                let count = ground_truth::similar_local_count(&dataset, a.id, b.id, eps);
                observations.push(count as u64);
                if observations.len() >= 20_000 {
                    break 'outer;
                }
            }
        }
    }
    let pairs = observations.len();
    let cdf = Cdf::from_observations(observations);
    report.columns(["similar locals ≤ x", "CDF"]);
    for x in 0..=4u64 {
        report.row([format!("{x}"), format!("{:.3}", cdf.at(x))]);
    }
    report.row(["pairs sampled".to_string(), format!("{pairs}")]);
    report.note(format!(
        "P(≥1 similar local) = {:.1}% (paper: >90%)",
        100.0 * cdf.at_least(1)
    ));
    report
}

/// Regenerates Figure 3: accumulated category curves over one week are
/// monotone and mutually divisible.
pub fn fig3() -> Report {
    let mut report = Report::new(
        "Figure 3",
        "pattern representation: accumulated weekly curves",
        "accumulated category curves are monotone and divisible over the week",
    );
    let intervals_per_day = 4;
    let days = 7;
    let mut columns = vec!["category".to_string()];
    columns.extend((0..days).map(|d| format!("day{}", d + 1)));
    columns.push("total".to_string());
    report.columns(columns);

    let mut totals = Vec::new();
    for category in Category::ALL {
        let pattern = category.profile().expected_pattern(days, intervals_per_day);
        let acc = dipm_timeseries::AccumulatedPattern::from_pattern(&pattern)
            .expect("no overflow at this scale");
        // Sample the accumulated value at each day boundary.
        let mut row = vec![category.to_string()];
        for d in 1..=days {
            let idx = d * intervals_per_day - 1;
            row.push(format!("{}", acc.get(idx).expect("within range")));
        }
        let total = acc.max_value().expect("non-empty");
        totals.push(total);
        row.push(format!("{total}"));
        report.row(row);
    }
    let mut sorted = totals.clone();
    sorted.sort_unstable();
    let min_gap = sorted.windows(2).map(|w| w[1] - w[0]).min().unwrap_or(0);
    report.note(format!(
        "minimum pairwise weekly-total separation: {min_gap} (divisibility margin)"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_shows_high_periodicity_for_all_categories() {
        let report = fig1a();
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            let score: f64 = row[1].parse().unwrap();
            assert!(score > 0.99, "{}: periodicity {score}", row[0]);
        }
    }

    #[test]
    fn fig1b_confirms_observation_2() {
        let report = fig1b(&Scale::quick());
        let note = &report.notes[0];
        let pct: f64 = note
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(pct > 90.0, "observation 2 fraction {pct}");
    }

    #[test]
    fn fig3_totals_are_separated() {
        let report = fig3();
        assert_eq!(report.rows.len(), 6);
        let min_gap: u64 = report.notes[0]
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(min_gap > 50, "weekly totals too close: {min_gap}");
    }
}
