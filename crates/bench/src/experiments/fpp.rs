//! Section V upper-bound tightness — empirical false-positive rates against
//! the theoretical bound, and the weight layer's reduction.
//!
//! The paper claims the classic bound `q = (1 − e^{−kn/m})^k` is tight in
//! practice and that WBF's weight consistency "significantly reduces" the
//! false-positive probability. We measure both: random-key membership FPs
//! against theory, and stitched-sequence FPs with and without the weight
//! check.

use dipm_core::{BloomFilter, FilterParams, Weight, WeightedBloomFilter};

use crate::report::Report;

/// Regenerates the false-positive-bound study.
pub fn fpp(seed: u64) -> Report {
    let mut report = Report::new(
        "Section V (bound)",
        "false-positive probability: theory vs observed vs weighted",
        "observed membership fpp tracks the theoretical bound; the weight check cuts sequence fpp well below it",
    );
    report.columns([
        "load n/capacity",
        "theory",
        "bloom observed",
        "wbf stitched",
    ]);

    let capacity = 20_000usize;
    let params = FilterParams::optimal(capacity, 0.01).expect("valid params");
    for load_pct in [25usize, 50, 100, 150] {
        let n = capacity * load_pct / 100;
        let mut bloom = BloomFilter::new(params, seed);
        let mut wbf = WeightedBloomFilter::new(params, seed);
        // Insert n keys as sequences of 8, each sequence under its own weight.
        let seq_len = 8usize;
        let sequences = n / seq_len;
        for s in 0..sequences as u64 {
            let weight = Weight::new(s + 1, sequences as u64 + 1).expect("non-zero");
            for j in 0..seq_len as u64 {
                let key = s * 1_000_003 + j * 97;
                bloom.insert(key);
                wbf.insert(key, weight);
            }
        }

        // Membership fpp: random keys never inserted.
        let probes = 50_000u64;
        let mut bloom_hits = 0u64;
        for i in 0..probes {
            let key = 0xdead_beef_0000_0000 + i * 7919;
            if bloom.contains(key) {
                bloom_hits += 1;
            }
        }

        // Sequence fpp with weight check: stitch halves of two sequences —
        // every key is genuinely present, so membership alone always accepts.
        let mut stitched_accepted = 0u64;
        let trials = (sequences.saturating_sub(1)) as u64;
        for s in 0..trials {
            let keys = (0..seq_len as u64).map(|j| {
                if j < (seq_len / 2) as u64 {
                    s * 1_000_003 + j * 97
                } else {
                    (s + 1) * 1_000_003 + j * 97
                }
            });
            match wbf.query_sequence(keys) {
                Some(set) if !set.is_empty() => stitched_accepted += 1,
                _ => {}
            }
        }

        report.row([
            format!("{load_pct}%"),
            format!("{:.4}", params.false_positive_rate(n)),
            format!("{:.4}", bloom_hits as f64 / probes as f64),
            format!(
                "{:.4}",
                if trials == 0 {
                    0.0
                } else {
                    stitched_accepted as f64 / trials as f64
                }
            ),
        ]);
    }
    report.note("stitched probes mix two inserted sequences: membership accepts 100% of them, the weight check almost none");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_tracks_theory_and_weights_reduce() {
        let report = fpp(42);
        for row in &report.rows {
            let theory: f64 = row[1].parse().unwrap();
            let observed: f64 = row[2].parse().unwrap();
            let stitched: f64 = row[3].parse().unwrap();
            // Observed within 2x of theory plus small-sample slack.
            assert!(
                observed <= theory * 2.0 + 0.002,
                "observed {observed} vs theory {theory}"
            );
            // The weight check keeps stitched acceptance tiny even though
            // membership alone would accept every stitched probe.
            assert!(stitched < 0.05, "stitched fpp {stitched}");
        }
    }
}
