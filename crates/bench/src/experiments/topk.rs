//! Top-k scan microbench — the dynamic-pruning ladder against exhaustion.
//!
//! Drives [`scan_shard_wbf_topk`] directly (no network, no pipeline) across
//! rows × k × [`ScanAlgorithm`], reporting rows/sec per point plus what the
//! pruning rungs actually skipped (`rows_pruned`, `blocks_skipped`). Every
//! point's reports are asserted equal to the `Exhaustive` rung before it is
//! timed — the sweep measures *work avoided*, never answers changed.
//!
//! The workload reuses the scan microbench's miss-dominated synthetic shard:
//! one row in [`HIT_STRIDE`] replays the query's own global pattern
//! (weight 1), so a small-k heap fills with weight-1 entries after
//! `k × HIT_STRIDE` rows and the threshold θ = 1 turns every later row
//! prunable. That is exactly the pattern-popularity skew dynamic pruning
//! exploits; large k (`k` beyond the hit population) shows where it stops
//! paying.
//!
//! `repro topk` emits the table and the `BENCH_topk.json` trajectory file;
//! `repro topk --quick --check BENCH_topk_quick.json` is the CI perf-smoke
//! gate for this kernel.

use std::time::Instant;

use dipm_distsim::CostMeter;
use dipm_mobilenet::UserId;
use dipm_protocol::{
    build_wbf, scan_shard_wbf_topk, DiMatchingConfig, ScanAlgorithm, WbfScanSection,
};
use dipm_timeseries::Pattern;

use super::scan::{synthetic_query, synthetic_shard, HIT_STRIDE, PATTERN_LEN};
use crate::report::{Cell, Report};
use crate::scale::Scale;

/// One timed sweep point.
#[derive(Debug, Clone)]
pub struct TopkPoint {
    /// Stored rows in the scanned shard.
    pub rows: usize,
    /// Heap size: reports kept per section.
    pub k: usize,
    /// The scan algorithm measured.
    pub algorithm: ScanAlgorithm,
    /// Scanned rows per second.
    pub rows_per_sec: f64,
    /// Throughput relative to `Exhaustive` at the same `(rows, k)`.
    pub speedup: f64,
    /// Reports one pass produces (identical across algorithms).
    pub reports: usize,
    /// `(row × section)` evaluations skipped per pass.
    pub rows_pruned: u64,
    /// Whole blocks skipped per pass.
    pub blocks_skipped: u64,
}

/// A short stable label per algorithm for report rows.
fn algorithm_label(algorithm: ScanAlgorithm) -> &'static str {
    match algorithm {
        ScanAlgorithm::Exhaustive => "exhaustive",
        ScanAlgorithm::MaxScore => "maxscore",
        ScanAlgorithm::Wand => "wand",
        ScanAlgorithm::BlockMaxWand => "blockmaxwand",
    }
}

/// Times one `(rows, k, algorithm)` point against a prebuilt section and
/// shard; `speedup` is filled in by the caller once the `Exhaustive`
/// reference of the same `(rows, k)` is known.
fn measure(
    sections: &[WbfScanSection<'_>],
    shard: &[(UserId, &Pattern)],
    base: &DiMatchingConfig,
    k: usize,
    algorithm: ScanAlgorithm,
    min_seconds: f64,
) -> TopkPoint {
    let config = DiMatchingConfig {
        scan_algorithm: algorithm,
        ..base.clone()
    };
    // One metered pass: the report census and the per-pass pruning counters
    // (pure per-row/per-block decisions, so every pass records the same).
    let meter = CostMeter::new();
    let reports =
        scan_shard_wbf_topk(sections, shard, &config, k, Some(&meter)).expect("topk scan runs");
    let counters = meter.report();

    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        let out = scan_shard_wbf_topk(sections, shard, &config, k, None).expect("topk scan runs");
        assert_eq!(out.len(), reports.len(), "scan must be deterministic");
        passes += 1;
        if start.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    TopkPoint {
        rows: shard.len(),
        k,
        algorithm,
        rows_per_sec: shard.len() as f64 * passes as f64 / elapsed,
        speedup: 1.0,
        reports: reports.len(),
        rows_pruned: counters.rows_pruned,
        blocks_skipped: counters.blocks_skipped,
    }
}

/// The sweep grid for one scale: `(rows, k, min_seconds)`.
fn grid(scale: &Scale) -> (Vec<usize>, Vec<usize>, f64) {
    if scale.users <= Scale::quick().users {
        (vec![1_000, 4_000], vec![1, 10], 0.05)
    } else {
        (vec![4_000, 16_000, 64_000], vec![1, 10, 100], 0.15)
    }
}

/// Runs the rows × k × algorithm sweep and returns the raw points, each
/// `(rows, k)` group led by its `Exhaustive` reference.
pub fn topk_sweep(scale: &Scale) -> Vec<TopkPoint> {
    let (rows_axis, k_axis, min_seconds) = grid(scale);
    let base = DiMatchingConfig::default();
    let query = synthetic_query(scale.seed, 0);
    let built = build_wbf(std::slice::from_ref(&query), &base).expect("synthetic query builds");
    let sections: Vec<WbfScanSection<'_>> = vec![(0, &built.filter, built.query_totals.as_slice())];
    let mut points = Vec::new();
    for &rows in &rows_axis {
        let owned = synthetic_shard(scale.seed, rows, std::slice::from_ref(&query));
        let shard: Vec<(UserId, &Pattern)> = owned.iter().map(|&(u, ref p)| (u, p)).collect();
        for &k in &k_axis {
            // Conformance before timing: every rung must byte-match the
            // exhaustive reference on this exact workload.
            let reference = scan_shard_wbf_topk(&sections, &shard, &base, k, None)
                .expect("exhaustive reference runs");
            for algorithm in ScanAlgorithm::ALL {
                let config = DiMatchingConfig {
                    scan_algorithm: algorithm,
                    ..base.clone()
                };
                let out = scan_shard_wbf_topk(&sections, &shard, &config, k, None)
                    .expect("pruned scan runs");
                assert_eq!(
                    out, reference,
                    "{algorithm:?} diverged at rows={rows} k={k}"
                );
            }
            let exhaustive = measure(
                &sections,
                &shard,
                &base,
                k,
                ScanAlgorithm::Exhaustive,
                min_seconds,
            );
            let reference_rate = exhaustive.rows_per_sec;
            points.push(exhaustive);
            for algorithm in [
                ScanAlgorithm::MaxScore,
                ScanAlgorithm::Wand,
                ScanAlgorithm::BlockMaxWand,
            ] {
                let mut point = measure(&sections, &shard, &base, k, algorithm, min_seconds);
                point.speedup = point.rows_per_sec / reference_rate;
                points.push(point);
            }
        }
    }
    points
}

/// Top-k kernel throughput across rows × k × scan algorithm.
pub fn topk(scale: &Scale) -> Report {
    let points = topk_sweep(scale);
    let mut report = Report::new(
        "Top-k scan microbench",
        "scan_shard_wbf_topk throughput across rows × k × scan algorithm",
        "dynamic pruning must buy real throughput once the k-th score saturates, without \
         changing a single report",
    );
    report.columns([
        "rows",
        "k",
        "algorithm",
        "rows_per_sec",
        "speedup",
        "reports",
        "rows_pruned",
        "blocks_skipped",
    ]);
    for p in &points {
        report.row_cells([
            Cell::int(p.rows as u64),
            Cell::int(p.k as u64),
            Cell::text(algorithm_label(p.algorithm)),
            Cell::rendered(p.rows_per_sec, format!("{:.0}", p.rows_per_sec)),
            Cell::rendered(p.speedup, format!("{:.2}x", p.speedup)),
            Cell::int(p.reports as u64),
            Cell::int(p.rows_pruned),
            Cell::int(p.blocks_skipped),
        ]);
    }
    report.note(format!(
        "miss-dominated synthetic shard ({PATTERN_LEN}-interval rows, 1 weight-1 hit per \
         {HIT_STRIDE} rows), seed {}; every point's reports byte-match exhaustive before timing",
        scale.seed
    ));
    report.note(
        "speedup is rows/sec relative to exhaustive at the same (rows, k); blocks_skipped and \
         rows_pruned are per scan pass"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_the_ladder_and_stays_exact() {
        let report = topk(&Scale::quick());
        // 2 row counts × 2 k values × 4 algorithms.
        assert_eq!(report.rows.len(), 16);
        for group in report.rows.chunks(4) {
            // Reports identical across the group's four algorithms.
            let reference = &group[0];
            for row in group {
                assert_eq!(row[5], reference[5], "report counts must agree");
            }
        }
    }

    #[test]
    fn exhaustive_points_never_prune() {
        let points = topk_sweep(&Scale::quick());
        for p in &points {
            if p.algorithm == ScanAlgorithm::Exhaustive {
                assert_eq!(p.rows_pruned, 0);
                assert_eq!(p.blocks_skipped, 0);
                assert_eq!(p.speedup, 1.0);
            } else {
                assert!(p.speedup > 0.0);
            }
        }
    }

    #[test]
    fn small_k_saturates_the_threshold_and_prunes() {
        // rows = 4000, k = 1: the heap holds a weight-1 entry after the
        // first hit row, so the pruning rungs must skip almost everything.
        let points = topk_sweep(&Scale::quick());
        let bmw = points
            .iter()
            .find(|p| p.rows == 4_000 && p.k == 1 && p.algorithm == ScanAlgorithm::BlockMaxWand)
            .expect("grid point exists");
        assert!(
            bmw.blocks_skipped > 0,
            "block-max wand must skip whole blocks at k = 1"
        );
        let wand = points
            .iter()
            .find(|p| p.rows == 4_000 && p.k == 1 && p.algorithm == ScanAlgorithm::Wand)
            .expect("grid point exists");
        assert!(wand.rows_pruned > 0, "wand must prune rows at k = 1");
    }
}
