//! Section V-B — convergence of the sample count `b`.
//!
//! The paper studies matching accuracy as the number of sampled points grows
//! over four groups of data, observing convergence at `b = 5` and stability
//! at `b = 12` (the default used everywhere else).

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::{ground_truth, Dataset, TraceConfig};
use dipm_protocol::{evaluate, run_wbf, DiMatchingConfig, PatternQuery};

use crate::report::Report;
use crate::scale::Scale;

/// Mean R-precision of WBF retrieval over several probe queries at sample
/// count `b`.
fn accuracy_at(dataset: &Dataset, b: usize, probes: usize) -> f64 {
    let config = DiMatchingConfig {
        samples: b,
        ..Default::default()
    };
    let step = (dataset.users().len() / probes).max(1);
    let mut total = 0.0;
    let mut count = 0usize;
    for i in (0..dataset.users().len()).step_by(step).take(probes) {
        let user = dataset.users()[i];
        let query =
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("user has traffic"))
                .expect("valid query");
        let relevant = ground_truth::eps_similar_users(dataset, query.global(), config.eps);
        let outcome = run_wbf(
            dataset,
            &[query],
            &config,
            ExecutionMode::Sequential,
            Some(relevant.len()),
        )
        .expect("pipeline runs");
        total += evaluate(outcome.retrieved(), &relevant).precision;
        count += 1;
    }
    total / count as f64
}

/// Regenerates the Section V-B convergence study: accuracy vs `b` over four
/// data groups.
pub fn convergence(scale: &Scale) -> Report {
    let mut report = Report::new(
        "Section V-B",
        "sample-count convergence study",
        "accuracy converges by b = 5 and is stable by b = 12",
    );
    let groups = 4;
    let sample_counts = [1usize, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16];
    let mut columns = vec!["b".to_string()];
    columns.extend((1..=groups).map(|g| format!("group{g}")));
    columns.push("mean".to_string());
    report.columns(columns);

    let datasets: Vec<Dataset> = (0..groups)
        .map(|g| {
            TraceConfig::new(scale.users.min(500), scale.stations)
                .days(2)
                .intervals_per_day(8)
                .seed(scale.seed + g as u64)
                .generate()
                .expect("valid config")
        })
        .collect();

    for &b in &sample_counts {
        let mut row = vec![format!("{b}")];
        let mut sum = 0.0;
        for dataset in &datasets {
            let acc = accuracy_at(dataset, b, 4);
            sum += acc;
            row.push(format!("{acc:.3}"));
        }
        row.push(format!("{:.3}", sum / groups as f64));
        report.row(row);
    }
    report
        .note("accuracy = mean R-precision over probe queries; b capped at the series length (16)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_stabilizes_with_enough_samples() {
        let report = convergence(&Scale::quick());
        let mean_at = |b: &str| -> f64 {
            let row = report.rows.iter().find(|r| r[0] == b).unwrap();
            row.last().unwrap().parse().unwrap()
        };
        // b=12 must do at least as well as b=1 and be near-perfect.
        assert!(mean_at("12") >= mean_at("1"));
        assert!(mean_at("12") > 0.9, "b=12 accuracy {}", mean_at("12"));
        // Stability: b=12 vs b=16 within a small delta.
        assert!((mean_at("12") - mean_at("16")).abs() < 0.05);
    }
}
