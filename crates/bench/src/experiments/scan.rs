//! Scan microbench — the per-row hot path every other feature multiplies.
//!
//! [`scan_shard_wbf`] is the kernel of the whole system: a batch of Q
//! queries over N stations is exactly N × shards calls to it, and the
//! streaming session re-runs it every epoch. This sweep drives the kernel
//! directly (no network, no pipeline) across the three axes that set its
//! cost — stored rows, broadcast sections and hash count — and reports
//! throughput in rows/sec and probes/sec plus the byte volumes involved.
//!
//! The workload is deliberately miss-dominated: in a city-scale deployment
//! almost every stored pattern fails the membership test for almost every
//! query, so the hit-free probe path is what the rows/sec number measures.
//! A fixed 1-in-64 slice of rows replays a query's own global pattern, so
//! report encoding is exercised and the oracle hits stay deterministic.
//!
//! `repro scan` emits the table and the `BENCH_scan.json` trajectory file;
//! `repro scan --check BENCH_scan.json` is the CI perf-smoke regression
//! gate (geometric-mean throughput must stay within 30 % of the baseline).

use std::time::Instant;

use dipm_core::{mix64, FilterParams, Kernel};
use dipm_mobilenet::UserId;
use dipm_protocol::{
    build_wbf, scan_shard_wbf, wire, DiMatchingConfig, PatternQuery, WbfScanSection,
};
use dipm_timeseries::Pattern;

use crate::report::{Cell, Report};
use crate::scale::Scale;

/// Intervals per synthetic CDR pattern (a week at 6-hour resolution, the
/// paper's Dataset-1 shape).
pub(crate) const PATTERN_LEN: usize = 28;

/// One row in `HIT_STRIDE` replays a query global, so the scan always
/// produces some reports.
pub(crate) const HIT_STRIDE: usize = 64;

/// One timed sweep point.
#[derive(Debug, Clone)]
pub struct ScanPoint {
    /// Stored rows in the scanned shard.
    pub rows: usize,
    /// Broadcast filter sections probed per row.
    pub sections: usize,
    /// Hash functions per probe.
    pub hashes: u16,
    /// Scanned rows per second (one row = sampling + `sections` probes).
    pub rows_per_sec: f64,
    /// Section probes per second (`rows/sec × sections`).
    pub probes_per_sec: f64,
    /// Reports produced by one scan pass.
    pub reports: usize,
    /// Wire bytes of one station's encoded report payload.
    pub report_bytes: u64,
    /// Wire bytes of the broadcast filter sections probed.
    pub filter_bytes: u64,
}

/// A deterministic synthetic pattern: `PATTERN_LEN` intervals of bursty
/// traffic derived from `mix64`.
pub(crate) fn synthetic_pattern(seed: u64, row: u64) -> Pattern {
    (0..PATTERN_LEN as u64)
        .map(|i| mix64(seed ^ (row.wrapping_mul(0x9e37) + i)) % 50)
        .collect()
}

/// A query over two synthetic local fragments.
pub(crate) fn synthetic_query(seed: u64, index: u64) -> PatternQuery {
    let a = synthetic_pattern(seed ^ 0xA5A5, index * 2);
    let b = synthetic_pattern(seed ^ 0x5A5A, index * 2 + 1);
    PatternQuery::from_locals(vec![a, b]).expect("synthetic fragments are valid")
}

/// The synthetic shard: miss-dominated rows with a deterministic 1-in-64
/// slice replaying query globals so the hit path is exercised too.
pub(crate) fn synthetic_shard(
    seed: u64,
    rows: usize,
    queries: &[PatternQuery],
) -> Vec<(UserId, Pattern)> {
    (0..rows)
        .map(|r| {
            let pattern = if r % HIT_STRIDE == 0 {
                queries[(r / HIT_STRIDE) % queries.len()].global().clone()
            } else {
                synthetic_pattern(seed, r as u64)
            };
            (UserId(r as u64), pattern)
        })
        .collect()
}

/// Times one sweep point: builds `sections` filters at `hashes` hash
/// functions, then scans `rows` synthetic rows until `min_seconds` of
/// wall-clock time has accumulated.
fn measure(seed: u64, rows: usize, sections: usize, hashes: u16, min_seconds: f64) -> ScanPoint {
    let config = DiMatchingConfig::default();
    let queries: Vec<PatternQuery> = (0..sections)
        .map(|i| synthetic_query(seed, i as u64))
        .collect();
    // Size the filter once from the default build, then pin the same bit
    // count for every hash-count arm so only `k` varies along that axis.
    let sized = build_wbf(&queries[..1], &config)
        .expect("synthetic query builds")
        .stats;
    let config = DiMatchingConfig {
        fixed_geometry: Some(
            FilterParams::new(sized.bits.max(1 << 12), hashes).expect("valid geometry"),
        ),
        ..config
    };
    let built: Vec<_> = queries
        .iter()
        .map(|q| build_wbf(std::slice::from_ref(q), &config).expect("section builds"))
        .collect();
    let views: Vec<WbfScanSection<'_>> = built
        .iter()
        .enumerate()
        .map(|(i, b)| (i as u32, &b.filter, b.query_totals.as_slice()))
        .collect();
    let filter_bytes: u64 = built
        .iter()
        .map(|b| {
            dipm_core::encode::encode_wbf(&b.filter)
                .expect("filter encodes")
                .len() as u64
        })
        .sum();

    let owned = synthetic_shard(seed, rows, &queries);
    let shard: Vec<(UserId, &Pattern)> = owned.iter().map(|&(u, ref p)| (u, p)).collect();

    // Warm-up pass doubles as the report census.
    let reports = scan_shard_wbf(&views, &shard, &config, None).expect("scan runs");
    let report_bytes = wire::encode_tagged_weight_reports(&reports)
        .expect("reports encode")
        .len() as u64;

    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        let out = scan_shard_wbf(&views, &shard, &config, None).expect("scan runs");
        assert_eq!(out.len(), reports.len(), "scan must be deterministic");
        passes += 1;
        if start.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let rows_per_sec = rows as f64 * passes as f64 / elapsed;
    ScanPoint {
        rows,
        sections,
        hashes,
        rows_per_sec,
        probes_per_sec: rows_per_sec * sections as f64,
        reports: reports.len(),
        report_bytes,
        filter_bytes,
    }
}

/// The sweep grid for one scale: `(rows, sections, hashes, min_seconds)`.
fn grid(scale: &Scale) -> (Vec<usize>, Vec<usize>, Vec<u16>, f64) {
    if scale.users <= Scale::quick().users {
        (vec![500, 2_000], vec![1, 8], vec![4], 0.05)
    } else {
        (
            vec![1_000, 4_000, 16_000],
            vec![1, 4, 16],
            vec![2, 4, 8],
            0.15,
        )
    }
}

/// Runs the rows × sections × hashes sweep and returns the raw points.
pub fn scan_sweep(scale: &Scale) -> Vec<ScanPoint> {
    let (rows_axis, sections_axis, hashes_axis, min_seconds) = grid(scale);
    let mut points = Vec::new();
    for &rows in &rows_axis {
        for &sections in &sections_axis {
            for &hashes in &hashes_axis {
                points.push(measure(scale.seed, rows, sections, hashes, min_seconds));
            }
        }
    }
    points
}

/// The geometric mean of the sweep's rows/sec column — the single number
/// the CI regression gate compares across commits.
pub fn geomean_rows_per_sec(points: &[ScanPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = points.iter().map(|p| p.rows_per_sec.ln()).sum();
    (log_sum / points.len() as f64).exp()
}

/// Scan-kernel throughput across rows × sections × hashes.
pub fn scan(scale: &Scale) -> Report {
    let points = scan_sweep(scale);
    let mut report = Report::new(
        "Scan microbench",
        "scan_shard_wbf kernel throughput across rows × sections × hashes",
        "the per-row scan is the hot path every feature multiplies; its cost must be flat per \
         (row × section) probe and allocation-free on the hit-free path",
    );
    // The kernel column comes LAST: downstream tooling (and this crate's
    // own tests) addresses the numeric columns positionally.
    report.columns([
        "rows",
        "sections",
        "hashes",
        "rows_per_sec",
        "probes_per_sec",
        "reports",
        "report_bytes",
        "filter_bytes",
        "kernel",
    ]);
    let kernel = Kernel::active().name();
    for p in &points {
        report.row_cells([
            Cell::int(p.rows as u64),
            Cell::int(p.sections as u64),
            Cell::int(u64::from(p.hashes)),
            Cell::rendered(p.rows_per_sec, format!("{:.0}", p.rows_per_sec)),
            Cell::rendered(p.probes_per_sec, format!("{:.0}", p.probes_per_sec)),
            Cell::int(p.reports as u64),
            Cell::int(p.report_bytes),
            Cell::int(p.filter_bytes),
            Cell::text(kernel),
        ]);
    }
    report.note(format!(
        "geomean rows/sec: {:.0}",
        geomean_rows_per_sec(&points)
    ));
    report.note(format!("probe kernel: {kernel}"));
    report.note(format!(
        "miss-dominated synthetic shard ({PATTERN_LEN}-interval rows, 1 hit per {HIT_STRIDE} \
         rows), seed {}; one row = accumulate + sample + probe every section",
        scale.seed
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_typed_grid() {
        let report = scan(&Scale::quick());
        assert_eq!(report.rows.len(), 4, "2 row counts × 2 section counts");
        for r in 0..report.rows.len() {
            let rows = report.value(r, 0).unwrap();
            let throughput = report.value(r, 3).unwrap();
            assert!(rows > 0.0);
            assert!(throughput > 0.0, "throughput must be measured, not zero");
            assert_eq!(
                report.value(r, 4).unwrap(),
                throughput * report.value(r, 1).unwrap(),
                "probes/sec = rows/sec × sections"
            );
            // The dispatch column is appended last and stays textual so the
            // numeric gate columns keep their positions.
            assert_eq!(report.rows[r].last().unwrap(), Kernel::active().name());
            assert_eq!(report.value(r, 8), None, "kernel cell carries no value");
        }
        assert_eq!(report.columns.last().unwrap(), "kernel");
        let kernel_note = format!("probe kernel: {}", Kernel::active().name());
        assert!(
            report.notes.iter().any(|n| n == &kernel_note),
            "dispatch must be recorded in the notes: {:?}",
            report.notes
        );
    }

    #[test]
    fn scan_reports_are_deterministic_across_points_of_same_shape() {
        let a = measure(7, 500, 2, 4, 0.01);
        let b = measure(7, 500, 2, 4, 0.01);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.report_bytes, b.report_bytes);
        assert!(a.reports > 0, "the 1-in-{HIT_STRIDE} hit slice must report");
    }

    #[test]
    fn geomean_of_equal_points_is_the_point() {
        let p = measure(7, 200, 1, 4, 0.01);
        let mut q = p.clone();
        q.rows_per_sec = p.rows_per_sec;
        assert!(
            (geomean_rows_per_sec(&[p.clone(), q]) - p.rows_per_sec).abs() < p.rows_per_sec * 1e-9
        );
        assert_eq!(geomean_rows_per_sec(&[]), 0.0);
    }
}
