//! Figure 4 — accuracy and efficiency vs the number of query patterns.
//!
//! The paper sweeps the number of given patterns (100..500) and compares
//! Naive / BF / WBF on precision (4a), time (4b), communication (4c) and
//! storage (4d). One sweep here produces all four tables.

use std::collections::BTreeSet;
use std::time::Duration;

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::{ground_truth, Category, Dataset, UserId};
use dipm_protocol::{
    evaluate, run_pipeline, Bloom, DiMatchingConfig, FilterStrategy, Naive, PatternQuery,
    PipelineOptions, QueryOutcome, SectionGrouping, Shards, Wbf,
};

use crate::report::Report;
use crate::scale::Scale;

/// Shards per station in the sweep's deployment.
const SWEEP_SHARDS: usize = 2;

/// Worker threads the sweep's pool multiplexes station shards over (kept
/// below the quick scale's station count, the intended pool shape).
const SWEEP_WORKERS: usize = 8;

/// Runs one method through the generic pipeline in the sweep's scaled-out
/// deployment shape: merged filter (the paper's Algorithm 1 over all given
/// patterns), sharded stations, fixed worker pool.
fn run_method<S: FilterStrategy>(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    top_k: Option<usize>,
) -> QueryOutcome {
    let options = PipelineOptions {
        mode: ExecutionMode::ThreadPool {
            workers: SWEEP_WORKERS,
        },
        shards: Shards::new(SWEEP_SHARDS),
        top_k,
        grouping: SectionGrouping::Merged,
        ..PipelineOptions::default()
    };
    run_pipeline::<S>(dataset, queries, config, &options)
        .expect("pipeline runs")
        .into_merged(top_k)
}

/// One method's measurements at one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct MethodPoint {
    /// R-precision against the union ground truth.
    pub precision: f64,
    /// Wall-clock time of the full run.
    pub elapsed: Duration,
    /// Station→center matching traffic (the paper's Fig. 4c metric:
    /// "message size cost from pattern matching between base stations and
    /// data center" — candidate reports, or the shipped corpus for naive).
    pub comm_bytes: u64,
    /// Query-dissemination traffic (filter broadcast), reported separately.
    pub broadcast_bytes: u64,
    /// Total stored bytes.
    pub storage_bytes: u64,
}

/// All three methods at one pattern count.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Number of query patterns `a`.
    pub patterns: usize,
    /// The naive baseline.
    pub naive: MethodPoint,
    /// The Bloom-filter baseline.
    pub bloom: MethodPoint,
    /// DI-matching with the weighted Bloom filter.
    pub wbf: MethodPoint,
}

/// Runs the Figure-4 sweep once; the four table builders below format it.
pub fn sweep(scale: &Scale) -> Vec<SweepPoint> {
    let dataset =
        Dataset::city_slice(scale.users, scale.stations, scale.seed).expect("valid preset");
    let config = DiMatchingConfig::default();

    // Queries come from two target segments so the relevant set stays a
    // strict subset of the population and precision remains discriminative.
    let probes: Vec<UserId> = dataset
        .users()
        .iter()
        .filter(|u| matches!(u.category, Category::OfficeWorker | Category::Salesperson))
        .map(|u| u.id)
        .collect();

    let mut points = Vec::new();
    for &a in &scale.pattern_counts {
        let queries: Vec<PatternQuery> = (0..a)
            .map(|i| {
                let user = probes[i % probes.len()];
                PatternQuery::from_fragments(dataset.fragments(user).expect("user has traffic"))
                    .expect("valid query")
            })
            .collect();
        let mut relevant: BTreeSet<UserId> = BTreeSet::new();
        for q in &queries {
            relevant.extend(ground_truth::eps_similar_users(
                &dataset,
                q.global(),
                config.eps,
            ));
        }
        let k = Some(relevant.len());

        let run = |outcome: QueryOutcome| -> MethodPoint {
            MethodPoint {
                precision: evaluate(outcome.retrieved(), &relevant).precision,
                elapsed: outcome.elapsed,
                comm_bytes: outcome.cost.report_bytes + outcome.cost.data_bytes,
                broadcast_bytes: outcome.cost.query_bytes,
                storage_bytes: outcome.cost.storage_bytes,
            }
        };

        let naive = run(run_method::<Naive>(&dataset, &queries, &config, k));
        let bloom = run(run_method::<Bloom>(&dataset, &queries, &config, k));
        let wbf = run(run_method::<Wbf>(&dataset, &queries, &config, k));
        points.push(SweepPoint {
            patterns: a,
            naive,
            bloom,
            wbf,
        });
    }
    points
}

fn base_report(id: &str, title: &str, claim: &str, points: &[SweepPoint]) -> Report {
    let mut report = Report::new(id, title, claim);
    report.columns(["patterns", "naive", "bf", "wbf"]);
    let _ = points;
    report
}

/// Figure 4(a): precision vs number of patterns.
pub fn fig4a(points: &[SweepPoint]) -> Report {
    let mut report = base_report(
        "Figure 4(a)",
        "precision vs number of patterns",
        "WBF ≈ Naive ≈ 1; BF lower and degrading as patterns increase",
        points,
    );
    for p in points {
        report.row([
            format!("{}", p.patterns),
            format!("{:.3}", p.naive.precision),
            format!("{:.3}", p.bloom.precision),
            format!("{:.3}", p.wbf.precision),
        ]);
    }
    report
}

/// Figure 4(b): wall-clock time vs number of patterns.
pub fn fig4b(points: &[SweepPoint]) -> Report {
    let mut report = base_report(
        "Figure 4(b)",
        "time cost vs number of patterns (seconds)",
        "Naive grows fastest with patterns; BF linear; WBF nearly flat",
        points,
    );
    for p in points {
        report.row([
            format!("{}", p.patterns),
            format!("{:.3}", p.naive.elapsed.as_secs_f64()),
            format!("{:.3}", p.bloom.elapsed.as_secs_f64()),
            format!("{:.3}", p.wbf.elapsed.as_secs_f64()),
        ]);
    }
    report
}

/// Figure 4(c): communication cost relative to naive.
pub fn fig4c(points: &[SweepPoint]) -> Report {
    let mut report = Report::new(
        "Figure 4(c)",
        "communication cost (fraction of naive)",
        "WBF far below naive and below BF: the weight check cuts the matching number",
    );
    report.columns(["patterns", "naive", "bf", "wbf", "wbf broadcast KB"]);
    for p in points {
        let naive = p.naive.comm_bytes as f64;
        report.row([
            format!("{}", p.patterns),
            "1.000".to_string(),
            format!("{:.3}", p.bloom.comm_bytes as f64 / naive),
            format!("{:.3}", p.wbf.comm_bytes as f64 / naive),
            format!("{}", p.wbf.broadcast_bytes / 1024),
        ]);
    }
    report.note("per the paper's metric this counts station→center matching traffic; query dissemination (broadcast) is listed separately");
    report
}

/// Figure 4(d): storage cost relative to naive.
pub fn fig4d(points: &[SweepPoint]) -> Report {
    let mut report = base_report(
        "Figure 4(d)",
        "storage cost (fraction of naive)",
        "BF ≲ WBF ≪ naive: the weight table is a small premium",
        points,
    );
    for p in points {
        let naive = p.naive.storage_bytes as f64;
        report.row([
            format!("{}", p.patterns),
            "1.000".to_string(),
            format!("{:.3}", p.bloom.storage_bytes as f64 / naive),
            format!("{:.3}", p.wbf.storage_bytes as f64 / naive),
        ]);
    }
    report.note("WBF's weight table grows when many near-duplicate patterns are queried at once; at the paper's corpus/query ratio (3.6M users vs 500 patterns) it is negligible against the shipped corpus");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points() -> Vec<SweepPoint> {
        let mut scale = Scale::quick();
        scale.users = 300;
        scale.pattern_counts = vec![10, 30];
        sweep(&scale)
    }

    #[test]
    fn sweep_shapes_match_the_paper() {
        let points = tiny_points();
        for p in &points {
            // 4(a): naive is exact; WBF within 15% of naive; BF at most WBF.
            assert!((p.naive.precision - 1.0).abs() < 1e-9);
            assert!(p.wbf.precision > 0.85, "wbf precision {}", p.wbf.precision);
            assert!(p.bloom.precision <= p.wbf.precision + 1e-9);
            // 4(c): the weight check cuts the matching number — candidate
            // counts (28 bytes per tagged WBF entry, 12 per tagged BF
            // entry; the 8-byte shard+count frame header per station
            // excluded) and both filter methods ship far less than naive.
            let header_bytes = 8 * 12; // stations at quick scale
            let wbf_candidates = p.wbf.comm_bytes.saturating_sub(header_bytes) / 28;
            let bloom_candidates = p.bloom.comm_bytes.saturating_sub(header_bytes) / 12;
            assert!(wbf_candidates <= bloom_candidates);
            assert!(p.wbf.comm_bytes < p.naive.comm_bytes);
            assert!(p.bloom.comm_bytes < p.naive.comm_bytes);
            // 4(d): BF stores strictly less than WBF (no weight table).
            assert!(p.bloom.storage_bytes <= p.wbf.storage_bytes);
            assert!(p.bloom.storage_bytes < p.naive.storage_bytes);
        }
    }

    #[test]
    fn tables_render_one_row_per_point() {
        let points = tiny_points();
        for report in [
            fig4a(&points),
            fig4b(&points),
            fig4c(&points),
            fig4d(&points),
        ] {
            assert_eq!(report.rows.len(), points.len());
        }
    }
}
