//! Latency sweep — the post-paper experiment for the async runtime.
//!
//! The paper's Fig. 4 axes (precision, time, communication, storage) say
//! nothing about *latency*: its prototype runs every station as a local
//! thread, so reports arrive as fast as the machine computes. At city scale
//! the dominant cost is flight time, not compute — so this experiment sweeps
//! the modeled round-trip budget × station count under
//! `ExecutionMode::Async` and reports the deterministic virtual-clock
//! makespan (broadcast flight → station scan → report flight, the
//! slowest-station critical path).
//!
//! Two claims the table backs:
//!
//! * byte meters are identical to the sequential run at every sweep point —
//!   modeling time moves no bytes, so Fig. 4c comparisons stay valid;
//! * makespan grows with the link budget but *not* with station count per
//!   se (stations run concurrently — only the slowest link and the largest
//!   per-station store matter), which is exactly the behaviour a
//!   thread-per-station wall clock cannot exhibit honestly.

use dipm_distsim::{ExecutionMode, LatencyModel};
use dipm_mobilenet::Dataset;
use dipm_protocol::{
    run_pipeline, BatchOutcome, DiMatchingConfig, PatternQuery, PipelineOptions, Shards, Wbf,
};

use crate::report::{Cell, Report};
use crate::scale::Scale;

fn queries(dataset: &Dataset, count: usize) -> Vec<PatternQuery> {
    (0..count)
        .map(|i| {
            let user = dataset.users()[(i * 13) % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid query")
        })
        .collect()
}

fn run(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    latency: LatencyModel,
) -> BatchOutcome {
    let options = PipelineOptions {
        mode,
        shards: Shards::new(2),
        latency,
        ..PipelineOptions::default()
    };
    run_pipeline::<Wbf>(dataset, queries, config, &options).expect("pipeline runs")
}

/// Modeled RTT × station count sweep under the async runtime.
pub fn latency(scale: &Scale) -> Report {
    let config = DiMatchingConfig::default();
    let mut report = Report::new(
        "Latency sweep",
        "async runtime, virtual-clock makespan across modeled RTT × station count (WBF, batch of 4)",
        "bytes match the sequential run everywhere; makespan tracks the slowest link, not the station count",
    );
    report.columns([
        "stations",
        "base RTT ticks",
        "makespan kticks",
        "slowest station",
        "fastest station",
        "broadcast KB",
    ]);
    let station_counts = [
        (scale.stations / 2).max(2),
        scale.stations.max(2),
        (scale.stations * 2).max(4),
    ];
    for &stations in &station_counts {
        let dataset = Dataset::city_slice(scale.users, stations, scale.seed).expect("valid preset");
        let qs = queries(&dataset, 4);
        let reference = run(
            &dataset,
            &qs,
            &config,
            ExecutionMode::Sequential,
            LatencyModel::default(),
        );
        for &base_ticks in &[100u64, 10_000, 1_000_000] {
            let model = LatencyModel {
                base_ticks,
                ticks_per_byte: 1,
                ticks_per_row: 4,
                jitter_ticks: base_ticks / 10,
                seed: scale.seed,
            };
            let outcome = run(
                &dataset,
                &qs,
                &config,
                ExecutionMode::Async { workers: 8 },
                model,
            );
            assert_eq!(
                reference.cost.mode_invariant(),
                outcome.cost.mode_invariant(),
                "modeling time must not move bytes"
            );
            let latency = outcome.latency.expect("async reports latency");
            let slowest = latency.critical_path_ticks();
            let fastest = latency
                .stations
                .iter()
                .map(|s| s.report_delivered)
                .min()
                .unwrap_or(0);
            report.row_cells([
                Cell::int(dataset.stations().len() as u64),
                Cell::int(base_ticks),
                Cell::float(latency.makespan_ticks as f64 / 1000.0, 1),
                Cell::rendered(slowest as f64, format!("{:.1}k", slowest as f64 / 1000.0)),
                Cell::rendered(fastest as f64, format!("{:.1}k", fastest as f64 / 1000.0)),
                Cell::int(outcome.cost.query_bytes / 1024),
            ]);
        }
    }
    report.note(format!(
        "{} users over 4 queries; jitter = RTT/10, 4 ticks per scanned row, seed {}",
        scale.users, scale.seed
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_is_deterministic_and_monotone_in_rtt() {
        let mut scale = Scale::quick();
        scale.users = 200;
        let first = latency(&scale);
        assert_eq!(first.rows.len(), 9, "3 station counts × 3 RTT points");
        let second = latency(&scale);
        assert_eq!(
            first.rows, second.rows,
            "virtual-clock readings must reproduce exactly"
        );
        // Within each station count, makespan grows with the link budget.
        // Typed cells carry the unrounded reading — no string re-parsing.
        for base in (0..first.rows.len()).step_by(3) {
            let makespans: Vec<f64> = (base..base + 3)
                .map(|r| first.value(r, 2).unwrap())
                .collect();
            assert!(
                makespans.windows(2).all(|w| w[0] < w[1]),
                "makespan must grow with RTT: {makespans:?}"
            );
        }
    }
}
