//! Streaming updates — the rebuild-vs-delta broadcast economics.
//!
//! The paper's WBF is build-once: any change to the standing query set (or
//! a deliberate refresh over churned CDRs) re-broadcasts every filter
//! section — exactly the Fig. 4c dissemination cost, paid again every
//! epoch. The streaming session replaces that with a counting filter at the
//! center and per-epoch [`FilterDelta`](dipm_protocol::wire::FilterDelta)
//! broadcasts: only the positions whose visible state changed cross the
//! network.
//!
//! This experiment sweeps the per-epoch churn rate (the fraction of
//! standing queries replaced each epoch) and meters the actual delta
//! broadcast bytes against what a full rebuild would have shipped that
//! epoch. Two claims the table backs:
//!
//! * pure CDR churn (0 % query churn) costs a near-empty delta — daily
//!   monitoring is effectively free on the dissemination axis;
//! * deltas undercut rebuilds for modest churn (≤ 10 % per epoch is
//!   comfortably below 1×), and the crossover — where per-entry delta
//!   framing outweighs the dense full encoding — only arrives at
//!   rebuild-scale churn, which is honest: a delta protocol should lose
//!   when everything changes.

use dipm_mobilenet::Dataset;
use dipm_protocol::{
    DiMatchingConfig, EpochBroadcast, PatternQuery, PipelineOptions, StreamingSession,
};

use crate::report::{Cell, Report};
use crate::scale::Scale;

/// Standing-query count for the sweep.
const STANDING: usize = 20;

/// Epochs per churn rate (epoch 0 is the full broadcast).
const EPOCHS: u64 = 4;

fn snapshot(scale: &Scale, epoch: u64) -> Dataset {
    Dataset::city_slice(scale.users, scale.stations, scale.seed + epoch).expect("valid preset")
}

fn query_for(dataset: &Dataset, index: usize) -> PatternQuery {
    let user = dataset.users()[index % dataset.users().len()];
    PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic")).expect("valid query")
}

/// One churn rate's measured epochs.
pub struct ChurnPoint {
    /// Queries replaced per epoch.
    pub churn: usize,
    /// Per-epoch `(delta bytes, rebuild bytes, delta entries)` for epochs
    /// 1.., i.e. every delta-broadcast epoch.
    pub epochs: Vec<(u64, u64, usize)>,
}

/// Runs the churn sweep and returns the raw per-epoch measurements.
pub fn churn_sweep(scale: &Scale) -> Vec<ChurnPoint> {
    let day0 = snapshot(scale, 0);
    let initial: Vec<PatternQuery> = (0..STANDING).map(|i| query_for(&day0, i * 13)).collect();
    // Pin geometry with 2× headroom over the initial build so churned-in
    // queries never force a resize mid-sweep.
    let sized = dipm_protocol::build_wbf(&initial, &DiMatchingConfig::default())
        .expect("initial build")
        .stats;
    let config = DiMatchingConfig {
        fixed_geometry: Some(
            dipm_core::FilterParams::new(sized.bits * 2, sized.hashes).expect("valid geometry"),
        ),
        ..DiMatchingConfig::default()
    };

    // 0 %, 5 %, 10 % and 50 % of the standing set per epoch.
    let churn_counts = [0usize, STANDING / 20, STANDING / 10, STANDING / 2];
    churn_counts
        .iter()
        .map(|&churn| {
            let mut session =
                StreamingSession::new(&initial, config.clone(), PipelineOptions::default())
                    .expect("session opens");
            let mut next_user = STANDING * 13;
            let mut epochs = Vec::new();
            for epoch in 0..EPOCHS {
                if epoch > 0 {
                    // Replace the `churn` oldest live queries with fresh
                    // ones over previously unwatched users.
                    for id in session.live_queries().into_iter().take(churn) {
                        session.remove_query(id).expect("live query removes");
                    }
                    for _ in 0..churn {
                        let query = query_for(&day0, next_user);
                        next_user += 13;
                        session.insert_query(&query).expect("query inserts");
                    }
                }
                let outcome = session
                    .run_epoch(&snapshot(scale, epoch))
                    .expect("epoch runs");
                match outcome.broadcast {
                    EpochBroadcast::Full => {
                        assert_eq!(epoch, 0, "only the first epoch broadcasts the full filter");
                    }
                    EpochBroadcast::Delta { entries } => {
                        epochs.push((outcome.broadcast_bytes, outcome.rebuild_bytes, entries));
                    }
                }
            }
            ChurnPoint { churn, epochs }
        })
        .collect()
}

/// Delta-vs-rebuild broadcast bytes per epoch across churn rates.
pub fn streaming(scale: &Scale) -> Report {
    let mut report = Report::new(
        "Streaming updates",
        "per-epoch delta broadcast bytes vs full-rebuild bytes across standing-query churn rates",
        "standing queries survive streaming updates: pure CDR churn is a near-free delta, and \
         modest query churn stays well below the rebuild the build-once design re-broadcasts",
    );
    report.columns([
        "churn/epoch",
        "rate",
        "avg Δ entries",
        "avg Δ KB",
        "rebuild KB",
        "Δ/rebuild",
    ]);
    for point in churn_sweep(scale) {
        let n = point.epochs.len() as f64;
        let avg_delta = point.epochs.iter().map(|&(d, _, _)| d).sum::<u64>() as f64 / n;
        let avg_rebuild = point.epochs.iter().map(|&(_, r, _)| r).sum::<u64>() as f64 / n;
        let avg_entries = point.epochs.iter().map(|&(_, _, e)| e).sum::<usize>() as f64 / n;
        let rate = point.churn as f64 * 100.0 / STANDING as f64;
        report.row_cells([
            Cell::int(point.churn as u64),
            Cell::rendered(rate, format!("{rate:.0}%")),
            Cell::float(avg_entries, 0),
            Cell::float(avg_delta / 1024.0, 1),
            Cell::float(avg_rebuild / 1024.0, 1),
            Cell::float(avg_delta / avg_rebuild, 2),
        ]);
    }
    report.note(format!(
        "{STANDING} standing queries over {} users, {} epochs per rate, geometry pinned at 2× \
         headroom, seed {}",
        scale.users, EPOCHS, scale.seed
    ));
    report.note(
        "epoch 0 always ships the full filter once; every later epoch ships only changed \
         positions"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_beat_rebuilds_up_to_ten_percent_churn() {
        let mut scale = Scale::quick();
        scale.users = 300;
        let points = churn_sweep(&scale);
        assert_eq!(points.len(), 4);
        for point in &points {
            assert_eq!(point.epochs.len() as u64, EPOCHS - 1);
            let rate = point.churn as f64 / STANDING as f64;
            if rate <= 0.10 {
                for &(delta, rebuild, _) in &point.epochs {
                    assert!(
                        delta < rebuild,
                        "churn {} ({}%): delta {delta} must undercut rebuild {rebuild}",
                        point.churn,
                        rate * 100.0
                    );
                }
            }
        }
        // Pure CDR churn is near-free: two orders below the rebuild.
        let idle = &points[0];
        for &(delta, rebuild, entries) in &idle.epochs {
            assert_eq!(entries, 0);
            assert!(
                delta * 50 < rebuild,
                "idle delta {delta} vs rebuild {rebuild}"
            );
        }
    }

    #[test]
    fn streaming_report_is_deterministic() {
        let mut scale = Scale::quick();
        scale.users = 300;
        let first = streaming(&scale);
        let second = streaming(&scale);
        assert_eq!(first.rows, second.rows);
        assert_eq!(first.rows.len(), 4, "four churn rates");
    }
}
