//! Batch & shard scaling — the post-paper experiment for the unified
//! pipeline.
//!
//! Two sweeps over the same city slice:
//!
//! * **Batch amortization** — a batch of Q queries through one pipeline run
//!   vs Q single-query runs: scan passes (N vs Q·N), broadcast bytes and
//!   wall time. The claim: station work is flat in Q because every local
//!   pattern is sampled once per batch.
//! * **Shard scaling** — the same workload across shard layouts and worker
//!   pools: identical bytes (rebalance safety), wall time as the pool
//!   shrinks below one thread per station.

use std::time::Duration;

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::Dataset;
use dipm_protocol::{
    run_pipeline, BatchOutcome, DiMatchingConfig, PatternQuery, PipelineOptions, Shards, Wbf,
};

use crate::report::{Cell, Report};
use crate::scale::Scale;

fn queries(dataset: &Dataset, count: usize) -> Vec<PatternQuery> {
    (0..count)
        .map(|i| {
            let user = dataset.users()[(i * 13) % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid query")
        })
        .collect()
}

fn run_batch(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    shards: usize,
) -> BatchOutcome {
    let options = PipelineOptions {
        mode,
        shards: Shards::new(shards),
        ..PipelineOptions::default()
    };
    run_pipeline::<Wbf>(dataset, queries, config, &options).expect("pipeline runs")
}

/// Batch-amortization table: one batched run vs repeated single-query runs.
pub fn batch_scaling(scale: &Scale) -> Report {
    let dataset =
        Dataset::city_slice(scale.users, scale.stations, scale.seed).expect("valid preset");
    let config = DiMatchingConfig::default();
    let mut report = Report::new(
        "Batch scaling",
        "one batched pipeline run vs Q single-query runs (WBF, per-query sections)",
        "scan passes stay at N per batch; single-query loops pay Q×N passes and Q broadcasts",
    );
    report.columns([
        "batch Q",
        "batch passes",
        "single passes",
        "batch bcast KB",
        "single bcast KB",
        "batch s",
        "single s",
    ]);
    for &q in &[1usize, 4, 8, 16] {
        let qs = queries(&dataset, q);
        let batched = run_batch(&dataset, &qs, &config, ExecutionMode::Sequential, 1);
        let mut single_passes = 0u64;
        let mut single_bcast = 0u64;
        let mut single_elapsed = Duration::ZERO;
        for query in &qs {
            let one = run_batch(
                &dataset,
                std::slice::from_ref(query),
                &config,
                ExecutionMode::Sequential,
                1,
            );
            single_passes += one.cost.scan_passes;
            single_bcast += one.cost.query_bytes;
            single_elapsed += one.elapsed;
        }
        report.row_cells([
            Cell::int(q as u64),
            Cell::int(batched.cost.scan_passes),
            Cell::int(single_passes),
            Cell::int(batched.cost.query_bytes / 1024),
            Cell::int(single_bcast / 1024),
            Cell::float(batched.elapsed.as_secs_f64(), 3),
            Cell::float(single_elapsed.as_secs_f64(), 3),
        ]);
    }
    report.note(format!(
        "{} users, {} stations; rankings are per query and identical in both columns",
        scale.users, scale.stations
    ));
    report
}

/// Shard/worker-pool scaling table over one fixed batch.
pub fn shard_scaling(scale: &Scale) -> Report {
    let dataset =
        Dataset::city_slice(scale.users, scale.stations, scale.seed).expect("valid preset");
    let config = DiMatchingConfig::default();
    let qs = queries(&dataset, 8);
    let mut report = Report::new(
        "Shard scaling",
        "one batch across shard layouts and execution modes (WBF)",
        "bytes are identical in every layout; only wall time moves",
    );
    report.columns(["shards", "mode", "total KB", "scan passes", "seconds"]);
    let reference = run_batch(&dataset, &qs, &config, ExecutionMode::Sequential, 1);
    let workers = (scale.stations as usize / 2).max(1);
    let pool = ExecutionMode::ThreadPool { workers };
    for &shards in &[1usize, 2, 4, 8] {
        for (label, mode) in [
            ("seq", ExecutionMode::Sequential),
            ("thread/station", ExecutionMode::Threaded),
            ("pool", pool),
            ("async", ExecutionMode::Async { workers }),
        ] {
            let outcome = run_batch(&dataset, &qs, &config, mode, shards);
            assert_eq!(
                outcome.cost.mode_invariant(),
                reference.cost.mode_invariant(),
                "shard layout or mode leaked into the metered bytes"
            );
            report.row_cells([
                Cell::int(shards as u64),
                Cell::text(label),
                Cell::int(outcome.cost.total_bytes() / 1024),
                Cell::int(outcome.cost.scan_passes),
                Cell::float(outcome.elapsed.as_secs_f64(), 3),
            ]);
        }
    }
    report.note("the pool and async rows run at half a worker per station — the shape a city-scale deployment multiplexes at");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_amortization_holds_at_tiny_scale() {
        let mut scale = Scale::quick();
        scale.users = 200;
        let report = batch_scaling(&scale);
        assert_eq!(report.rows.len(), 4);
        for r in 0..report.rows.len() {
            // Typed cells: read the measured numbers directly instead of
            // re-parsing the rendered table strings.
            let q = report.value(r, 0).unwrap() as u64;
            let batch_passes = report.value(r, 1).unwrap() as u64;
            let single_passes = report.value(r, 2).unwrap() as u64;
            assert_eq!(batch_passes, scale.stations as u64);
            assert_eq!(single_passes, q * scale.stations as u64);
        }
    }

    #[test]
    fn shard_scaling_is_byte_stable() {
        let mut scale = Scale::quick();
        scale.users = 200;
        // The table itself asserts byte equality across layouts.
        let report = shard_scaling(&scale);
        assert_eq!(report.rows.len(), 16, "4 shard layouts × 4 modes");
    }
}
