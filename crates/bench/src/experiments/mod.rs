//! One module per regenerated table or figure.

mod ablation;
mod batch;
mod convergence;
mod fig1;
mod fig4;
mod fpp;
mod latency;
mod routing;
mod scan;
mod service;
mod streaming;
mod table2;
mod topk;

pub use ablation::ablation;
pub use batch::{batch_scaling, shard_scaling};
pub use convergence::convergence;
pub use fig1::{fig1a, fig1b, fig3};
pub use fig4::{fig4a, fig4b, fig4c, fig4d, sweep, MethodPoint, SweepPoint};
pub use fpp::fpp;
pub use latency::latency;
pub use routing::{routing, routing_sweep, RoutingPoint};
pub use scan::{geomean_rows_per_sec, scan, scan_sweep, ScanPoint};
pub use service::{service, service_sweep, ServicePoint};
pub use streaming::{churn_sweep, streaming, ChurnPoint};
pub use table2::{score_day, table2, DayScore};
pub use topk::{topk, topk_sweep, TopkPoint};
