//! Multi-tenant service — checkpoint-resync vs full re-broadcast economics.
//!
//! A center crash is the streaming design's stress test: the naive restart
//! re-broadcasts every tenant's full filter to every station, paying the
//! Fig. 4c dissemination cost all over again. The service instead persists
//! a [`checkpoint`](dipm_protocol::Service::checkpoint) (the counting
//! filter's refcounts plus the pending-delta baselines — center state
//! only, station filters stay on the stations) and, on recovery, resyncs
//! each station with exactly the delta the crashed center would have sent.
//!
//! This experiment sweeps tenants × per-tenant query churn × station count
//! and, at each point, crashes the whole service between two epochs: every
//! tenant is checkpointed, deregistered into its stations' retained
//! memories, and recovered into a fresh service that then runs the next
//! epoch. Two claims the table backs:
//!
//! * resync bytes stay far below the full re-broadcast a restart would
//!   ship, for any tenant count, at modest (≤ 10 %) churn;
//! * the checkpoint is a *local* durability cost (one write to the
//!   center's disk, refcount-verbose but never broadcast) traded against
//!   a *network* cost paid once per station — the table reports both so
//!   the trade stays visible.

use std::collections::BTreeMap;

use dipm_mobilenet::Dataset;
use dipm_protocol::{wire, DiMatchingConfig, PatternQuery, PipelineOptions, Service, TenantId};

use crate::report::{Cell, Report};
use crate::scale::Scale;

/// Standing queries per tenant.
const STANDING: usize = 10;

fn snapshot(scale: &Scale, stations: u32, epoch: u64) -> Dataset {
    Dataset::city_slice(scale.users, stations, scale.seed + epoch).expect("valid preset")
}

fn query_for(dataset: &Dataset, index: usize) -> PatternQuery {
    let user = dataset.users()[index % dataset.users().len()];
    PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic")).expect("valid query")
}

/// One `(tenants, churn, stations)` point's crash-and-recover economics.
pub struct ServicePoint {
    /// Concurrent tenants multiplexed over the shared stations.
    pub tenants: usize,
    /// Queries replaced per tenant at the crash boundary.
    pub churn: usize,
    /// Base stations shared by all tenants.
    pub stations: u32,
    /// Bytes of the persisted service checkpoint (all tenants, one frame).
    pub checkpoint_bytes: u64,
    /// Bytes the recovered epoch actually broadcast (all tenants): the
    /// resync deltas against the filters the stations retained.
    pub resync_bytes: u64,
    /// Bytes a restart-from-scratch would have broadcast that epoch: every
    /// tenant's full filter to every station.
    pub rebroadcast_bytes: u64,
}

/// Runs the crash-and-recover sweep and returns the raw measurements.
pub fn service_sweep(scale: &Scale) -> Vec<ServicePoint> {
    // 0 %, 10 % and 30 % of each tenant's standing set at the crash.
    let churn_counts = [0usize, STANDING / 10, 3 * STANDING / 10];
    let tenant_counts = [1usize, 2, 4];
    let station_counts = [scale.stations, scale.stations * 2];

    let mut points = Vec::new();
    for &stations in &station_counts {
        let day0 = snapshot(scale, stations, 0);
        let day1 = snapshot(scale, stations, 1);
        // Pin geometry with 2× headroom over a representative initial set
        // so churned-in queries never force a resize mid-sweep (recovery
        // requires the pinned geometry to match the checkpoint's).
        let sized = dipm_protocol::build_wbf(
            &(0..STANDING)
                .map(|i| query_for(&day0, i * 13))
                .collect::<Vec<_>>(),
            &DiMatchingConfig::default(),
        )
        .expect("initial build")
        .stats;
        let config = DiMatchingConfig {
            fixed_geometry: Some(
                dipm_core::FilterParams::new(sized.bits * 2, sized.hashes).expect("valid geometry"),
            ),
            ..DiMatchingConfig::default()
        };
        for &tenants in &tenant_counts {
            for &churn in &churn_counts {
                let options = PipelineOptions::default();
                let mut live = Service::new(options);
                for t in 0..tenants {
                    let initial: Vec<PatternQuery> = (0..STANDING)
                        .map(|i| query_for(&day0, (t * 997 + i) * 13))
                        .collect();
                    live.register(TenantId(t as u64), &initial, config.clone())
                        .expect("tenant registers");
                }
                // Epoch 0: every tenant's one-time full broadcast.
                live.run_epoch(&day0).expect("first epoch runs");
                // Churn each tenant's standing set; the pending delta now
                // rides the checkpoint as undrained baselines.
                let mut next_user = tenants * 997 * 13;
                for t in 0..tenants {
                    let id = TenantId(t as u64);
                    let retired: Vec<_> = live
                        .session(id)
                        .expect("tenant is live")
                        .live_queries()
                        .into_iter()
                        .take(churn)
                        .collect();
                    for query in retired {
                        live.remove_query(id, query).expect("live query removes");
                    }
                    for _ in 0..churn {
                        let query = query_for(&day0, next_user);
                        next_user += 13;
                        live.insert_query(id, &query).expect("query inserts");
                    }
                }
                // The crash: persist one service frame, dissolve every
                // session into the memories its stations retain, then
                // recover each tenant into a brand-new center.
                let frame = live.checkpoint().expect("checkpoint encodes");
                let checkpoint_bytes = frame.len() as u64;
                let mut memories = BTreeMap::new();
                for id in live.tenants() {
                    let session = live.deregister(id).expect("tenant is live");
                    memories.insert(id, session.release_stations());
                }
                let mut restarted = Service::new(options);
                for (id, tenant_frame) in
                    wire::decode_service_checkpoint(frame).expect("checkpoint decodes")
                {
                    let id = TenantId(id);
                    restarted
                        .recover_tenant(
                            id,
                            tenant_frame,
                            memories.remove(&id).expect("memories survive"),
                            config.clone(),
                        )
                        .expect("tenant recovers");
                }
                // The recovered epoch: deltas against retained filters vs
                // the full re-broadcast a cold restart would have shipped.
                let epoch = restarted.run_epoch(&day1).expect("recovered epoch runs");
                assert!(epoch.deferred.is_empty());
                let resync_bytes = epoch
                    .outcomes
                    .values()
                    .map(|o| o.broadcast_bytes)
                    .sum::<u64>();
                let rebroadcast_bytes = epoch
                    .outcomes
                    .values()
                    .map(|o| o.rebuild_bytes)
                    .sum::<u64>();
                points.push(ServicePoint {
                    tenants,
                    churn,
                    stations,
                    checkpoint_bytes,
                    resync_bytes,
                    rebroadcast_bytes,
                });
            }
        }
    }
    points
}

/// Checkpoint-resync vs full re-broadcast bytes across tenants × churn ×
/// stations.
pub fn service(scale: &Scale) -> Report {
    let mut report = Report::new(
        "Multi-tenant service recovery",
        "checkpoint-resync bytes vs the full re-broadcast a center restart would ship, across \
         tenant count, per-tenant query churn and station count",
        "a crashed center recovers from its checkpoint by resyncing stations with deltas against \
         the filters they retained — a small fraction of re-broadcasting every tenant's filter",
    );
    report.columns([
        "tenants",
        "churn/tenant",
        "rate",
        "stations",
        "ckpt KB",
        "resync KB",
        "rebroadcast KB",
        "resync/rebroadcast",
        "saved_bytes",
    ]);
    for p in service_sweep(scale) {
        let rate = p.churn as f64 * 100.0 / STANDING as f64;
        report.row_cells([
            Cell::int(p.tenants as u64),
            Cell::int(p.churn as u64),
            Cell::rendered(rate, format!("{rate:.0}%")),
            Cell::int(u64::from(p.stations)),
            Cell::float(p.checkpoint_bytes as f64 / 1024.0, 1),
            Cell::float(p.resync_bytes as f64 / 1024.0, 1),
            Cell::float(p.rebroadcast_bytes as f64 / 1024.0, 1),
            Cell::float(p.resync_bytes as f64 / p.rebroadcast_bytes as f64, 3),
            Cell::int(p.rebroadcast_bytes.saturating_sub(p.resync_bytes)),
        ]);
    }
    report.note(format!(
        "{STANDING} standing queries per tenant over {} users, churn applied at the crash \
         boundary so the pending delta rides the checkpoint, geometry pinned at 2× headroom, \
         seed {}",
        scale.users, scale.seed
    ));
    report.note(
        "the crash dissolves every session into its stations' retained memories and recovers \
         each tenant into a fresh center from one service checkpoint frame"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;

    #[test]
    fn resync_stays_far_below_rebroadcast_at_modest_churn() {
        let mut scale = Scale::quick();
        scale.users = 300;
        scale.stations = 6;
        let points = service_sweep(&scale);
        assert_eq!(
            points.len(),
            18,
            "3 tenant counts × 3 churn rates × 2 station counts"
        );
        for p in &points {
            let rate = p.churn as f64 / STANDING as f64;
            if rate <= 0.10 {
                assert!(
                    p.resync_bytes * 2 < p.rebroadcast_bytes,
                    "{} tenants, churn {}, {} stations: resync {} must be far below \
                     re-broadcast {}",
                    p.tenants,
                    p.churn,
                    p.stations,
                    p.resync_bytes,
                    p.rebroadcast_bytes
                );
            }
            // The checkpoint is local state, never broadcast; the table
            // reports its size so the durability trade stays visible.
            assert!(p.checkpoint_bytes > 0);
        }
        // Zero churn resyncs near-free: the delta carries no entries.
        for p in points.iter().filter(|p| p.churn == 0) {
            assert!(
                p.resync_bytes * 20 < p.rebroadcast_bytes,
                "idle resync {} vs re-broadcast {}",
                p.resync_bytes,
                p.rebroadcast_bytes
            );
        }
    }

    #[test]
    fn service_report_is_deterministic() {
        let mut scale = Scale::quick();
        scale.users = 300;
        scale.stations = 6;
        let first = service(&scale);
        let second = service(&scale);
        assert_eq!(first.rows, second.rows);
    }

    /// The checked-in trajectory must itself witness the claim: every
    /// ≤ 10 %-churn row of `BENCH_service.json` resyncs in well under half
    /// the re-broadcast bytes.
    #[test]
    fn checked_in_trajectory_backs_the_resync_claim() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        let json = std::fs::read_to_string(path).expect("BENCH_service.json is checked in");
        let rates = check::extract_column(&json, "rate");
        let resync = check::extract_column(&json, "resync KB");
        let rebroadcast = check::extract_column(&json, "rebroadcast KB");
        assert_eq!(rates.len(), resync.len());
        assert_eq!(rates.len(), rebroadcast.len());
        assert!(!rates.is_empty(), "trajectory has rows");
        for ((rate, resync), rebroadcast) in rates.iter().zip(&resync).zip(&rebroadcast) {
            if *rate <= 10.0 {
                assert!(
                    resync * 2.0 < *rebroadcast,
                    "checked-in row at {rate}% churn: resync {resync} KB vs re-broadcast \
                     {rebroadcast} KB"
                );
            }
        }
    }
}
