//! Table II — incomplete-pattern-matching effectiveness on Dataset 2.
//!
//! The paper evaluates four survey days over 310 persons with ground-truth
//! occupation categories, reporting ≥ 0.97 precision, ≥ 0.99 recall and
//! ≥ 0.98 F1 per day. Each synthetic "day" here is one seeded survey trace;
//! a day's score averages one probe query per category, judged against the
//! category-membership ground truth.

use dipm_distsim::ExecutionMode;
use dipm_mobilenet::{ground_truth, Category, Dataset};
use dipm_protocol::{evaluate, run_wbf, DiMatchingConfig, PatternQuery};

use crate::report::Report;

/// Per-day effectiveness scores.
#[derive(Debug, Clone, Copy)]
pub struct DayScore {
    /// Mean precision over the six category queries.
    pub precision: f64,
    /// Mean recall over the six category queries.
    pub recall: f64,
    /// F1 of the mean precision/recall.
    pub f1: f64,
}

/// Scores one survey day (one seeded 310-person trace).
pub fn score_day(seed: u64) -> DayScore {
    let dataset = Dataset::survey_310(seed);
    let config = DiMatchingConfig::default();
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    for category in Category::ALL {
        let probe = dataset
            .users()
            .iter()
            .find(|u| u.category == category)
            .expect("every category is populated");
        let query =
            PatternQuery::from_fragments(dataset.fragments(probe.id).expect("probe has traffic"))
                .expect("valid query");
        let relevant = ground_truth::category_members(&dataset, category);
        let outcome = run_wbf(
            &dataset,
            &[query],
            &config,
            ExecutionMode::Threaded,
            Some(relevant.len()),
        )
        .expect("pipeline runs");
        let score = evaluate(outcome.retrieved(), &relevant);
        precision_sum += score.precision;
        recall_sum += score.recall;
    }
    let precision = precision_sum / Category::ALL.len() as f64;
    let recall = recall_sum / Category::ALL.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    DayScore {
        precision,
        recall,
        f1,
    }
}

/// Regenerates Table II over four synthetic survey days.
pub fn table2(seed: u64) -> Report {
    let mut report = Report::new(
        "Table II",
        "incomplete pattern matching effectiveness (Dataset 2)",
        "per day: precision ≥ 0.97, recall ≥ 0.99, F1 ≥ 0.98",
    );
    report.columns(["day", "precision", "recall", "F1"]);
    let labels = ["day 1", "day 2", "day 3", "day 4"];
    for (i, label) in labels.iter().enumerate() {
        let score = score_day(seed + i as u64);
        report.row([
            label.to_string(),
            format!("{:.2}", score.precision),
            format!("{:.2}", score.recall),
            format!("{:.2}", score.f1),
        ]);
    }
    report.note("ground truth: occupation-category membership, as in the paper's survey");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_scores_meet_the_paper_band() {
        let score = score_day(1);
        assert!(score.precision >= 0.95, "precision {}", score.precision);
        assert!(score.recall >= 0.95, "recall {}", score.recall);
        assert!(score.f1 >= 0.95, "f1 {}", score.f1);
    }
}
