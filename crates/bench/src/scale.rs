//! Harness scale knobs.
//!
//! The paper evaluates on a 3.6 M-user city; this harness defaults to a
//! laptop-scale slice that preserves every claimed shape and can be grown
//! with CLI flags.

/// Scale configuration shared by the sweep experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Number of simulated phones in the Dataset-1-style trace.
    pub users: usize,
    /// Number of base stations.
    pub stations: u32,
    /// Query-pattern counts for the Figure-4 sweep (the paper uses
    /// 100..500).
    pub pattern_counts: Vec<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale {
            users: 3_000,
            stations: 24,
            pattern_counts: vec![100, 200, 300, 400, 500],
            seed: 7,
        }
    }
}

impl Scale {
    /// A reduced scale for smoke runs (`repro --quick`).
    pub fn quick() -> Scale {
        Scale {
            users: 600,
            stations: 12,
            pattern_counts: vec![20, 40, 60],
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sweep() {
        let s = Scale::default();
        assert_eq!(s.pattern_counts, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(Scale::quick().users < Scale::default().users);
    }
}
