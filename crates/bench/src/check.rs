//! The perf-trajectory regression gate.
//!
//! `BENCH_*.json` files are emitted by this crate's own [`crate::Report::to_json`],
//! so the gate does not need a JSON parser: it scans the known shape for a
//! named numeric column and compares geometric means. A >30 % drop against
//! the checked-in baseline fails CI's perf-smoke job.

/// Extracts every numeric value stored under `column` in a `BENCH_*.json`
/// payload (our own [`crate::Report::to_json`] output — row objects keyed by
/// column header). Non-numeric cells under the key are skipped.
pub fn extract_column(json: &str, column: &str) -> Vec<f64> {
    let needle = format!("\"{column}\": ");
    let mut values = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find([',', '}', '\n', ']']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            values.push(v);
        }
    }
    values
}

/// Extracts the remainder of the first note whose text starts with
/// `prefix` from a `BENCH_*.json` payload (notes are plain strings in the
/// report's `"notes"` array). Returns `None` when no note carries the
/// prefix — e.g. a baseline recorded before the note existed.
pub fn extract_note(json: &str, prefix: &str) -> Option<String> {
    let needle = format!("\"{prefix}");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// The geometric mean of strictly positive samples; `0.0` when empty.
pub fn geomean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|v| v.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Outcome of comparing a fresh measurement against a recorded baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionVerdict {
    /// Geometric mean of the baseline column.
    pub baseline: f64,
    /// Geometric mean of the fresh measurement.
    pub current: f64,
    /// `current / baseline` (0.0 when the baseline is empty).
    pub ratio: f64,
    /// Whether the fresh run clears `1 − tolerance` of the baseline.
    pub pass: bool,
}

/// Compares a fresh geomean against the baseline recorded in `baseline_json`
/// under `column`. `tolerance` is the allowed fractional regression (0.30
/// means "fail below 70 % of baseline"). An empty/missing baseline column
/// passes vacuously — there is nothing to regress against.
pub fn check_regression(
    baseline_json: &str,
    column: &str,
    current: f64,
    tolerance: f64,
) -> RegressionVerdict {
    let baseline = geomean(&extract_column(baseline_json, column));
    if baseline <= 0.0 {
        return RegressionVerdict {
            baseline,
            current,
            ratio: 0.0,
            pass: true,
        };
    }
    let ratio = current / baseline;
    RegressionVerdict {
        baseline,
        current,
        ratio,
        pass: ratio >= 1.0 - tolerance,
    }
}

/// The worst per-config regression: pairs `baseline` and `current` samples
/// positionally (both come from the same deterministic sweep grid, so row i
/// is the same configuration in both) and returns the `(row index, ratio)`
/// of the smallest `current / baseline`. `None` when either side is empty
/// or the lengths disagree (the grids are not comparable row-by-row).
pub fn worst_ratio(baseline: &[f64], current: &[f64]) -> Option<(usize, f64)> {
    if baseline.is_empty() || baseline.len() != current.len() {
        return None;
    }
    baseline
        .iter()
        .zip(current)
        .enumerate()
        .filter(|&(_, (&b, _))| b > 0.0)
        .map(|(i, (&b, &c))| (i, c / b))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Cell, Report};

    fn sample_json() -> String {
        let mut r = Report::new("Scan", "t", "c");
        r.columns(["rows", "rows_per_sec", "mode"])
            .row_cells([
                Cell::int(500),
                Cell::rendered(1000.0, "1000"),
                Cell::text("seq"),
            ])
            .row_cells([
                Cell::int(2000),
                Cell::rendered(4000.0, "4000"),
                Cell::text("seq"),
            ]);
        r.to_json()
    }

    #[test]
    fn extracts_named_column_only() {
        let json = sample_json();
        assert_eq!(extract_column(&json, "rows_per_sec"), vec![1000.0, 4000.0]);
        assert_eq!(extract_column(&json, "rows"), vec![500.0, 2000.0]);
        assert!(extract_column(&json, "mode").is_empty(), "strings skipped");
        assert!(extract_column(&json, "absent").is_empty());
    }

    #[test]
    fn extracts_note_remainder_by_prefix() {
        let mut r = Report::new("Scan", "t", "c");
        r.columns(["rows"]).row_cells([Cell::int(1)]);
        r.note("geomean rows/sec: 1000");
        r.note("probe kernel: avx2");
        let json = r.to_json();
        assert_eq!(
            extract_note(&json, "probe kernel: "),
            Some("avx2".to_string())
        );
        assert_eq!(extract_note(&json, "absent note: "), None);
        assert_eq!(extract_note("{}", "probe kernel: "), None);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1000.0, 4000.0]) - 2000.0).abs() < 1e-9);
        assert_eq!(geomean(&[0.0, -3.0]), 0.0, "non-positive samples ignored");
    }

    #[test]
    fn regression_gate_thresholds() {
        let json = sample_json(); // baseline geomean = 2000
        assert!(check_regression(&json, "rows_per_sec", 2000.0, 0.30).pass);
        assert!(check_regression(&json, "rows_per_sec", 1401.0, 0.30).pass);
        let fail = check_regression(&json, "rows_per_sec", 1000.0, 0.30);
        assert!(!fail.pass);
        assert!((fail.ratio - 0.5).abs() < 1e-9);
        assert!((fail.baseline - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn worst_ratio_finds_the_deepest_regression() {
        let baseline = [1000.0, 2000.0, 4000.0];
        let current = [900.0, 1000.0, 4400.0];
        assert_eq!(worst_ratio(&baseline, &current), Some((1, 0.5)));
        assert_eq!(worst_ratio(&[], &[]), None);
        assert_eq!(
            worst_ratio(&baseline, &current[..2]),
            None,
            "length mismatch"
        );
        assert_eq!(
            worst_ratio(&[0.0, 100.0], &[5.0, 50.0]),
            Some((1, 0.5)),
            "zero baselines are skipped"
        );
    }

    #[test]
    fn empty_baseline_passes_vacuously() {
        let verdict = check_regression("{}", "rows_per_sec", 123.0, 0.30);
        assert!(verdict.pass);
        assert_eq!(verdict.baseline, 0.0);
    }
}
