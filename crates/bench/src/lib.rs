//! Experiment harness for the DI-matching reproduction.
//!
//! One runner per table/figure of the paper's evaluation (Section V), each
//! returning a printable [`Report`]:
//!
//! | Paper result | Runner | Regenerate with |
//! |---|---|---|
//! | Figure 1(a) | [`experiments::fig1a`] | `repro fig1a` |
//! | Figure 1(b) | [`experiments::fig1b`] | `repro fig1b` |
//! | Figure 3 | [`experiments::fig3`] | `repro fig3` |
//! | Section V-B convergence | [`experiments::convergence`] | `repro convergence` |
//! | Figure 4(a)–(d) | [`experiments::sweep`] + `fig4a..fig4d` | `repro fig4` |
//! | Table II | [`experiments::table2`] | `repro table2` |
//! | FP bound tightness | [`experiments::fpp`] | `repro fpp` |
//! | Design ablations | [`experiments::ablation`] | `repro ablation` |
//! | Batch & shard scaling (post-paper) | [`experiments::batch_scaling`] / [`experiments::shard_scaling`] | `repro batch` |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
pub mod experiments;
mod report;
mod scale;

pub use report::{Cell, Report};
pub use scale::Scale;
