//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT…] [--quick] [--users N] [--stations N] [--patterns A,B,C] [--seed S]
//!
//! experiments: fig1a fig1b fig3 convergence fig4 fig4a fig4b fig4c fig4d
//!              table2 fpp ablation batch latency streaming all   (default: all)
//! ```

use std::process::ExitCode;

use dipm_bench::{experiments, Report, Scale};

fn print(report: Report) {
    println!("{report}");
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [fig1a|fig1b|fig3|convergence|fig4|fig4a|fig4b|fig4c|fig4d|table2|fpp|ablation|batch|latency|streaming|all]…"
    );
    eprintln!("       [--quick] [--users N] [--stations N] [--patterns A,B,C] [--seed S]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::default();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--users" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.users = v,
                None => return usage(),
            },
            "--stations" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.stations = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.seed = v,
                None => return usage(),
            },
            "--patterns" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|v| v.trim().parse().ok()).collect();
                match parsed {
                    Some(counts) if !counts.is_empty() => scale.pattern_counts = counts,
                    _ => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => experiments_requested.push(name.to_string()),
            _ => return usage(),
        }
    }
    if experiments_requested.is_empty() {
        experiments_requested.push("all".to_string());
    }

    for name in &experiments_requested {
        match name.as_str() {
            "fig1a" => print(experiments::fig1a()),
            "fig1b" => print(experiments::fig1b(&scale)),
            "fig3" => print(experiments::fig3()),
            "convergence" => print(experiments::convergence(&scale)),
            "fig4" | "fig4a" | "fig4b" | "fig4c" | "fig4d" => {
                eprintln!(
                    "running figure-4 sweep: {} users, {} stations, patterns {:?}…",
                    scale.users, scale.stations, scale.pattern_counts
                );
                let points = experiments::sweep(&scale);
                match name.as_str() {
                    "fig4a" => print(experiments::fig4a(&points)),
                    "fig4b" => print(experiments::fig4b(&points)),
                    "fig4c" => print(experiments::fig4c(&points)),
                    "fig4d" => print(experiments::fig4d(&points)),
                    _ => {
                        print(experiments::fig4a(&points));
                        print(experiments::fig4b(&points));
                        print(experiments::fig4c(&points));
                        print(experiments::fig4d(&points));
                    }
                }
            }
            "table2" => print(experiments::table2(scale.seed)),
            "fpp" => print(experiments::fpp(scale.seed)),
            "ablation" => print(experiments::ablation(&scale)),
            "batch" => {
                print(experiments::batch_scaling(&scale));
                print(experiments::shard_scaling(&scale));
            }
            "latency" => print(experiments::latency(&scale)),
            "streaming" => print(experiments::streaming(&scale)),
            "all" => {
                print(experiments::fig1a());
                print(experiments::fig1b(&scale));
                print(experiments::fig3());
                print(experiments::convergence(&scale));
                eprintln!(
                    "running figure-4 sweep: {} users, {} stations, patterns {:?}…",
                    scale.users, scale.stations, scale.pattern_counts
                );
                let points = experiments::sweep(&scale);
                print(experiments::fig4a(&points));
                print(experiments::fig4b(&points));
                print(experiments::fig4c(&points));
                print(experiments::fig4d(&points));
                print(experiments::table2(scale.seed));
                print(experiments::fpp(scale.seed));
                print(experiments::ablation(&scale));
                print(experiments::batch_scaling(&scale));
                print(experiments::shard_scaling(&scale));
                print(experiments::latency(&scale));
                print(experiments::streaming(&scale));
            }
            _ => return usage(),
        }
    }
    ExitCode::SUCCESS
}
