//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT…] [--quick] [--users N] [--stations N] [--patterns A,B,C]
//!       [--seed S] [--out DIR] [--check BASELINE.json] [--tolerance F]
//!
//! experiments: fig1a fig1b fig3 convergence fig4 fig4a fig4b fig4c fig4d
//!              table2 fpp ablation batch latency streaming service scan
//!              topk routing all   (default: all)
//! ```
//!
//! The sweep experiments (`batch`, `latency`, `streaming`, `service`,
//! `scan`, `topk`, `routing`) also write their tables as
//! `BENCH_<experiment>.json` into `--out` (default: the current directory)
//! — the checked-in perf trajectory every PR updates.
//! `scan`/`topk`/`routing`/`service` with
//! `--check BASELINE.json` additionally compare the fresh sweep's
//! geometric-mean gate column against the baseline file and exit non-zero
//! on a regression past `--tolerance` (default 0.30 = fail below 70 % of
//! baseline); CI's perf-smoke job runs exactly that. The gate also walks
//! the grids row by row: any single row below `1 − 2×tolerance` of its
//! baseline fails the check even when the geomean still clears, so one
//! collapsed configuration cannot hide behind the others.

use std::path::PathBuf;
use std::process::ExitCode;

use dipm_bench::{check, experiments, Report, Scale};

/// Default allowed fractional throughput regression before `--check` fails;
/// override with `--tolerance`.
const DEFAULT_CHECK_TOLERANCE: f64 = 0.30;

fn print(report: Report) {
    println!("{report}");
}

/// Runs the `--check` regression gate for one sweep report: compares the
/// fresh geomean of `column` against `baseline_path` and names the worst
/// per-row regression alongside. Returns `true` when the gate fails.
fn run_check(
    report: &Report,
    name: &str,
    column: &str,
    baseline_path: &std::path::Path,
    tolerance: f64,
) -> bool {
    let fresh_json = report.to_json();
    let fresh = check::extract_column(&fresh_json, column);
    let current = check::geomean(&fresh);
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!(
                "error: could not read baseline {}: {e}",
                baseline_path.display()
            );
            return true;
        }
    };
    // Like-for-like only: when both sides record which probe kernel they
    // ran (the `probe kernel: …` note), a mismatch means the numbers are
    // not comparable — a forced-scalar CI arm must not "regress" against an
    // AVX2 baseline, nor may a vectorized run claim a win over scalar here.
    let baseline_kernel = check::extract_note(&baseline_json, "probe kernel: ");
    let current_kernel = check::extract_note(&fresh_json, "probe kernel: ");
    if let (Some(base), Some(cur)) = (&baseline_kernel, &current_kernel) {
        if base != cur {
            eprintln!(
                "perf check [{name}]: baseline kernel `{base}` ≠ current kernel `{cur}`; \
                 cross-kernel comparison skipped (not like-for-like)"
            );
            return false;
        }
        eprintln!("perf check [{name}]: probe kernel `{cur}` on both sides");
    }
    let verdict = check::check_regression(&baseline_json, column, current, tolerance);
    let worst = check::worst_ratio(&check::extract_column(&baseline_json, column), &fresh);
    eprintln!(
        "perf check [{name}]: baseline {:.0} {column}, current {:.0} ({:.0}% of baseline, tolerance {:.0}%) → {}",
        verdict.baseline,
        verdict.current,
        verdict.ratio * 100.0,
        tolerance * 100.0,
        if verdict.pass { "PASS" } else { "FAIL" },
    );
    // A single collapsed grid row can hide behind a healthy geomean, so the
    // gate also fails when any one row drops past twice the tolerance.
    let row_floor = 1.0 - 2.0 * tolerance;
    let mut row_failed = false;
    match worst {
        Some((row, ratio)) => {
            row_failed = ratio < row_floor;
            eprintln!(
                "perf check [{name}]: worst grid row: #{row} at {:.0}% of its baseline \
                 (row floor {:.0}%) → {}",
                ratio * 100.0,
                row_floor * 100.0,
                if row_failed { "FAIL" } else { "PASS" },
            );
        }
        None => eprintln!(
            "perf check [{name}]: grids not row-comparable (baseline empty or shape changed); \
             geomean only"
        ),
    }
    !verdict.pass || row_failed
}

/// Writes one experiment's reports as `BENCH_<name>.json` (a JSON array of
/// report objects) under `out`.
fn emit_json(out: &std::path::Path, name: &str, reports: &[Report]) {
    let body: Vec<String> = reports.iter().map(Report::to_json).collect();
    let payload = format!("[\n{}]\n", body.join(","));
    let path = out.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, payload) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [fig1a|fig1b|fig3|convergence|fig4|fig4a|fig4b|fig4c|fig4d|table2|fpp|ablation|batch|latency|streaming|service|scan|topk|routing|all]…"
    );
    eprintln!("       [--quick] [--users N] [--stations N] [--patterns A,B,C] [--seed S]");
    eprintln!("       [--out DIR] [--check BASELINE.json] [--tolerance F]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::default();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from(".");
    let mut check_baseline: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_CHECK_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--users" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.users = v,
                None => return usage(),
            },
            "--stations" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.stations = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale.seed = v,
                None => return usage(),
            },
            "--patterns" => {
                let Some(list) = args.next() else {
                    return usage();
                };
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|v| v.trim().parse().ok()).collect();
                match parsed {
                    Some(counts) if !counts.is_empty() => scale.pattern_counts = counts,
                    _ => return usage(),
                }
            }
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--check" => match args.next() {
                Some(path) => check_baseline = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => experiments_requested.push(name.to_string()),
            _ => return usage(),
        }
    }
    if experiments_requested.is_empty() {
        experiments_requested.push("all".to_string());
    }

    let mut check_failed = false;
    for name in &experiments_requested {
        match name.as_str() {
            "fig1a" => print(experiments::fig1a()),
            "fig1b" => print(experiments::fig1b(&scale)),
            "fig3" => print(experiments::fig3()),
            "convergence" => print(experiments::convergence(&scale)),
            "fig4" | "fig4a" | "fig4b" | "fig4c" | "fig4d" => {
                eprintln!(
                    "running figure-4 sweep: {} users, {} stations, patterns {:?}…",
                    scale.users, scale.stations, scale.pattern_counts
                );
                let points = experiments::sweep(&scale);
                match name.as_str() {
                    "fig4a" => print(experiments::fig4a(&points)),
                    "fig4b" => print(experiments::fig4b(&points)),
                    "fig4c" => print(experiments::fig4c(&points)),
                    "fig4d" => print(experiments::fig4d(&points)),
                    _ => {
                        print(experiments::fig4a(&points));
                        print(experiments::fig4b(&points));
                        print(experiments::fig4c(&points));
                        print(experiments::fig4d(&points));
                    }
                }
            }
            "table2" => print(experiments::table2(scale.seed)),
            "fpp" => print(experiments::fpp(scale.seed)),
            "ablation" => print(experiments::ablation(&scale)),
            "batch" => {
                let reports = [
                    experiments::batch_scaling(&scale),
                    experiments::shard_scaling(&scale),
                ];
                for r in &reports {
                    print(r.clone());
                }
                emit_json(&out_dir, "batch", &reports);
            }
            "latency" => {
                let report = experiments::latency(&scale);
                print(report.clone());
                emit_json(&out_dir, "latency", std::slice::from_ref(&report));
            }
            "streaming" => {
                let report = experiments::streaming(&scale);
                print(report.clone());
                emit_json(&out_dir, "streaming", std::slice::from_ref(&report));
            }
            "service" => {
                eprintln!(
                    "running multi-tenant service crash-and-recover sweep: {} users, seed {}…",
                    scale.users, scale.seed
                );
                let report = experiments::service(&scale);
                print(report.clone());
                emit_json(&out_dir, "service", std::slice::from_ref(&report));
                if let Some(baseline_path) = &check_baseline {
                    check_failed |=
                        run_check(&report, "service", "saved_bytes", baseline_path, tolerance);
                }
            }
            "scan" => {
                eprintln!("running scan microbench sweep (seed {})…", scale.seed);
                let report = experiments::scan(&scale);
                print(report.clone());
                emit_json(&out_dir, "scan", std::slice::from_ref(&report));
                if let Some(baseline_path) = &check_baseline {
                    check_failed |=
                        run_check(&report, "scan", "rows_per_sec", baseline_path, tolerance);
                }
            }
            "topk" => {
                eprintln!("running top-k scan sweep (seed {})…", scale.seed);
                let report = experiments::topk(&scale);
                print(report.clone());
                emit_json(&out_dir, "topk", std::slice::from_ref(&report));
                if let Some(baseline_path) = &check_baseline {
                    check_failed |=
                        run_check(&report, "topk", "rows_per_sec", baseline_path, tolerance);
                }
            }
            "routing" => {
                eprintln!(
                    "running query-routing sweep: {} users, seed {}…",
                    scale.users, scale.seed
                );
                let report = experiments::routing(&scale);
                print(report.clone());
                emit_json(&out_dir, "routing", std::slice::from_ref(&report));
                if let Some(baseline_path) = &check_baseline {
                    check_failed |=
                        run_check(&report, "routing", "saved_bytes", baseline_path, tolerance);
                }
            }
            "all" => {
                print(experiments::fig1a());
                print(experiments::fig1b(&scale));
                print(experiments::fig3());
                print(experiments::convergence(&scale));
                eprintln!(
                    "running figure-4 sweep: {} users, {} stations, patterns {:?}…",
                    scale.users, scale.stations, scale.pattern_counts
                );
                let points = experiments::sweep(&scale);
                print(experiments::fig4a(&points));
                print(experiments::fig4b(&points));
                print(experiments::fig4c(&points));
                print(experiments::fig4d(&points));
                print(experiments::table2(scale.seed));
                print(experiments::fpp(scale.seed));
                print(experiments::ablation(&scale));
                let batch = [
                    experiments::batch_scaling(&scale),
                    experiments::shard_scaling(&scale),
                ];
                for r in &batch {
                    print(r.clone());
                }
                emit_json(&out_dir, "batch", &batch);
                let latency = experiments::latency(&scale);
                print(latency.clone());
                emit_json(&out_dir, "latency", std::slice::from_ref(&latency));
                let streaming = experiments::streaming(&scale);
                print(streaming.clone());
                emit_json(&out_dir, "streaming", std::slice::from_ref(&streaming));
                let service = experiments::service(&scale);
                print(service.clone());
                emit_json(&out_dir, "service", std::slice::from_ref(&service));
                let routing = experiments::routing(&scale);
                print(routing.clone());
                emit_json(&out_dir, "routing", std::slice::from_ref(&routing));
            }
            _ => return usage(),
        }
    }
    if check_failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
