//! Micro-benchmarks: weighted vs classic Bloom filter operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dipm_core::{encode, BloomFilter, FilterParams, Weight, WeightedBloomFilter};

fn loaded_wbf(keys: u64) -> WeightedBloomFilter {
    let params = FilterParams::optimal(keys as usize, 0.01).expect("valid");
    let mut wbf = WeightedBloomFilter::new(params, 7);
    for k in 0..keys {
        let w = Weight::new(k % 13 + 1, 14).expect("non-zero");
        wbf.insert(k.wrapping_mul(0x9e37_79b9), w);
    }
    wbf
}

fn loaded_bloom(keys: u64) -> BloomFilter {
    let params = FilterParams::optimal(keys as usize, 0.01).expect("valid");
    let mut bf = BloomFilter::new(params, 7);
    for k in 0..keys {
        bf.insert(k.wrapping_mul(0x9e37_79b9));
    }
    bf
}

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters");
    group.sample_size(20);

    group.bench_function("bloom_insert_10k", |b| {
        let params = FilterParams::optimal(10_000, 0.01).expect("valid");
        b.iter_batched(
            || BloomFilter::new(params, 7),
            |mut bf| {
                for k in 0..10_000u64 {
                    bf.insert(k);
                }
                bf
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("wbf_insert_10k", |b| {
        let params = FilterParams::optimal(10_000, 0.01).expect("valid");
        b.iter_batched(
            || WeightedBloomFilter::new(params, 7),
            |mut wbf| {
                for k in 0..10_000u64 {
                    wbf.insert(k, Weight::ONE);
                }
                wbf
            },
            BatchSize::SmallInput,
        );
    });

    let bf = loaded_bloom(10_000);
    group.bench_function("bloom_query", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            bf.contains(k)
        });
    });

    let wbf = loaded_wbf(10_000);
    group.bench_function("wbf_query", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            wbf.query(k.wrapping_mul(0x9e37_79b9))
        });
    });

    group.bench_function("wbf_query_sequence_12", |b| {
        let keys: Vec<u64> = (0..12u64).map(|k| k.wrapping_mul(0x9e37_79b9)).collect();
        b.iter(|| wbf.query_sequence(keys.iter().copied()));
    });

    group.bench_function("wbf_encode", |b| {
        b.iter(|| encode::encode_wbf(&wbf).expect("encodable"));
    });

    let encoded = encode::encode_wbf(&wbf).expect("encodable");
    group.bench_function("wbf_decode", |b| {
        b.iter(|| encode::decode_wbf(encoded.clone()).expect("valid"));
    });

    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
