//! Macro-benchmarks: DI-matching protocol stages end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use dipm_core::Weight;
use dipm_distsim::ExecutionMode;
use dipm_mobilenet::{Dataset, UserId};
use dipm_protocol::{
    aggregate_and_rank, build_wbf, run_pipeline, run_wbf, scan_station, DiMatchingConfig,
    PatternQuery, PipelineOptions, Service, Shards, TenantId, Wbf,
};

fn queries(dataset: &Dataset, count: usize) -> Vec<PatternQuery> {
    (0..count)
        .map(|i| {
            let user = dataset.users()[(i * 17) % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid")
        })
        .collect()
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);

    let dataset = Dataset::city_slice(600, 12, 5).expect("valid preset");
    let config = DiMatchingConfig::default();

    for count in [1usize, 10] {
        let qs = queries(&dataset, count);
        group.bench_function(format!("build_wbf_q{count}"), |b| {
            b.iter(|| build_wbf(&qs, &config).expect("builds"));
        });
    }

    let qs = queries(&dataset, 5);
    let built = build_wbf(&qs, &config).expect("builds");
    let station = dataset.stations()[0];
    let patterns = dataset.station_locals(station).expect("station has data");
    group.bench_function("scan_station", |b| {
        b.iter(|| {
            scan_station(&built.filter, &built.query_totals, patterns, &config, None)
                .expect("scans")
        });
    });

    group.bench_function("aggregate_5k_reports", |b| {
        let reports: Vec<(UserId, Weight)> = (0..5_000u64)
            .map(|i| (UserId(i % 1_000), Weight::new(i % 7 + 1, 8).expect("valid")))
            .collect();
        b.iter(|| aggregate_and_rank(reports.clone(), Some(100)));
    });

    let one = queries(&dataset, 1);
    group.bench_function("end_to_end_wbf", |b| {
        b.iter(|| {
            run_wbf(&dataset, &one, &config, ExecutionMode::Sequential, Some(10))
                .expect("pipeline runs")
        });
    });

    // The batch-first pipeline: 8 queries amortized over one broadcast and
    // one scan pass per station, per-query rankings out.
    let batch = queries(&dataset, 8);
    group.bench_function("batch_pipeline_q8", |b| {
        let options = PipelineOptions {
            top_k: Some(10),
            ..PipelineOptions::default()
        };
        b.iter(|| run_pipeline::<Wbf>(&dataset, &batch, &config, &options).expect("pipeline runs"));
    });

    // The scaled-out deployment shape: sharded stations over a fixed pool.
    group.bench_function("batch_pipeline_q8_sharded_pool", |b| {
        let options = PipelineOptions {
            mode: ExecutionMode::ThreadPool { workers: 6 },
            shards: Shards::new(4),
            top_k: Some(10),
            ..PipelineOptions::default()
        };
        b.iter(|| run_pipeline::<Wbf>(&dataset, &batch, &config, &options).expect("pipeline runs"));
    });

    // One multiplexed service epoch: three standing tenants interleaved
    // over the shared executor and station links (epoch 0 full broadcasts
    // run once in setup, so the measured epoch is the steady-state delta
    // path).
    group.bench_function("service_epoch_3_tenants", |b| {
        let mut service = Service::new(PipelineOptions::default());
        for t in 0..3u64 {
            service
                .register(TenantId(t), &queries(&dataset, 3), config.clone())
                .expect("tenant registers");
        }
        service.run_epoch(&dataset).expect("first epoch runs");
        b.iter(|| service.run_epoch(&dataset).expect("epoch runs"));
    });

    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
