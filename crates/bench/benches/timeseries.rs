//! Micro-benchmarks: pattern transforms of the timeseries crate.

use criterion::{criterion_group, criterion_main, Criterion};
use dipm_timeseries::{
    enumerate_combinations, eps_match, AccumulatedPattern, Pattern, SampledPattern,
};

fn bench_timeseries(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeseries");
    group.sample_size(30);

    let long: Pattern = (0..1_000u64).map(|i| i % 97).collect();
    group.bench_function("accumulate_1k", |b| {
        b.iter(|| AccumulatedPattern::from_pattern(&long).expect("no overflow"));
    });

    let acc = AccumulatedPattern::from_pattern(&long).expect("no overflow");
    group.bench_function("sample_b12_from_1k", |b| {
        b.iter(|| SampledPattern::from_accumulated(&acc, 12).expect("valid"));
    });

    let other: Pattern = (0..1_000u64).map(|i| i % 97 + 1).collect();
    group.bench_function("eps_match_1k", |b| {
        b.iter(|| eps_match(&long, &other, 2));
    });

    let locals: Vec<Pattern> = (0..10)
        .map(|i| (0..16u64).map(|j| (i + j) % 11).collect())
        .collect();
    group.bench_function("combinations_e10", |b| {
        b.iter(|| enumerate_combinations(&locals).expect("valid"));
    });

    group.finish();
}

criterion_group!(benches, bench_timeseries);
criterion_main!(benches);
