//! Robustness: the data center must survive arbitrary bytes arriving as
//! station reports or broadcasts — decode cleanly or reject, never panic —
//! and the batch frames must reject structural lies (duplicate query ids,
//! shard-count mismatches, impossible counts) without over-allocating.

use bytes::Bytes;
use dipm_core::{Weight, WeightDiff, WeightSet};
use dipm_protocol::wire;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random, non-empty, disjoint weight diff derived from a seed.
fn weight_diff(seed: u64) -> WeightDiff {
    let mut removed = WeightSet::new();
    let mut added = WeightSet::new();
    for i in 0..(seed % 3 + 1) {
        let weight = Weight::new(seed % 7 + i + 1, 9).unwrap();
        if (seed + i) % 2 == 0 {
            removed.insert(weight);
        } else {
            added.insert(weight);
        }
    }
    if removed.is_empty() && added.is_empty() {
        added.insert(Weight::ONE);
    }
    WeightDiff { removed, added }
}

/// Builds a structurally valid delta from arbitrary position/diff seeds.
fn delta_from(seeds: &[(u32, u64)]) -> wire::FilterDelta {
    let mut entries: Vec<(u32, WeightDiff)> = seeds
        .iter()
        .map(|&(pos, seed)| (pos, weight_diff(seed)))
        .collect();
    entries.sort_by_key(|&(pos, _)| pos);
    entries.dedup_by_key(|&mut (pos, _)| pos);
    wire::FilterDelta { entries }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_any_decoder(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes.clone());
        let _ = wire::decode_batch_broadcast(bytes.clone());
        let _ = wire::decode_tagged_weight_reports(bytes.clone());
        let _ = wire::decode_tagged_id_reports(bytes.clone());
        for shards in [0u32, 1, 4] {
            let _ = wire::decode_batch_reports(bytes.clone(), shards);
        }
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A malicious station declares a huge entry count with a tiny body;
        // the decoders must reject on length, not trust the count.
        let mut raw = count.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let bytes = Bytes::from(raw);
        prop_assert!(wire::decode_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_id_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_id_reports(bytes.clone()).is_err());
        // Station data and batch frames validate per-entry, so they error
        // once the body runs dry.
        prop_assert!(wire::decode_station_data(bytes.clone()).is_err());
        prop_assert!(wire::decode_batch_broadcast(bytes).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrips(sections in vec(vec(any::<u8>(), 0..40), 0..10)) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged).unwrap();
        prop_assert_eq!(wire::decode_batch_broadcast(framed).unwrap(), tagged);
    }

    #[test]
    fn truncated_batch_broadcasts_error_never_panic(
        sections in vec(vec(any::<u8>(), 0..40), 1..6),
        cut_permille in 0usize..1000,
    ) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged).unwrap();
        let cut = framed.len() * cut_permille / 1000;
        prop_assume!(cut < framed.len());
        // Any strict prefix is missing bytes somewhere: decoding must fail
        // cleanly (it may fail on the header or on a section body).
        prop_assert!(wire::decode_batch_broadcast(framed.slice(0..cut)).is_err());
    }

    #[test]
    fn duplicate_query_ids_are_rejected(
        id in any::<u32>(),
        body_a in vec(any::<u8>(), 0..20),
        body_b in vec(any::<u8>(), 0..20),
    ) {
        let framed = wire::encode_batch_broadcast(&[
            (id, Bytes::from(body_a)),
            (id, Bytes::from(body_b)),
        ]).unwrap();
        prop_assert!(wire::decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected_by_every_decoder(
        entries in vec((any::<u32>(), any::<u64>()), 0..12),
        garbage in vec(any::<u8>(), 1..8),
        epoch in any::<u64>(),
        totals in vec(any::<u64>(), 0..4),
    ) {
        // Helper: a valid frame plus junk must error, never pass silently.
        fn with_trailing(valid: &Bytes, garbage: &[u8]) -> Bytes {
            let mut raw = valid.to_vec();
            raw.extend_from_slice(garbage);
            Bytes::from(raw)
        }
        let users: Vec<dipm_mobilenet::UserId> = entries
            .iter()
            .map(|&(q, u)| dipm_mobilenet::UserId(u ^ u64::from(q)))
            .collect();
        let weighted: Vec<(dipm_mobilenet::UserId, Weight)> = users
            .iter()
            .map(|&u| (u, Weight::new(u.0 % 5 + 1, 7).unwrap()))
            .collect();
        let tagged_ids: Vec<(u32, dipm_mobilenet::UserId)> =
            entries.iter().map(|&(q, u)| (q, dipm_mobilenet::UserId(u))).collect();
        let tagged_weights: Vec<(u32, dipm_mobilenet::UserId, Weight)> = entries
            .iter()
            .map(|&(q, u)| (q, dipm_mobilenet::UserId(u), Weight::new(u % 5 + 1, 7).unwrap()))
            .collect();
        let pattern = dipm_timeseries::Pattern::from([1u64, 2, 3]);
        let station_data: Vec<(dipm_mobilenet::UserId, &dipm_timeseries::Pattern)> =
            users.iter().map(|&u| (u, &pattern)).collect();
        let sections: Vec<(u32, Bytes)> = entries
            .iter()
            .enumerate()
            .map(|(i, _)| (i as u32, Bytes::from_static(b"SEC")))
            .collect();
        let delta = delta_from(&entries);
        let frames: Vec<Bytes> = vec![
            wire::encode_weight_reports(&weighted).unwrap(),
            wire::encode_id_reports(&users).unwrap(),
            wire::encode_tagged_weight_reports(&tagged_weights).unwrap(),
            wire::encode_tagged_id_reports(&tagged_ids).unwrap(),
            wire::encode_station_data(station_data).unwrap(),
            wire::encode_batch_broadcast(&sections).unwrap(),
            wire::encode_station_update(&wire::StationUpdate::Delta {
                epoch,
                query_totals: totals.clone(),
                delta,
            })
            .unwrap(),
        ];
        let decoders: Vec<fn(Bytes) -> bool> = vec![
            |b| wire::decode_weight_reports(b).is_err(),
            |b| wire::decode_id_reports(b).is_err(),
            |b| wire::decode_tagged_weight_reports(b).is_err(),
            |b| wire::decode_tagged_id_reports(b).is_err(),
            |b| wire::decode_station_data(b).is_err(),
            |b| wire::decode_batch_broadcast(b).is_err(),
            |b| wire::decode_station_update(b).is_err(),
        ];
        for (frame, rejects) in frames.iter().zip(&decoders) {
            prop_assert!(
                rejects(with_trailing(frame, &garbage)),
                "trailing bytes passed a decoder silently"
            );
        }
    }

    #[test]
    fn station_updates_roundtrip(
        entries in vec((any::<u32>(), any::<u64>()), 0..16),
        epoch in any::<u64>(),
        totals in vec(any::<u64>(), 0..5),
        filter_body in vec(any::<u8>(), 0..40),
    ) {
        let delta = delta_from(&entries);
        let update = wire::StationUpdate::Delta {
            epoch,
            query_totals: totals.clone(),
            delta,
        };
        let encoded = wire::encode_station_update(&update).unwrap();
        prop_assert_eq!(wire::decode_station_update(encoded).unwrap(), update);
        // Full updates treat the filter bytes as the rest-of-buffer field.
        let full = wire::StationUpdate::Full {
            epoch,
            query_totals: totals,
            filter: Bytes::from(filter_body),
        };
        let encoded = wire::encode_station_update(&full).unwrap();
        prop_assert_eq!(wire::decode_station_update(encoded).unwrap(), full);
    }

    #[test]
    fn random_bytes_never_panic_station_update_decoder(raw in vec(any::<u8>(), 0..300)) {
        let _ = wire::decode_station_update(Bytes::from(raw));
    }

    #[test]
    fn truncated_station_updates_error_never_panic(
        entries in vec((any::<u32>(), any::<u64>()), 1..10),
        cut_permille in 0usize..1000,
    ) {
        let update = wire::StationUpdate::Delta {
            epoch: 3,
            query_totals: vec![10, 20],
            delta: delta_from(&entries),
        };
        let encoded = wire::encode_station_update(&update).unwrap();
        let cut = encoded.len() * cut_permille / 1000;
        prop_assume!(cut < encoded.len());
        prop_assert!(wire::decode_station_update(encoded.slice(0..cut)).is_err());
    }

    #[test]
    fn disordered_delta_positions_are_unencodable(
        entries in vec((any::<u32>(), any::<u64>()), 2..10),
    ) {
        // Positions travel as varint gaps, so disorder cannot even be
        // framed: the encoder rejects it outright.
        let mut delta = delta_from(&entries);
        prop_assume!(delta.entries.len() >= 2);
        delta.entries.swap(0, 1);
        let update = wire::StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta,
        };
        prop_assert!(wire::encode_station_update(&update).is_err());
    }

    #[test]
    fn shard_count_mismatches_are_rejected(
        declared in 0u32..64,
        expected in 0u32..64,
        station in 0u32..100,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
    ) {
        let framed = wire::encode_batch_reports(declared, station, tick, Bytes::from(payload.clone()));
        let decoded = wire::decode_batch_reports(framed, expected);
        if declared == expected {
            let frame = decoded.unwrap();
            prop_assert_eq!(frame.station, station);
            prop_assert_eq!(frame.sent_tick, tick);
            prop_assert_eq!(frame.payload.as_ref(), payload.as_slice());
        } else {
            prop_assert!(decoded.is_err());
        }
    }

    #[test]
    fn truncated_report_frames_error_never_panic(
        station in 0u32..16,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
        cut in 0usize..16,
    ) {
        // Cutting anywhere inside the 16-byte latency-stamped header must
        // error cleanly; the payload itself is opaque at this layer.
        let framed = wire::encode_batch_reports(4, station, tick, Bytes::from(payload));
        prop_assert!(wire::decode_batch_reports(framed.slice(0..cut), 4).is_err());
    }

    #[test]
    fn duplicate_station_reports_never_double_count(
        station in 0u32..8,
        tick in 0u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        let mut collector = wire::ReportCollector::new(2, 8);
        let frame = wire::encode_batch_reports(2, station, tick, Bytes::from(payload));
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_ok());
        // A retransmit of the same station's frame — identical or with a
        // fresher tick — must be rejected, so its rows can't be counted
        // twice at the center.
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_err());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(2, station, tick + 1, Bytes::new()), tick + 6)
            .is_err());
        prop_assert_eq!(collector.accepted(), 1);
    }

    #[test]
    fn out_of_order_report_arrivals_are_rejected(
        first in 1u64..1_000_000,
        regression in 1u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        // The center admits frames in modeled delivery order, so a frame
        // delivered at an older tick than its predecessor is a corrupted
        // queue, not in-flight reordering.
        let older = first.saturating_sub(regression);
        prop_assume!(older < first);
        let mut collector = wire::ReportCollector::new(1, 4);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::from(payload)), first)
            .is_ok());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 1, older, Bytes::new()), older)
            .is_err());
        // Equal delivery ticks are fine (zero-latency models stamp 0), and
        // a *send*-tick regression across stations is legal.
        let mut flat = wire::ReportCollector::new(1, 4);
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::new()), first)
            .is_ok());
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 1, 0, Bytes::new()), first)
            .is_ok());
    }

    #[test]
    fn time_traveling_reports_are_rejected(
        sent in 1u64..1_000_000,
        shortfall in 1u64..1_000,
    ) {
        // A frame claiming to be sent after its own delivery is corrupt.
        let delivered = sent.saturating_sub(shortfall);
        prop_assume!(delivered < sent);
        let mut collector = wire::ReportCollector::new(1, 2);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), delivered)
            .is_err());
        prop_assert_eq!(collector.accepted(), 0);
        // Instantaneous delivery (sent == delivered) is legal.
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), sent)
            .is_ok());
    }

    #[test]
    fn collector_survives_random_bytes(
        raw in vec(any::<u8>(), 0..100),
        delivered in 0u64..1_000,
    ) {
        let mut collector = wire::ReportCollector::new(3, 5);
        // Arbitrary bytes must decode cleanly or error — never panic, and
        // never count as an accepted station report unless actually valid.
        let before = collector.accepted();
        if collector.accept(Bytes::from(raw), delivered).is_err() {
            prop_assert_eq!(collector.accepted(), before);
        }
    }
}
