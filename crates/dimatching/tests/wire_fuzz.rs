//! Robustness: the data center must survive arbitrary bytes arriving as
//! station reports or broadcasts — decode cleanly or reject, never panic —
//! and the batch frames must reject structural lies (duplicate query ids,
//! shard-count mismatches, impossible counts) without over-allocating.

use bytes::Bytes;
use dipm_protocol::wire;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_any_decoder(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes.clone());
        let _ = wire::decode_batch_broadcast(bytes.clone());
        let _ = wire::decode_tagged_weight_reports(bytes.clone());
        let _ = wire::decode_tagged_id_reports(bytes.clone());
        for shards in [0u32, 1, 4] {
            let _ = wire::decode_batch_reports(bytes.clone(), shards);
        }
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A malicious station declares a huge entry count with a tiny body;
        // the decoders must reject on length, not trust the count.
        let mut raw = count.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let bytes = Bytes::from(raw);
        prop_assert!(wire::decode_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_id_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_id_reports(bytes.clone()).is_err());
        // Station data and batch frames validate per-entry, so they error
        // once the body runs dry.
        prop_assert!(wire::decode_station_data(bytes.clone()).is_err());
        prop_assert!(wire::decode_batch_broadcast(bytes).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrips(sections in vec(vec(any::<u8>(), 0..40), 0..10)) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged);
        prop_assert_eq!(wire::decode_batch_broadcast(framed).unwrap(), tagged);
    }

    #[test]
    fn truncated_batch_broadcasts_error_never_panic(
        sections in vec(vec(any::<u8>(), 0..40), 1..6),
        cut_permille in 0usize..1000,
    ) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged);
        let cut = framed.len() * cut_permille / 1000;
        prop_assume!(cut < framed.len());
        // Any strict prefix is missing bytes somewhere: decoding must fail
        // cleanly (it may fail on the header or on a section body).
        prop_assert!(wire::decode_batch_broadcast(framed.slice(0..cut)).is_err());
    }

    #[test]
    fn duplicate_query_ids_are_rejected(
        id in any::<u32>(),
        body_a in vec(any::<u8>(), 0..20),
        body_b in vec(any::<u8>(), 0..20),
    ) {
        let framed = wire::encode_batch_broadcast(&[
            (id, Bytes::from(body_a)),
            (id, Bytes::from(body_b)),
        ]);
        prop_assert!(wire::decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn shard_count_mismatches_are_rejected(
        declared in 0u32..64,
        expected in 0u32..64,
        payload in vec(any::<u8>(), 0..60),
    ) {
        let framed = wire::encode_batch_reports(declared, Bytes::from(payload.clone()));
        let decoded = wire::decode_batch_reports(framed, expected);
        if declared == expected {
            prop_assert_eq!(decoded.unwrap().as_ref(), payload.as_slice());
        } else {
            prop_assert!(decoded.is_err());
        }
    }
}
