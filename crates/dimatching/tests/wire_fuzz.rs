//! Robustness: the data center must survive arbitrary bytes arriving as
//! station reports or broadcasts — decode cleanly or reject, never panic —
//! and the batch frames must reject structural lies (duplicate query ids,
//! shard-count mismatches, impossible counts) without over-allocating.

use bytes::Bytes;
use dipm_core::{Weight, WeightDiff, WeightSet};
use dipm_protocol::wire;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random, non-empty, disjoint weight diff derived from a seed.
fn weight_diff(seed: u64) -> WeightDiff {
    let mut removed = WeightSet::new();
    let mut added = WeightSet::new();
    for i in 0..(seed % 3 + 1) {
        let weight = Weight::new(seed % 7 + i + 1, 9).unwrap();
        if (seed + i) % 2 == 0 {
            removed.insert(weight);
        } else {
            added.insert(weight);
        }
    }
    if removed.is_empty() && added.is_empty() {
        added.insert(Weight::ONE);
    }
    WeightDiff { removed, added }
}

/// Builds a structurally valid delta from arbitrary position/diff seeds.
fn delta_from(seeds: &[(u32, u64)]) -> wire::FilterDelta {
    let mut entries: Vec<(u32, WeightDiff)> = seeds
        .iter()
        .map(|&(pos, seed)| (pos, weight_diff(seed)))
        .collect();
    entries.sort_by_key(|&(pos, _)| pos);
    entries.dedup_by_key(|&mut (pos, _)| pos);
    wire::FilterDelta { entries }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_any_decoder(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes.clone());
        let _ = wire::view_filter_broadcast(bytes.clone());
        let _ = wire::view_bloom_section(bytes.clone());
        let _ = wire::decode_batch_broadcast(bytes.clone());
        let _ = wire::decode_tagged_weight_reports(bytes.clone());
        let _ = wire::decode_tagged_id_reports(bytes.clone());
        for shards in [0u32, 1, 4] {
            let _ = wire::decode_batch_reports(bytes.clone(), shards);
        }
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A malicious station declares a huge entry count with a tiny body;
        // the decoders must reject on length, not trust the count.
        let mut raw = count.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let bytes = Bytes::from(raw);
        prop_assert!(wire::decode_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_id_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_id_reports(bytes.clone()).is_err());
        // Station data and batch frames validate per-entry, so they error
        // once the body runs dry.
        prop_assert!(wire::decode_station_data(bytes.clone()).is_err());
        prop_assert!(wire::decode_batch_broadcast(bytes).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrips(sections in vec(vec(any::<u8>(), 0..40), 0..10)) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged).unwrap();
        prop_assert_eq!(wire::decode_batch_broadcast(framed).unwrap(), tagged);
    }

    #[test]
    fn truncated_batch_broadcasts_error_never_panic(
        sections in vec(vec(any::<u8>(), 0..40), 1..6),
        cut_permille in 0usize..1000,
    ) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged).unwrap();
        let cut = framed.len() * cut_permille / 1000;
        prop_assume!(cut < framed.len());
        // Any strict prefix is missing bytes somewhere: decoding must fail
        // cleanly (it may fail on the header or on a section body).
        prop_assert!(wire::decode_batch_broadcast(framed.slice(0..cut)).is_err());
    }

    #[test]
    fn duplicate_query_ids_are_rejected(
        id in any::<u32>(),
        body_a in vec(any::<u8>(), 0..20),
        body_b in vec(any::<u8>(), 0..20),
    ) {
        let framed = wire::encode_batch_broadcast(&[
            (id, Bytes::from(body_a)),
            (id, Bytes::from(body_b)),
        ]).unwrap();
        prop_assert!(wire::decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected_by_every_decoder(
        entries in vec((any::<u32>(), any::<u64>()), 0..12),
        garbage in vec(any::<u8>(), 1..8),
        epoch in any::<u64>(),
        totals in vec(any::<u64>(), 0..4),
    ) {
        // Helper: a valid frame plus junk must error, never pass silently.
        fn with_trailing(valid: &Bytes, garbage: &[u8]) -> Bytes {
            let mut raw = valid.to_vec();
            raw.extend_from_slice(garbage);
            Bytes::from(raw)
        }
        let users: Vec<dipm_mobilenet::UserId> = entries
            .iter()
            .map(|&(q, u)| dipm_mobilenet::UserId(u ^ u64::from(q)))
            .collect();
        let weighted: Vec<(dipm_mobilenet::UserId, Weight)> = users
            .iter()
            .map(|&u| (u, Weight::new(u.0 % 5 + 1, 7).unwrap()))
            .collect();
        let tagged_ids: Vec<(u32, dipm_mobilenet::UserId)> =
            entries.iter().map(|&(q, u)| (q, dipm_mobilenet::UserId(u))).collect();
        let tagged_weights: Vec<(u32, dipm_mobilenet::UserId, Weight)> = entries
            .iter()
            .map(|&(q, u)| (q, dipm_mobilenet::UserId(u), Weight::new(u % 5 + 1, 7).unwrap()))
            .collect();
        let pattern = dipm_timeseries::Pattern::from([1u64, 2, 3]);
        let station_data: Vec<(dipm_mobilenet::UserId, &dipm_timeseries::Pattern)> =
            users.iter().map(|&u| (u, &pattern)).collect();
        let sections: Vec<(u32, Bytes)> = entries
            .iter()
            .enumerate()
            .map(|(i, _)| (i as u32, Bytes::from_static(b"SEC")))
            .collect();
        let delta = delta_from(&entries);
        let frames: Vec<Bytes> = vec![
            wire::encode_weight_reports(&weighted).unwrap(),
            wire::encode_id_reports(&users).unwrap(),
            wire::encode_tagged_weight_reports(&tagged_weights).unwrap(),
            wire::encode_tagged_id_reports(&tagged_ids).unwrap(),
            wire::encode_station_data(station_data).unwrap(),
            wire::encode_batch_broadcast(&sections).unwrap(),
            wire::encode_station_update(&wire::StationUpdate::Delta {
                epoch,
                query_totals: totals.clone(),
                delta,
            })
            .unwrap(),
        ];
        let decoders: Vec<fn(Bytes) -> bool> = vec![
            |b| wire::decode_weight_reports(b).is_err(),
            |b| wire::decode_id_reports(b).is_err(),
            |b| wire::decode_tagged_weight_reports(b).is_err(),
            |b| wire::decode_tagged_id_reports(b).is_err(),
            |b| wire::decode_station_data(b).is_err(),
            |b| wire::decode_batch_broadcast(b).is_err(),
            |b| wire::decode_station_update(b).is_err(),
        ];
        for (frame, rejects) in frames.iter().zip(&decoders) {
            prop_assert!(
                rejects(with_trailing(frame, &garbage)),
                "trailing bytes passed a decoder silently"
            );
        }
    }

    #[test]
    fn station_updates_roundtrip(
        entries in vec((any::<u32>(), any::<u64>()), 0..16),
        epoch in any::<u64>(),
        totals in vec(any::<u64>(), 0..5),
        filter_body in vec(any::<u8>(), 0..40),
    ) {
        let delta = delta_from(&entries);
        let update = wire::StationUpdate::Delta {
            epoch,
            query_totals: totals.clone(),
            delta,
        };
        let encoded = wire::encode_station_update(&update).unwrap();
        prop_assert_eq!(wire::decode_station_update(encoded).unwrap(), update);
        // Full updates treat the filter bytes as the rest-of-buffer field.
        let full = wire::StationUpdate::Full {
            epoch,
            query_totals: totals,
            filter: Bytes::from(filter_body),
        };
        let encoded = wire::encode_station_update(&full).unwrap();
        prop_assert_eq!(wire::decode_station_update(encoded).unwrap(), full);
    }

    #[test]
    fn random_bytes_never_panic_station_update_decoder(raw in vec(any::<u8>(), 0..300)) {
        let _ = wire::decode_station_update(Bytes::from(raw));
    }

    #[test]
    fn truncated_station_updates_error_never_panic(
        entries in vec((any::<u32>(), any::<u64>()), 1..10),
        cut_permille in 0usize..1000,
    ) {
        let update = wire::StationUpdate::Delta {
            epoch: 3,
            query_totals: vec![10, 20],
            delta: delta_from(&entries),
        };
        let encoded = wire::encode_station_update(&update).unwrap();
        let cut = encoded.len() * cut_permille / 1000;
        prop_assume!(cut < encoded.len());
        prop_assert!(wire::decode_station_update(encoded.slice(0..cut)).is_err());
    }

    #[test]
    fn disordered_delta_positions_are_unencodable(
        entries in vec((any::<u32>(), any::<u64>()), 2..10),
    ) {
        // Positions travel as varint gaps, so disorder cannot even be
        // framed: the encoder rejects it outright.
        let mut delta = delta_from(&entries);
        prop_assume!(delta.entries.len() >= 2);
        delta.entries.swap(0, 1);
        let update = wire::StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta,
        };
        prop_assert!(wire::encode_station_update(&update).is_err());
    }

    #[test]
    fn shard_count_mismatches_are_rejected(
        declared in 0u32..64,
        expected in 0u32..64,
        station in 0u32..100,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
    ) {
        let framed = wire::encode_batch_reports(declared, station, tick, Bytes::from(payload.clone()));
        let decoded = wire::decode_batch_reports(framed, expected);
        if declared == expected {
            let frame = decoded.unwrap();
            prop_assert_eq!(frame.station, station);
            prop_assert_eq!(frame.sent_tick, tick);
            prop_assert_eq!(frame.payload.as_ref(), payload.as_slice());
        } else {
            prop_assert!(decoded.is_err());
        }
    }

    #[test]
    fn truncated_report_frames_error_never_panic(
        station in 0u32..16,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
        cut in 0usize..16,
    ) {
        // Cutting anywhere inside the 16-byte latency-stamped header must
        // error cleanly; the payload itself is opaque at this layer.
        let framed = wire::encode_batch_reports(4, station, tick, Bytes::from(payload));
        prop_assert!(wire::decode_batch_reports(framed.slice(0..cut), 4).is_err());
    }

    #[test]
    fn duplicate_station_reports_never_double_count(
        station in 0u32..8,
        tick in 0u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        let mut collector = wire::ReportCollector::new(2, 8);
        let frame = wire::encode_batch_reports(2, station, tick, Bytes::from(payload));
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_ok());
        // A retransmit of the same station's frame — identical or with a
        // fresher tick — must be rejected, so its rows can't be counted
        // twice at the center.
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_err());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(2, station, tick + 1, Bytes::new()), tick + 6)
            .is_err());
        prop_assert_eq!(collector.accepted(), 1);
    }

    #[test]
    fn out_of_order_report_arrivals_are_rejected(
        first in 1u64..1_000_000,
        regression in 1u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        // The center admits frames in modeled delivery order, so a frame
        // delivered at an older tick than its predecessor is a corrupted
        // queue, not in-flight reordering.
        let older = first.saturating_sub(regression);
        prop_assume!(older < first);
        let mut collector = wire::ReportCollector::new(1, 4);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::from(payload)), first)
            .is_ok());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 1, older, Bytes::new()), older)
            .is_err());
        // Equal delivery ticks are fine (zero-latency models stamp 0), and
        // a *send*-tick regression across stations is legal.
        let mut flat = wire::ReportCollector::new(1, 4);
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::new()), first)
            .is_ok());
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 1, 0, Bytes::new()), first)
            .is_ok());
    }

    #[test]
    fn time_traveling_reports_are_rejected(
        sent in 1u64..1_000_000,
        shortfall in 1u64..1_000,
    ) {
        // A frame claiming to be sent after its own delivery is corrupt.
        let delivered = sent.saturating_sub(shortfall);
        prop_assume!(delivered < sent);
        let mut collector = wire::ReportCollector::new(1, 2);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), delivered)
            .is_err());
        prop_assert_eq!(collector.accepted(), 0);
        // Instantaneous delivery (sent == delivered) is legal.
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), sent)
            .is_ok());
    }

    #[test]
    fn collector_survives_random_bytes(
        raw in vec(any::<u8>(), 0..100),
        delivered in 0u64..1_000,
    ) {
        let mut collector = wire::ReportCollector::new(3, 5);
        // Arbitrary bytes must decode cleanly or error — never panic, and
        // never count as an accepted station report unless actually valid.
        let before = collector.accepted();
        if collector.accept(Bytes::from(raw), delivered).is_err() {
            prop_assert_eq!(collector.accepted(), before);
        }
    }
}

/// The owned WBF broadcast decode path, with its error rendered to a
/// string so rejection *messages* can be compared against the view path.
fn owned_wbf_decode(bytes: Bytes) -> std::result::Result<(), String> {
    let (_totals, filter_bytes) =
        wire::decode_filter_broadcast(bytes).map_err(|e| e.to_string())?;
    dipm_core::encode::decode_wbf(filter_bytes)
        .map(|_| ())
        .map_err(|e| dipm_protocol::ProtocolError::from(e).to_string())
}

/// The zero-copy view decode path, same error rendering.
fn view_wbf_decode(bytes: Bytes) -> std::result::Result<(), String> {
    wire::view_filter_broadcast(bytes)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The zero-copy view decoder must accept exactly the frames the owned
    // decoder accepts and reject exactly what it rejects — with identical
    // error messages — across truncation at every offset, trailing bytes,
    // and hostile declared counts. A frame the view would admit but the
    // owned path refuses (or vice versa) would let stations disagree about
    // a broadcast's validity.
    #[test]
    fn view_and_owned_wbf_broadcast_decode_agree_on_every_mutation(
        inserts in vec((any::<u64>(), 1u64..6), 1..24),
        totals in vec(any::<u64>(), 0..4),
        garbage in vec(any::<u8>(), 1..8),
        huge in 1_000u32..u32::MAX,
    ) {
        let params = dipm_core::FilterParams::new(1 << 10, 4).unwrap();
        let mut wbf = dipm_core::WeightedBloomFilter::new(params, 7);
        for &(key, den) in &inserts {
            wbf.insert(key, Weight::new(1, den).unwrap());
        }
        let frame = wire::encode_filter_broadcast(
            &totals,
            dipm_core::encode::encode_wbf(&wbf).unwrap(),
        )
        .unwrap();

        // The intact frame: both paths accept.
        prop_assert_eq!(owned_wbf_decode(frame.clone()), Ok(()));
        prop_assert_eq!(view_wbf_decode(frame.clone()), Ok(()));

        // Every strict prefix: both paths reject, with the same message.
        for cut in 0..frame.len() {
            let truncated = frame.slice(0..cut);
            let owned = owned_wbf_decode(truncated.clone());
            let view = view_wbf_decode(truncated);
            prop_assert!(owned.is_err(), "owned path accepted a {cut}-byte prefix");
            prop_assert_eq!(&view, &owned, "rejection mismatch at cut {}", cut);
        }

        // Trailing garbage after the filter payload: same rejection.
        let mut raw = frame.to_vec();
        raw.extend_from_slice(&garbage);
        let trailing = Bytes::from(raw);
        let owned = owned_wbf_decode(trailing.clone());
        prop_assert!(owned.is_err(), "owned path accepted trailing bytes");
        prop_assert_eq!(view_wbf_decode(trailing), owned);

        // A hostile declared count with a tiny body: both reject on length
        // (neither may trust the count into an allocation).
        let mut raw = huge.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let hostile = Bytes::from(raw);
        let owned = owned_wbf_decode(hostile.clone());
        prop_assert!(owned.is_err(), "owned path accepted a hostile count");
        prop_assert_eq!(view_wbf_decode(hostile), owned);
    }
}

/// A populated summary filter for routing-frame fuzzing.
fn summary_filter(keys: &[u64], seed: u64) -> dipm_core::BloomFilter {
    let params = dipm_core::FilterParams::new(1 << 10, 3).unwrap();
    let mut filter = dipm_core::BloomFilter::new(params, seed);
    for &key in keys {
        filter.insert(key);
    }
    filter
}

/// A structurally valid routed-probes target list inside `[lo, hi)`:
/// strictly ascending station ids derived from arbitrary offsets.
fn targets_in(lo: u32, span: u32, offsets: &[u32]) -> Vec<u32> {
    let mut targets: Vec<u32> = offsets.iter().map(|&o| lo + o % span.max(1)).collect();
    targets.sort_unstable();
    targets.dedup();
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_routing_decoders(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_routing_summary(bytes.clone());
        let _ = wire::decode_routed_probes(bytes);
    }

    #[test]
    fn routing_frames_roundtrip(
        keys in vec(any::<u64>(), 0..40),
        seed in any::<u64>(),
        station in any::<u32>(),
        lo in 0u32..1_000,
        span in 1u32..64,
        offsets in vec(any::<u32>(), 0..32),
    ) {
        let filter = summary_filter(&keys, seed);
        let framed = wire::encode_routing_summary(station, &filter);
        let (decoded_station, decoded_filter) = wire::decode_routing_summary(framed).unwrap();
        prop_assert_eq!(decoded_station, station);
        prop_assert_eq!(decoded_filter, filter);

        let targets = targets_in(lo, span, &offsets);
        let framed = wire::encode_routed_probes(lo, lo + span, &targets).unwrap();
        let probes = wire::decode_routed_probes(framed).unwrap();
        prop_assert_eq!((probes.lo, probes.hi), (lo, lo + span));
        prop_assert_eq!(probes.targets, targets);
    }

    #[test]
    fn truncated_routing_frames_error_never_panic(
        keys in vec(any::<u64>(), 1..20),
        lo in 0u32..100,
        span in 1u32..16,
        offsets in vec(any::<u32>(), 1..16),
        cut_permille in 0usize..1000,
    ) {
        // Any strict prefix — including cuts inside the fixed headers —
        // must error cleanly, never panic or mis-decode.
        let summary = wire::encode_routing_summary(7, &summary_filter(&keys, 3));
        let cut = summary.len() * cut_permille / 1000;
        prop_assert!(wire::decode_routing_summary(summary.slice(0..cut)).is_err());

        let targets = targets_in(lo, span, &offsets);
        let probes = wire::encode_routed_probes(lo, lo + span, &targets).unwrap();
        let cut = probes.len() * cut_permille / 1000;
        prop_assume!(cut < probes.len());
        prop_assert!(wire::decode_routed_probes(probes.slice(0..cut)).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_on_routing_frames(
        keys in vec(any::<u64>(), 0..20),
        lo in 0u32..100,
        span in 1u32..16,
        offsets in vec(any::<u32>(), 0..16),
        garbage in vec(any::<u8>(), 1..8),
    ) {
        let mut raw = wire::encode_routing_summary(1, &summary_filter(&keys, 9)).to_vec();
        raw.extend_from_slice(&garbage);
        prop_assert!(wire::decode_routing_summary(Bytes::from(raw)).is_err());

        let targets = targets_in(lo, span, &offsets);
        let mut raw = wire::encode_routed_probes(lo, lo + span, &targets).unwrap().to_vec();
        raw.extend_from_slice(&garbage);
        prop_assert!(wire::decode_routed_probes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn duplicate_station_ids_are_rejected_by_encoder_and_decoder(
        lo in 0u32..100,
        span in 1u32..16,
        offset in any::<u32>(),
    ) {
        let station = lo + offset % span;
        // The encoder refuses to frame a duplicated target...
        prop_assert!(wire::encode_routed_probes(lo, lo + span, &[station, station]).is_err());
        // ...and the decoder rejects a hand-built frame carrying one.
        let mut raw = Vec::new();
        raw.extend_from_slice(&lo.to_le_bytes());
        raw.extend_from_slice(&(lo + span).to_le_bytes());
        raw.extend_from_slice(&2u32.to_le_bytes());
        raw.extend_from_slice(&station.to_le_bytes());
        raw.extend_from_slice(&station.to_le_bytes());
        prop_assert!(wire::decode_routed_probes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn huge_routed_probe_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A frame claiming `count` targets inside a one-station range with
        // a tiny body: rejected on the range bound before any allocation.
        let mut raw = Vec::new();
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&count.to_le_bytes());
        raw.extend_from_slice(&[0u8; 8]);
        prop_assert!(wire::decode_routed_probes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn overlapping_subtree_claims_are_rejected(
        lo in 0u32..50,
        span_a in 1u32..16,
        overlap in 0u32..16,
        span_b in 1u32..16,
    ) {
        let station_count = 200u32;
        // Two claims sharing leaf range: the second must be rejected and
        // leave the plan's accepted targets untouched.
        let a = wire::decode_routed_probes(
            wire::encode_routed_probes(lo, lo + span_a, &[lo]).unwrap()
        ).unwrap();
        let b_lo = lo + overlap % span_a; // starts inside a's range
        let b = wire::decode_routed_probes(
            wire::encode_routed_probes(b_lo, b_lo + span_b, &[b_lo]).unwrap()
        ).unwrap();
        let mut plan = wire::RoutingPlan::new(station_count);
        plan.claim(&a).unwrap();
        prop_assert!(plan.claim(&b).is_err());
        // A disjoint claim is still welcome afterwards.
        let c_lo = lo + span_a.max(b_lo + span_b - lo);
        let c = wire::decode_routed_probes(
            wire::encode_routed_probes(c_lo, c_lo + 1, &[c_lo]).unwrap()
        ).unwrap();
        plan.claim(&c).unwrap();
        prop_assert_eq!(plan.into_targets(), vec![lo, c_lo]);
        // Claims past the deployment edge are structural lies.
        let edge = wire::decode_routed_probes(
            wire::encode_routed_probes(station_count - 1, station_count + 1,
                &[station_count - 1]).unwrap()
        ).unwrap();
        prop_assert!(wire::RoutingPlan::new(station_count).claim(&edge).is_err());
    }
}

/// A structurally valid session checkpoint derived from arbitrary seeds:
/// ascending ids/positions, nonzero counts, stations consistent with the
/// epoch.
fn checkpoint_from(
    epoch: u64,
    query_seeds: &[u64],
    position_seeds: &[u32],
    station_count: usize,
) -> wire::SessionCheckpoint {
    let bits = 1u64 << 12;
    let mut ids: Vec<u64> = query_seeds.iter().map(|&s| s % 500).collect();
    ids.sort_unstable();
    ids.dedup();
    let queries: Vec<wire::CheckpointQuery> = ids
        .iter()
        .map(|&id| wire::CheckpointQuery {
            id,
            total: id + 1,
            combinations: id % 7,
            pairs: vec![(id * 31, Weight::new(id % 5 + 1, 9).unwrap())],
        })
        .collect();
    let mut positions: Vec<u32> = position_seeds.iter().map(|&p| p % (bits as u32)).collect();
    positions.sort_unstable();
    positions.dedup();
    let counts: Vec<(u32, Vec<(Weight, u32)>)> = positions
        .iter()
        .map(|&pos| {
            (
                pos,
                vec![(Weight::new(pos as u64 % 6 + 1, 11).unwrap(), pos + 1)],
            )
        })
        .collect();
    let baselines: Vec<(u32, WeightSet)> = positions
        .iter()
        .map(|&pos| {
            let mut set = WeightSet::new();
            if pos % 2 == 0 {
                set.insert(Weight::new(pos as u64 % 6 + 1, 11).unwrap());
            }
            (pos, set)
        })
        .collect();
    let stations: Vec<wire::CheckpointStation> = (0..station_count)
        .map(|i| {
            let has_filter = epoch > 0 && i % 3 != 2;
            wire::CheckpointStation {
                has_filter,
                applied_epoch: if has_filter {
                    epoch.saturating_sub(1)
                } else {
                    0
                },
            }
        })
        .collect();
    wire::SessionCheckpoint {
        epoch,
        clock_base: epoch * 100,
        needs_full: epoch == 0,
        bits,
        hashes: 4,
        seed: 0xFEED,
        next_id: 500,
        queries,
        counts,
        baselines,
        stations,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_checkpoint_decoders(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_session_checkpoint(bytes.clone());
        let _ = wire::decode_service_checkpoint(bytes);
    }

    #[test]
    fn session_checkpoints_roundtrip(
        epoch in 0u64..50,
        query_seeds in vec(any::<u64>(), 0..12),
        position_seeds in vec(any::<u32>(), 0..16),
        station_count in 0usize..12,
    ) {
        let checkpoint = checkpoint_from(epoch, &query_seeds, &position_seeds, station_count);
        let framed = wire::encode_session_checkpoint(&checkpoint).unwrap();
        prop_assert_eq!(wire::decode_session_checkpoint(framed).unwrap(), checkpoint);
    }

    #[test]
    fn truncated_checkpoints_error_never_panic(
        epoch in 0u64..50,
        query_seeds in vec(any::<u64>(), 1..8),
        position_seeds in vec(any::<u32>(), 1..8),
        cut_permille in 0usize..1000,
    ) {
        // Any strict prefix — cuts inside the 48-byte fixed header
        // included — must error cleanly, never panic or mis-decode.
        let checkpoint = checkpoint_from(epoch, &query_seeds, &position_seeds, 4);
        let framed = wire::encode_session_checkpoint(&checkpoint).unwrap();
        let cut = framed.len() * cut_permille / 1000;
        prop_assume!(cut < framed.len());
        prop_assert!(wire::decode_session_checkpoint(framed.slice(0..cut)).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_on_checkpoint_frames(
        epoch in 0u64..50,
        query_seeds in vec(any::<u64>(), 0..8),
        garbage in vec(any::<u8>(), 1..8),
    ) {
        let checkpoint = checkpoint_from(epoch, &query_seeds, &[3, 9], 3);
        let mut raw = wire::encode_session_checkpoint(&checkpoint).unwrap().to_vec();
        raw.extend_from_slice(&garbage);
        prop_assert!(wire::decode_session_checkpoint(Bytes::from(raw)).is_err());

        let session = wire::encode_session_checkpoint(&checkpoint).unwrap();
        let mut raw = wire::encode_service_checkpoint(&[(1, session)]).unwrap().to_vec();
        raw.extend_from_slice(&garbage);
        prop_assert!(wire::decode_service_checkpoint(Bytes::from(raw)).is_err());
    }

    #[test]
    fn station_epoch_regressions_are_rejected(
        epoch in 0u64..50,
        excess in 1u64..100,
        station in 0usize..4,
    ) {
        // A station claiming to have applied an epoch the center has not
        // yet run is a regression of the *center's* recorded epoch: the
        // checkpoint cannot be older than the stations it produced.
        let mut checkpoint = checkpoint_from(epoch.max(1), &[1, 2], &[5], 4);
        checkpoint.stations[station] = wire::CheckpointStation {
            has_filter: true,
            applied_epoch: checkpoint.epoch + excess,
        };
        prop_assert!(wire::encode_session_checkpoint(&checkpoint).is_err());
    }

    #[test]
    fn huge_declared_checkpoint_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A frame declaring `count` queries/positions/tenants with a tiny
        // body must be rejected on length before any allocation.
        let checkpoint = checkpoint_from(1, &[1], &[2], 2);
        let framed = wire::encode_session_checkpoint(&checkpoint).unwrap();
        // The query count sits right after the 48-byte fixed header.
        let mut raw = framed.to_vec();
        raw[48..52].copy_from_slice(&count.to_le_bytes());
        raw.truncate(60);
        prop_assert!(wire::decode_session_checkpoint(Bytes::from(raw)).is_err());

        // Service wrapper: magic + version + count, then nothing.
        let mut raw = wire::encode_service_checkpoint(&[]).unwrap().to_vec();
        let at = raw.len() - 4;
        raw[at..].copy_from_slice(&count.to_le_bytes());
        prop_assert!(wire::decode_service_checkpoint(Bytes::from(raw)).is_err());
    }

    #[test]
    fn duplicate_tenant_ids_are_rejected_by_encoder_and_decoder(
        tenant in any::<u64>(),
        body in vec(any::<u8>(), 0..16),
    ) {
        let frames = vec![
            (tenant, Bytes::from(body.clone())),
            (tenant, Bytes::from(body.clone())),
        ];
        // The encoder refuses to frame a duplicated tenant...
        prop_assert!(wire::encode_service_checkpoint(&frames).is_err());
        // ...and the decoder rejects a hand-built frame carrying one.
        let single = wire::encode_service_checkpoint(&[(tenant, Bytes::from(body.clone()))])
            .unwrap()
            .to_vec();
        let mut raw = single.clone();
        // Bump the tenant count from 1 to 2 (it sits after magic+version)
        // and append the same tenant entry again.
        raw[5..9].copy_from_slice(&2u32.to_le_bytes());
        raw.extend_from_slice(&single[9..]);
        prop_assert!(wire::decode_service_checkpoint(Bytes::from(raw)).is_err());
    }

    #[test]
    fn service_checkpoints_roundtrip(
        tenant_seeds in vec((any::<u64>(), vec(any::<u8>(), 0..24)), 0..8),
    ) {
        let mut frames: Vec<(u64, Bytes)> = tenant_seeds
            .into_iter()
            .map(|(id, body)| (id, Bytes::from(body)))
            .collect();
        frames.sort_by_key(|&(id, _)| id);
        frames.dedup_by_key(|&mut (id, _)| id);
        let encoded = wire::encode_service_checkpoint(&frames).unwrap();
        prop_assert_eq!(wire::decode_service_checkpoint(encoded).unwrap(), frames);
    }
}
