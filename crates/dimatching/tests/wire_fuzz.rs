//! Robustness: the data center must survive arbitrary bytes arriving as
//! station reports or broadcasts — decode cleanly or reject, never panic —
//! and the batch frames must reject structural lies (duplicate query ids,
//! shard-count mismatches, impossible counts) without over-allocating.

use bytes::Bytes;
use dipm_protocol::wire;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_any_decoder(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes.clone());
        let _ = wire::decode_batch_broadcast(bytes.clone());
        let _ = wire::decode_tagged_weight_reports(bytes.clone());
        let _ = wire::decode_tagged_id_reports(bytes.clone());
        for shards in [0u32, 1, 4] {
            let _ = wire::decode_batch_reports(bytes.clone(), shards);
        }
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A malicious station declares a huge entry count with a tiny body;
        // the decoders must reject on length, not trust the count.
        let mut raw = count.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let bytes = Bytes::from(raw);
        prop_assert!(wire::decode_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_id_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_tagged_id_reports(bytes.clone()).is_err());
        // Station data and batch frames validate per-entry, so they error
        // once the body runs dry.
        prop_assert!(wire::decode_station_data(bytes.clone()).is_err());
        prop_assert!(wire::decode_batch_broadcast(bytes).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrips(sections in vec(vec(any::<u8>(), 0..40), 0..10)) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged);
        prop_assert_eq!(wire::decode_batch_broadcast(framed).unwrap(), tagged);
    }

    #[test]
    fn truncated_batch_broadcasts_error_never_panic(
        sections in vec(vec(any::<u8>(), 0..40), 1..6),
        cut_permille in 0usize..1000,
    ) {
        let tagged: Vec<(u32, Bytes)> = sections
            .into_iter()
            .enumerate()
            .map(|(i, body)| (i as u32, Bytes::from(body)))
            .collect();
        let framed = wire::encode_batch_broadcast(&tagged);
        let cut = framed.len() * cut_permille / 1000;
        prop_assume!(cut < framed.len());
        // Any strict prefix is missing bytes somewhere: decoding must fail
        // cleanly (it may fail on the header or on a section body).
        prop_assert!(wire::decode_batch_broadcast(framed.slice(0..cut)).is_err());
    }

    #[test]
    fn duplicate_query_ids_are_rejected(
        id in any::<u32>(),
        body_a in vec(any::<u8>(), 0..20),
        body_b in vec(any::<u8>(), 0..20),
    ) {
        let framed = wire::encode_batch_broadcast(&[
            (id, Bytes::from(body_a)),
            (id, Bytes::from(body_b)),
        ]);
        prop_assert!(wire::decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn shard_count_mismatches_are_rejected(
        declared in 0u32..64,
        expected in 0u32..64,
        station in 0u32..100,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
    ) {
        let framed = wire::encode_batch_reports(declared, station, tick, Bytes::from(payload.clone()));
        let decoded = wire::decode_batch_reports(framed, expected);
        if declared == expected {
            let frame = decoded.unwrap();
            prop_assert_eq!(frame.station, station);
            prop_assert_eq!(frame.sent_tick, tick);
            prop_assert_eq!(frame.payload.as_ref(), payload.as_slice());
        } else {
            prop_assert!(decoded.is_err());
        }
    }

    #[test]
    fn truncated_report_frames_error_never_panic(
        station in 0u32..16,
        tick in 0u64..1_000_000,
        payload in vec(any::<u8>(), 0..60),
        cut in 0usize..16,
    ) {
        // Cutting anywhere inside the 16-byte latency-stamped header must
        // error cleanly; the payload itself is opaque at this layer.
        let framed = wire::encode_batch_reports(4, station, tick, Bytes::from(payload));
        prop_assert!(wire::decode_batch_reports(framed.slice(0..cut), 4).is_err());
    }

    #[test]
    fn duplicate_station_reports_never_double_count(
        station in 0u32..8,
        tick in 0u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        let mut collector = wire::ReportCollector::new(2, 8);
        let frame = wire::encode_batch_reports(2, station, tick, Bytes::from(payload));
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_ok());
        // A retransmit of the same station's frame — identical or with a
        // fresher tick — must be rejected, so its rows can't be counted
        // twice at the center.
        prop_assert!(collector.accept(frame.clone(), tick + 5).is_err());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(2, station, tick + 1, Bytes::new()), tick + 6)
            .is_err());
        prop_assert_eq!(collector.accepted(), 1);
    }

    #[test]
    fn out_of_order_report_arrivals_are_rejected(
        first in 1u64..1_000_000,
        regression in 1u64..1_000,
        payload in vec(any::<u8>(), 0..40),
    ) {
        // The center admits frames in modeled delivery order, so a frame
        // delivered at an older tick than its predecessor is a corrupted
        // queue, not in-flight reordering.
        let older = first.saturating_sub(regression);
        prop_assume!(older < first);
        let mut collector = wire::ReportCollector::new(1, 4);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::from(payload)), first)
            .is_ok());
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 1, older, Bytes::new()), older)
            .is_err());
        // Equal delivery ticks are fine (zero-latency models stamp 0), and
        // a *send*-tick regression across stations is legal.
        let mut flat = wire::ReportCollector::new(1, 4);
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 0, older, Bytes::new()), first)
            .is_ok());
        prop_assert!(flat
            .accept(wire::encode_batch_reports(1, 1, 0, Bytes::new()), first)
            .is_ok());
    }

    #[test]
    fn time_traveling_reports_are_rejected(
        sent in 1u64..1_000_000,
        shortfall in 1u64..1_000,
    ) {
        // A frame claiming to be sent after its own delivery is corrupt.
        let delivered = sent.saturating_sub(shortfall);
        prop_assume!(delivered < sent);
        let mut collector = wire::ReportCollector::new(1, 2);
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), delivered)
            .is_err());
        prop_assert_eq!(collector.accepted(), 0);
        // Instantaneous delivery (sent == delivered) is legal.
        prop_assert!(collector
            .accept(wire::encode_batch_reports(1, 0, sent, Bytes::new()), sent)
            .is_ok());
    }

    #[test]
    fn collector_survives_random_bytes(
        raw in vec(any::<u8>(), 0..100),
        delivered in 0u64..1_000,
    ) {
        let mut collector = wire::ReportCollector::new(3, 5);
        // Arbitrary bytes must decode cleanly or error — never panic, and
        // never count as an accepted station report unless actually valid.
        let before = collector.accepted();
        if collector.accept(Bytes::from(raw), delivered).is_err() {
            prop_assert_eq!(collector.accepted(), before);
        }
    }
}
