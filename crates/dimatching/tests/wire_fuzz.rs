//! Robustness: the data center must survive arbitrary bytes arriving as
//! station reports or broadcasts — decode cleanly or reject, never panic.

use bytes::Bytes;
use dipm_protocol::wire;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic_any_decoder(raw in vec(any::<u8>(), 0..400)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes);
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_allocated(count in 1_000u32..u32::MAX) {
        // A malicious station declares a huge entry count with a tiny body;
        // the decoders must reject on length, not trust the count.
        let mut raw = count.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0u8; 16]);
        let bytes = Bytes::from(raw);
        prop_assert!(wire::decode_weight_reports(bytes.clone()).is_err());
        prop_assert!(wire::decode_id_reports(bytes.clone()).is_err());
        // Station data validates per-entry, so it errors once the body runs dry.
        prop_assert!(wire::decode_station_data(bytes).is_err());
    }
}
