//! Demonstrates the scan hot path's allocation contract: once the per-shard
//! scratch (report vector, key buffer, probe scratch) is set up, probing a
//! (row × section) pair allocates **nothing** on the miss-dominated path.
//!
//! A counting global allocator measures whole `scan_shard_wbf` calls over
//! shards of different sizes: the allocation count must not grow with
//! `rows × sections` — it stays at the fixed per-call setup cost.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dipm_core::WbfFrameView;
use dipm_mobilenet::UserId;
use dipm_protocol::{
    build_wbf, scan_shard_wbf, wire, DiMatchingConfig, PatternQuery, WbfScanFilter, WbfScanSection,
};
use dipm_timeseries::Pattern;

/// `System` wrapped with an allocation counter; frees are not counted —
/// the contract is about *new* heap traffic on the probe path.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic pattern per row, far from the inserted query's values so
/// rows are (overwhelmingly) membership misses.
fn miss_pattern(row: u64) -> Pattern {
    (0..16u64).map(|i| 10_000 + row * 97 + i * 13).collect()
}

fn query() -> PatternQuery {
    PatternQuery::from_locals(vec![
        Pattern::from([1u64, 2, 3, 1, 0, 2, 4, 1, 3, 2, 1, 0, 2, 1, 3, 2]),
        Pattern::from([2u64, 2, 2, 0, 1, 3, 0, 2, 1, 1, 2, 3, 0, 2, 1, 1]),
    ])
    .expect("valid query")
}

fn measure_scan<F: WbfScanFilter>(
    sections: &[WbfScanSection<'_, F>],
    rows: usize,
    config: &DiMatchingConfig,
) -> u64 {
    let patterns: Vec<(UserId, Pattern)> = (0..rows as u64)
        .map(|r| (UserId(r), miss_pattern(r)))
        .collect();
    let shard: Vec<(UserId, &Pattern)> = patterns.iter().map(|(u, p)| (*u, p)).collect();
    // Warm-up: first call sizes any lazily grown buffer inside the call's
    // own scratch; the measured call then shows the steady-state cost.
    scan_shard_wbf(sections, &shard, config, None).expect("scan runs");
    let before = allocations();
    let reports = scan_shard_wbf(sections, &shard, config, None).expect("scan runs");
    let after = allocations();
    assert!(reports.is_empty(), "rows are built to miss");
    after - before
}

#[test]
fn scan_allocations_do_not_grow_with_rows_or_sections() {
    let config = DiMatchingConfig::default();
    let built = build_wbf(&[query()], &config).expect("filter builds");
    let one_section: Vec<WbfScanSection<'_>> =
        vec![(0, &built.filter, built.query_totals.as_slice())];
    let four_sections: Vec<WbfScanSection<'_>> = (0..4)
        .map(|i| (i as u32, &built.filter, built.query_totals.as_slice()))
        .collect();

    let small = measure_scan(&one_section, 64, &config);
    let wide = measure_scan(&four_sections, 64, &config);
    let tall = measure_scan(&one_section, 1024, &config);
    let huge = measure_scan(&four_sections, 1024, &config);

    // Per call: the report vector, the key buffer and (at most once, when
    // some row survives the membership check and forces an owned
    // intersection) the probe scratch's capacity — a fixed setup cost,
    // nothing per probed (row × section) pair.
    assert!(
        small <= 8,
        "per-call setup should be a handful of allocations, got {small}"
    );
    assert!(
        tall <= small + 1,
        "16× the rows may at most warm the probe scratch once: {small} -> {tall}"
    );
    assert_eq!(
        small, wide,
        "4× the sections must not add allocations (probe path is alloc-free)"
    );
    assert_eq!(
        tall, huge,
        "4× the sections over 16× the rows must stay at the setup cost"
    );
}

#[test]
fn zero_copy_wire_view_scan_holds_the_same_allocation_contract() {
    // The station-side hot path: sections opened as zero-copy frame views
    // straight from received broadcast bytes. Once the views exist, the
    // per-(row × section) probe must allocate nothing, exactly like the
    // owned-filter path above.
    let config = DiMatchingConfig::default();
    let built = build_wbf(&[query()], &config).expect("filter builds");
    let frame = wire::encode_filter_broadcast(
        &built.query_totals,
        dipm_core::encode::encode_wbf(&built.filter).expect("filter encodes"),
    )
    .expect("broadcast frames");
    let views: Vec<wire::WbfSectionView> = (0..4)
        .map(|_| wire::view_filter_broadcast(frame.clone()).expect("broadcast views"))
        .collect();
    let one_section: Vec<WbfScanSection<'_, WbfFrameView>> =
        vec![(0, &views[0].filter, views[0].query_totals.as_slice())];
    let four_sections: Vec<WbfScanSection<'_, WbfFrameView>> = views
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u32, &v.filter, v.query_totals.as_slice()))
        .collect();

    let small = measure_scan(&one_section, 64, &config);
    let wide = measure_scan(&four_sections, 64, &config);
    let tall = measure_scan(&one_section, 1024, &config);
    let huge = measure_scan(&four_sections, 1024, &config);

    assert!(
        small <= 8,
        "per-call setup should be a handful of allocations, got {small}"
    );
    assert!(
        tall <= small + 1,
        "16× the rows may at most warm the probe scratch once: {small} -> {tall}"
    );
    assert_eq!(
        small, wide,
        "4× the view sections must not add allocations (probe path is alloc-free)"
    );
    assert_eq!(
        tall, huge,
        "4× the view sections over 16× the rows must stay at the setup cost"
    );
}
