//! Property-based tests for the DI-matching protocol.

use dipm_core::Weight;
use dipm_mobilenet::UserId;
use dipm_protocol::{
    aggregate_and_rank, build_wbf, scan_station, wire, DiMatchingConfig, HashScheme, PatternQuery,
    Shards,
};
use dipm_timeseries::{eps_match, Pattern};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_locals() -> impl Strategy<Value = Vec<Pattern>> {
    vec(vec(0u64..60, 6usize..7), 1..4).prop_map(|vs| vs.into_iter().map(Pattern::new).collect())
}

fn small_config() -> DiMatchingConfig {
    DiMatchingConfig {
        samples: 6,
        eps: 2,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The protocol's cornerstone guarantee: any pattern within ε of a
    // query combination is reported by the station scan (no false
    // negatives), for both hash schemes.
    #[test]
    fn station_scan_has_no_false_negatives(
        locals in arb_locals(),
        deltas in vec(-2i64..=2, 6usize..7),
        combo_pick in any::<u8>(),
        position_tagged in any::<bool>(),
    ) {
        prop_assume!(Pattern::sum(locals.iter()).unwrap().total().unwrap() > 0);
        let query = PatternQuery::from_locals(locals.clone()).unwrap();
        let mut config = small_config();
        if position_tagged {
            config.hash_scheme = HashScheme::PositionTagged;
        }
        let built = build_wbf(&[query], &config).unwrap();

        // Pick one combination and perturb it within ε.
        let combos = dipm_timeseries::enumerate_combinations(&locals).unwrap();
        let combo = &combos[combo_pick as usize % combos.len()];
        let candidate: Pattern = combo
            .pattern
            .iter()
            .zip(&deltas)
            .map(|(v, &d)| v.saturating_add_signed(d))
            .collect();
        prop_assume!(eps_match(&candidate, &combo.pattern, config.eps));
        prop_assume!(combo.pattern.total().unwrap() > 0);

        let station: BTreeMap<UserId, Pattern> =
            [(UserId(1), candidate)].into_iter().collect();
        let reports = scan_station(&built.filter, &built.query_totals, &station, &config, None).unwrap();
        prop_assert_eq!(reports.len(), 1, "ε-similar candidate must be reported");
    }

    // Aggregation invariants: output sorted by descending weight, no entry
    // above 1, no zero entries, top-k respected.
    #[test]
    fn aggregation_invariants(
        raw in vec((0u64..20, 1u64..30, 1u64..30), 0..60),
        k in 1usize..10,
    ) {
        let reports: Vec<(UserId, Weight)> = raw
            .iter()
            .map(|&(id, a, b)| (UserId(id), Weight::new(a.min(b), b.max(a)).unwrap()))
            .collect();
        let full = aggregate_and_rank(reports.clone(), None);
        for pair in full.windows(2) {
            prop_assert!(pair[0].weight_sum >= pair[1].weight_sum);
        }
        for entry in &full {
            prop_assert!(entry.weight_sum <= Weight::ONE);
            prop_assert!(!entry.weight_sum.is_zero());
        }
        let cut = aggregate_and_rank(reports, Some(k));
        prop_assert!(cut.len() <= k);
        prop_assert_eq!(&full[..cut.len()], &cut[..]);
    }

    // Exact decompositions survive aggregation with weight exactly 1.
    #[test]
    fn exact_decomposition_survives(parts in vec(1u64..1000, 1..12)) {
        let total: u64 = parts.iter().sum();
        let reports: Vec<(UserId, Weight)> = parts
            .iter()
            .map(|&p| (UserId(5), Weight::ratio(p, total).unwrap()))
            .collect();
        let ranked = aggregate_and_rank(reports, None);
        prop_assert_eq!(ranked.len(), 1);
        prop_assert!(ranked[0].weight_sum.is_one());
    }

    // Wire formats round-trip arbitrary payloads.
    #[test]
    fn weight_report_wire_roundtrip(raw in vec((any::<u64>(), 1u64..1000, 1u64..1000), 0..50)) {
        let reports: Vec<(UserId, Weight)> = raw
            .iter()
            .map(|&(id, a, b)| (UserId(id), Weight::new(a, b).unwrap()))
            .collect();
        let decoded =
            wire::decode_weight_reports(wire::encode_weight_reports(&reports).unwrap()).unwrap();
        prop_assert_eq!(decoded, reports);
    }

    #[test]
    fn station_data_wire_roundtrip(raw in vec((any::<u64>(), vec(any::<u64>(), 0..12)), 0..20)) {
        let entries: Vec<(UserId, Pattern)> = raw
            .into_iter()
            .map(|(id, vs)| (UserId(id), Pattern::new(vs)))
            .collect();
        let encoded =
            wire::encode_station_data(entries.iter().map(|(u, p)| (*u, p))).unwrap();
        let decoded = wire::decode_station_data(encoded).unwrap();
        prop_assert_eq!(decoded, entries);
    }

    // Shard rebalance safety: because `UserId → shard` is a pure function,
    // splitting any user set into per-shard partitions, scanning each
    // partition independently and merging the reports is equivalent to one
    // unsharded scan — for every shard count a deployment might pick.
    #[test]
    fn sharded_scan_merge_equals_unsharded_scan(
        locals in arb_locals(),
        users in vec((any::<u64>(), vec(0u64..60, 6usize..7)), 0..24),
    ) {
        prop_assume!(Pattern::sum(locals.iter()).unwrap().total().unwrap() > 0);
        let query = PatternQuery::from_locals(locals).unwrap();
        let config = small_config();
        let built = build_wbf(&[query], &config).unwrap();

        let store: BTreeMap<UserId, Pattern> = users
            .into_iter()
            .map(|(id, vs)| (UserId(id), Pattern::new(vs)))
            .collect();
        let unsharded =
            scan_station(&built.filter, &built.query_totals, &store, &config, None).unwrap();

        for shard_count in 1..=8usize {
            let layout = Shards::new(shard_count);
            let mut partitions: Vec<BTreeMap<UserId, Pattern>> =
                vec![BTreeMap::new(); shard_count];
            for (&user, pattern) in &store {
                partitions[layout.of(user)].insert(user, pattern.clone());
            }
            let mut merged = Vec::new();
            for partition in &partitions {
                merged.extend(
                    scan_station(&built.filter, &built.query_totals, partition, &config, None)
                        .unwrap(),
                );
            }
            merged.sort();
            let mut expect = unsharded.clone();
            expect.sort();
            prop_assert_eq!(
                merged, expect,
                "shard_count {} must not change the scan", shard_count
            );
        }
    }

    // Filters built from the same queries are deterministic.
    #[test]
    fn build_is_deterministic(locals in arb_locals()) {
        prop_assume!(Pattern::sum(locals.iter()).unwrap().total().unwrap() > 0);
        let query = PatternQuery::from_locals(locals).unwrap();
        let config = small_config();
        let a = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let b = build_wbf(&[query], &config).unwrap();
        prop_assert_eq!(a.filter, b.filter);
        prop_assert_eq!(a.stats, b.stats);
    }
}
