//! Base-station-side matching (Algorithm 2).
//!
//! Each station receives the broadcast filter and probes every locally
//! stored pattern: accumulate, sample the same `b` points the data center
//! sampled, hash each point, and accept only when all probed bits are set
//! *and* one weight is common to every point. Only `(ID, weight)` pairs
//! travel back to the center.

use std::collections::BTreeMap;

use dipm_core::{BloomFilter, Weight, WeightedBloomFilter};
use dipm_distsim::CostMeter;
use dipm_mobilenet::UserId;
use dipm_timeseries::{AccumulatedPattern, Pattern, SampledPattern};

use crate::config::DiMatchingConfig;
use crate::error::Result;

/// One station's candidate report: a user and the weight their pattern
/// matched with.
pub type WeightReport = (UserId, Weight);

fn sample_keys(pattern: &Pattern, config: &DiMatchingConfig) -> Result<(Vec<u64>, u64)> {
    let acc = AccumulatedPattern::from_pattern(pattern)?;
    let sampled = SampledPattern::from_accumulated(&acc, config.samples)?;
    let keys = sampled
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| config.hash_scheme.key(i, p.value))
        .collect();
    Ok((keys, sampled.max_value()))
}

/// Picks the weight to report when several survive the intersection.
///
/// Tolerance bands of nested combinations overlap, so ambiguity is common.
/// The station knows its candidate's total volume and each query's global
/// volume (broadcast with the filter), so it can reconstruct every surviving
/// weight's *implied combination volume* `w·T_query`. A weight is
/// **plausible** if that implied volume lies within `slack = ε·len` of the
/// observed volume — exactly the drift a genuinely ε-similar pattern can
/// exhibit, so a true candidate's own weight is always plausible. Among
/// plausible weights the smallest is reported: under-reporting only lowers a
/// true candidate's rank, whereas over-reporting inflates its sum past 1 and
/// gets it wrongly deleted by Algorithm 3. With no plausible weight the
/// candidate is dropped. Without broadcast volumes every weight is treated
/// as plausible (pure-filter fallback).
fn select_weight(
    set: &dipm_core::WeightSet,
    query_totals: &[u64],
    local_total: u64,
    slack: u64,
) -> Option<Weight> {
    let plausible = |w: Weight| -> bool {
        if query_totals.is_empty() {
            return true;
        }
        query_totals.iter().any(|&t| {
            let implied = w.numerator() as u128 * t as u128;
            let observed = local_total as u128 * w.denominator() as u128;
            implied.abs_diff(observed) <= slack as u128 * w.denominator() as u128
        })
    };
    // Sorted ascending: the first plausible weight is the smallest one.
    set.iter().find(|&w| !w.is_zero() && plausible(w))
}

/// Algorithm 2 over one station's stored patterns: returns `(user, weight)`
/// for every pattern the filter accepts with a consistent weight.
///
/// `meter`, when given, records the hash and comparison work performed.
///
/// # Errors
///
/// Propagates pattern-transformation errors (overflow, zero samples).
pub fn scan_station(
    filter: &WeightedBloomFilter,
    query_totals: &[u64],
    patterns: &BTreeMap<UserId, Pattern>,
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<WeightReport>> {
    let mut reports = Vec::new();
    for (&user, pattern) in patterns {
        let (keys, local_total) = sample_keys(pattern, config)?;
        let slack = config.eps.saturating_mul(pattern.len() as u64);
        if let Some(m) = meter {
            m.record_hash_ops(keys.len() as u64 * filter.hashes() as u64);
        }
        if let Some(set) = filter.query_sequence(keys.iter().copied()) {
            if let Some(m) = meter {
                m.record_comparisons(set.len() as u64 + 1);
            }
            if let Some(weight) = select_weight(&set, query_totals, local_total, slack) {
                reports.push((user, weight));
            }
        }
    }
    Ok(reports)
}

/// The Bloom-baseline analogue of [`scan_station`]: membership only, no
/// weights — every user whose sampled points are all contained is reported.
///
/// # Errors
///
/// Propagates pattern-transformation errors.
pub fn scan_station_bloom(
    filter: &BloomFilter,
    patterns: &BTreeMap<UserId, Pattern>,
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<UserId>> {
    let mut reports = Vec::new();
    for (&user, pattern) in patterns {
        let (keys, _) = sample_keys(pattern, config)?;
        if let Some(m) = meter {
            m.record_hash_ops(keys.len() as u64 * filter.hashes() as u64);
        }
        if keys.iter().all(|&k| filter.contains(k)) {
            reports.push(user);
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::build_wbf;
    use crate::query::PatternQuery;
    use dipm_core::FilterParams;

    fn station(patterns: Vec<(u64, Pattern)>) -> BTreeMap<UserId, Pattern> {
        patterns
            .into_iter()
            .map(|(id, p)| (UserId(id), p))
            .collect()
    }

    // Fragments chosen so no combination's tolerance band contains another
    // combination's samples at every position: weights are unambiguous.
    fn demo_query() -> PatternQuery {
        PatternQuery::from_locals(vec![
            Pattern::from([10u64, 0, 0, 5, 0, 0, 8, 0]),
            Pattern::from([0u64, 20, 0, 0, 15, 0, 0, 10]),
        ])
        .unwrap()
    }

    #[test]
    fn station_finds_global_match_with_weight_one() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let patterns = station(vec![(42, query.global().clone())]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, UserId(42));
        assert!(reports[0].1.is_one());
    }

    #[test]
    fn station_finds_local_match_with_fractional_weight() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let local = query.locals()[0].clone();
        let expect =
            Weight::ratio(local.total().unwrap(), query.global().total().unwrap()).unwrap();
        let patterns = station(vec![(7, local)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports, vec![(UserId(7), expect)]);
    }

    #[test]
    fn station_accepts_eps_similar_pattern() {
        let query = demo_query();
        let config = DiMatchingConfig::default(); // eps = 2
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        // Perturb the global by +1/-1 per interval: still within ε.
        let perturbed: Pattern = query
            .global()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 0 {
                    v + 1
                } else {
                    v.saturating_sub(1)
                }
            })
            .collect();
        let patterns = station(vec![(1, perturbed)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports.len(), 1, "ε-similar pattern must match");
    }

    #[test]
    fn station_rejects_distant_pattern() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let far: Pattern = query.global().iter().map(|v| v + 50).collect();
        let patterns = station(vec![(1, far)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn meter_records_station_work() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let meter = CostMeter::new();
        let patterns = station(vec![(1, query.global().clone())]);
        scan_station(
            &built.filter,
            &built.query_totals,
            &patterns,
            &config,
            Some(&meter),
        )
        .unwrap();
        let report = meter.report();
        assert!(report.hash_ops > 0);
        assert!(report.comparisons > 0);
    }

    #[test]
    fn bloom_scan_reports_ids_only() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        // Build a plain BF over the same keys the WBF would hold.
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let mut bf = BloomFilter::new(
            FilterParams::new(built.filter.bit_len(), built.filter.hashes()).unwrap(),
            config.seed,
        );
        // Re-insert the global's exact sampled keys.
        let (keys, _) = sample_keys(query.global(), &config).unwrap();
        for k in keys {
            bf.insert(k);
        }
        let patterns = station(vec![(5, query.global().clone())]);
        let ids = scan_station_bloom(&bf, &patterns, &config, None).unwrap();
        assert_eq!(ids, vec![UserId(5)]);
    }

    #[test]
    fn empty_station_produces_no_reports() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(&[query], &config).unwrap();
        let reports = scan_station(
            &built.filter,
            &built.query_totals,
            &BTreeMap::new(),
            &config,
            None,
        )
        .unwrap();
        assert!(reports.is_empty());
    }
}
