//! Base-station-side matching (Algorithm 2) over hash-sharded local stores.
//!
//! A station's local store is split into [`Shards`] by a pure
//! `UserId → shard` mapping, so one station can scan its shards in parallel
//! and a simulated city can grow past one thread per station. Each scan is
//! *batch-first*: every locally stored pattern is accumulated, sampled and
//! hashed **once**, then probed against every query section of the batch —
//! one pass over the store per batch, however many queries it carries. Only
//! `(query, ID, weight)` (or `(query, ID)` for the Bloom baseline) tuples
//! travel back to the center.
//!
//! [`scan_station`] and [`scan_station_bloom`] remain as the single-filter,
//! unsharded convenience API: thin wrappers over the same shard-scan core
//! the generic pipeline uses.

use std::collections::{BTreeMap, BinaryHeap};

use dipm_core::{
    BloomFilter, FilterCore, HashFamily, PrecomputedProbes, QueryScratch, WbfFrameView, Weight,
    WeightSet, WeightedBloomFilter,
};
use dipm_distsim::CostMeter;
use dipm_mobilenet::{StationId, UserId};
use dipm_timeseries::{for_each_sampled_point, Pattern};

use crate::config::{DiMatchingConfig, ScanAlgorithm};
use crate::error::Result;

/// Rows per block-max metadata entry: the granularity at which
/// `ScanAlgorithm::BlockMaxWand` skips whole runs of a shard.
pub const BLOCK_ROWS: usize = 64;

/// One station's candidate report: a user and the weight their pattern
/// matched with.
pub type WeightReport = (UserId, Weight);

/// A pure `UserId → shard` layout shared by every station of a deployment.
///
/// The mapping is a fixed bit-mix of the user id — no table, no state — so
/// any node (or a rebalanced replacement) computes the same placement, and
/// merging per-shard scan results is always equivalent to an unsharded scan
/// (property-tested in `tests/properties.rs` for every count in `1..=8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Shards {
    count: usize,
}

impl Shards {
    /// A layout with `count` shards per station; `0` is clamped to one
    /// shard (the unsharded layout).
    pub fn new(count: usize) -> Shards {
        Shards {
            count: count.max(1),
        }
    }

    /// The number of shards per station.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The shard `user` lives in — a pure function of the id alone.
    pub fn of(&self, user: UserId) -> usize {
        // SplitMix64 finalizer: cheap, stateless, and well distributed even
        // for the sequential ids the synthetic traces hand out.
        let mut x = user.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.count as u64) as usize
    }
}

impl Default for Shards {
    fn default() -> Shards {
        Shards::new(1)
    }
}

/// One base station's local store, partitioned into hash shards.
///
/// Borrows the deployment's pattern data (the simulator owns the corpus;
/// a real station would own its shard files) and groups it by
/// [`Shards::of`]. Entries within a shard stay in ascending user order, so
/// a sequential walk of shard 0, shard 1, … visits a deterministic
/// permutation of the unsharded store.
#[derive(Debug)]
pub struct BaseStation<'a> {
    id: StationId,
    shards: Vec<Vec<(UserId, &'a Pattern)>>,
}

impl<'a> BaseStation<'a> {
    /// Partitions `locals` into `layout.count()` shards.
    pub fn from_locals(
        id: StationId,
        locals: &'a BTreeMap<UserId, Pattern>,
        layout: Shards,
    ) -> BaseStation<'a> {
        let mut shards: Vec<Vec<(UserId, &'a Pattern)>> = vec![Vec::new(); layout.count()];
        for (&user, pattern) in locals {
            shards[layout.of(user)].push((user, pattern));
        }
        BaseStation { id, shards }
    }

    /// The station this store belongs to.
    pub fn id(&self) -> StationId {
        self.id
    }

    /// The number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's `(user, pattern)` rows in ascending user order.
    pub fn shard(&self, index: usize) -> &[(UserId, &'a Pattern)] {
        &self.shards[index]
    }

    /// Total users stored across all shards.
    pub fn user_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

/// Samples one row into a reused key buffer: a single fused
/// accumulate-and-sample pass, zero allocations once `keys` has warmed up.
/// Returns the pattern's total volume (the final accumulated value).
/// Shared with the routing tree, whose station summaries must hold exactly
/// the keys the scan would probe.
pub(crate) fn sample_keys_into(
    pattern: &Pattern,
    config: &DiMatchingConfig,
    keys: &mut Vec<u64>,
) -> Result<u64> {
    keys.clear();
    let mut total = 0u64;
    for_each_sampled_point(pattern, config.samples, |i, point| {
        keys.push(config.hash_scheme.key(i, point.value));
        total = point.value;
    })?;
    Ok(total)
}

/// Allocating convenience wrapper over [`sample_keys_into`], for callers
/// outside the scan hot path.
#[cfg(test)]
fn sample_keys(pattern: &Pattern, config: &DiMatchingConfig) -> Result<(Vec<u64>, u64)> {
    let mut keys = Vec::new();
    let total = sample_keys_into(pattern, config, &mut keys)?;
    Ok((keys, total))
}

/// Picks the weight to report when several survive the intersection.
///
/// Tolerance bands of nested combinations overlap, so ambiguity is common.
/// The station knows its candidate's total volume and each query's global
/// volume (broadcast with the filter), so it can reconstruct every surviving
/// weight's *implied combination volume* `w·T_query`. A weight is
/// **plausible** if that implied volume lies within `slack = ε·len` of the
/// observed volume — exactly the drift a genuinely ε-similar pattern can
/// exhibit, so a true candidate's own weight is always plausible. Among
/// plausible weights the smallest is reported: under-reporting only lowers a
/// true candidate's rank, whereas over-reporting inflates its sum past 1 and
/// gets it wrongly deleted by Algorithm 3. With no plausible weight the
/// candidate is dropped. Without broadcast volumes every weight is treated
/// as plausible (pure-filter fallback).
fn select_weight(
    set: &dipm_core::WeightSet,
    query_totals: &[u64],
    local_total: u64,
    slack: u64,
) -> Option<Weight> {
    let plausible = |w: Weight| -> bool {
        if query_totals.is_empty() {
            return true;
        }
        query_totals.iter().any(|&t| {
            let implied = w.numerator() as u128 * t as u128;
            let observed = local_total as u128 * w.denominator() as u128;
            implied.abs_diff(observed) <= slack as u128 * w.denominator() as u128
        })
    };
    // Sorted ascending: the first plausible weight is the smallest one.
    set.iter().find(|&w| !w.is_zero() && plausible(w))
}

/// The largest nonzero universe weight plausible for *some* volume in
/// `[vmin, vmax]` under `slack` — the score upper bound dynamic pruning
/// tests against. `None` proves no row in that volume window can pass
/// [`select_weight`] for this section, whatever its probe intersection:
/// the intersection is a subset of the filter's weight universe, and the
/// plausibility window below is exactly `select_weight`'s when
/// `vmin == vmax` (the interval form bounds whole blocks). Saturating
/// arithmetic can only over-admit a weight near the `u128` edge — it never
/// prunes a plausible one.
fn max_plausible_weight(
    universe: &WeightSet,
    query_totals: &[u64],
    vmin: u64,
    vmax: u64,
    slack: u64,
) -> Option<Weight> {
    let plausible = |w: Weight| -> bool {
        if query_totals.is_empty() {
            return true;
        }
        query_totals.iter().any(|&t| {
            let implied = w.numerator() as u128 * t as u128;
            let lo = vmin as u128 * w.denominator() as u128;
            let hi = vmax as u128 * w.denominator() as u128;
            let s = slack as u128 * w.denominator() as u128;
            implied.saturating_add(s) >= lo && implied <= hi.saturating_add(s)
        })
    };
    // Sorted ascending: the last plausible nonzero weight is the bound.
    universe
        .as_slice()
        .iter()
        .rev()
        .copied()
        .find(|&w| !w.is_zero() && plausible(w))
}

/// The query surface a WBF-style filter must expose for the station scan
/// kernels — implemented by the owned [`WeightedBloomFilter`] and by the
/// zero-copy [`WbfFrameView`], so a station can scan straight out of a
/// received broadcast frame without materializing an owned filter.
pub trait WbfScanFilter: FilterCore {
    /// The sorted universe of every distinct weight attached in the filter.
    fn weight_universe(&self) -> &WeightSet;

    /// Whether every probed bit named by the `(word, mask)` run is set —
    /// the batched membership predicate the SIMD kernel accelerates.
    fn passes_masks(&self, words: &[u32], masks: &[u64]) -> bool;

    /// The weight-intersection fold over probe positions already known to
    /// be occupied (membership must have been established via
    /// [`passes_masks`](WbfScanFilter::passes_masks) first).
    fn fold_weights_precomputed<'s>(
        &'s self,
        pre: &PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet>;

    /// The full sequence query (membership + fold), hashing keys on the
    /// fly — the fallback when sections disagree on geometry.
    fn query_sequence_scratch<'s>(
        &'s self,
        keys: &[u64],
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet>;
}

impl WbfScanFilter for WeightedBloomFilter {
    fn weight_universe(&self) -> &WeightSet {
        WeightedBloomFilter::weight_universe(self)
    }

    fn passes_masks(&self, words: &[u32], masks: &[u64]) -> bool {
        self.bits().contains_probes_simd(words, masks)
    }

    fn fold_weights_precomputed<'s>(
        &'s self,
        pre: &PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        WeightedBloomFilter::fold_weights_precomputed(self, pre, scratch)
    }

    fn query_sequence_scratch<'s>(
        &'s self,
        keys: &[u64],
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        self.query_sequence_into(keys.iter().copied(), scratch)
    }
}

impl WbfScanFilter for WbfFrameView {
    fn weight_universe(&self) -> &WeightSet {
        WbfFrameView::weight_universe(self)
    }

    fn passes_masks(&self, words: &[u32], masks: &[u64]) -> bool {
        self.bits().contains_probes_simd(words, masks)
    }

    fn fold_weights_precomputed<'s>(
        &'s self,
        pre: &PrecomputedProbes,
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        WbfFrameView::fold_weights_precomputed(self, pre, scratch)
    }

    fn query_sequence_scratch<'s>(
        &'s self,
        keys: &[u64],
        scratch: &'s mut QueryScratch,
    ) -> Option<&'s WeightSet> {
        self.query_sequence_into(keys.iter().copied(), scratch)
    }
}

/// Per-section state derived once per shard pass: the weight universe the
/// score bounds come from, and whether the section is statically dead (no
/// nonzero weight anywhere, so [`select_weight`] can never accept).
struct SectionScan<'a, F> {
    query: u32,
    filter: &'a F,
    query_totals: &'a [u64],
    universe: &'a WeightSet,
    dead: bool,
}

fn section_states<'a, F: WbfScanFilter>(
    sections: &[WbfScanSection<'a, F>],
) -> Vec<SectionScan<'a, F>> {
    sections
        .iter()
        .map(|&(query, filter, query_totals)| {
            let universe = filter.weight_universe();
            SectionScan {
                query,
                filter,
                query_totals,
                universe,
                dead: universe.as_slice().iter().all(|w| w.is_zero()),
            }
        })
        .collect()
}

/// The hash family shared by every section, when they all agree on
/// `(bits, hashes, seed)` — the precondition for hashing each row's probe
/// set once and replaying it per section.
fn shared_geometry<F: WbfScanFilter>(sections: &[WbfScanSection<'_, F>]) -> Option<HashFamily> {
    let (_, first, _) = *sections.first()?;
    let geometry = (first.bit_len(), first.hashes(), first.seed());
    sections
        .iter()
        .all(|&(_, f, _)| (f.bit_len(), f.hashes(), f.seed()) == geometry)
        .then(|| HashFamily::new(first.hashes(), first.seed()))
}

/// The `(vmin, vmax, slack_max)` envelope of one row block, or `None` if
/// any row is malformed (empty pattern, overflowing total, or zero
/// configured samples) — a malformed row must reach the sampler so its
/// error surfaces exactly as under an exhaustive scan, so its block can
/// never be skipped.
fn block_stats(block: &[(UserId, &Pattern)], config: &DiMatchingConfig) -> Option<(u64, u64, u64)> {
    if config.samples == 0 {
        return None;
    }
    let mut vmin = u64::MAX;
    let mut vmax = 0u64;
    let mut max_len = 0u64;
    for &(_, pattern) in block {
        if pattern.is_empty() {
            return None;
        }
        let total = pattern.total()?;
        vmin = vmin.min(total);
        vmax = vmax.max(total);
        max_len = max_len.max(pattern.len() as u64);
    }
    Some((vmin, vmax, config.eps.saturating_mul(max_len)))
}

/// One WBF query section as the scan kernels see it: the filter plus the
/// query volumes it was broadcast with, tagged with the batch-frame query
/// id. The filter slot is generic over [`WbfScanFilter`] so the same scan
/// runs against owned filters and zero-copy wire views; it defaults to the
/// owned [`WeightedBloomFilter`].
pub type WbfScanSection<'a, F = WeightedBloomFilter> = (u32, &'a F, &'a [u64]);

/// Algorithm 2 over one shard, batch-first: every stored pattern is sampled
/// and hashed once, then probed against every WBF query section. Returns
/// `(query, user, weight)` for each section that accepts a pattern with a
/// consistent, plausible weight, in `(row, section)` visit order.
///
/// `config.scan_algorithm` selects the pruning rung. Every rung is
/// result-exact — only `(row, section)` pairs whose score bound proves they
/// cannot pass [`select_weight`] are skipped, so the report list is
/// byte-identical to [`ScanAlgorithm::Exhaustive`]; only the work (and the
/// `rows_pruned` / `blocks_skipped` meters) differs. Block skipping never
/// covers a malformed row, so errors surface identically on every rung.
///
/// `meter`, when given, records the hash and comparison work performed.
///
/// # Errors
///
/// Propagates pattern-transformation errors (overflow, zero samples).
pub fn scan_shard_wbf<F: WbfScanFilter>(
    sections: &[WbfScanSection<'_, F>],
    shard: &[(UserId, &Pattern)],
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<(u32, UserId, Weight)>> {
    let algorithm: ScanAlgorithm = config.scan_algorithm;
    let states = section_states(sections);
    let family = shared_geometry(sections);
    // Reserve for a percent-level hit rate so steady-state scans never grow
    // the report vector; reports stay rare in a miss-dominated store.
    let mut reports = Vec::with_capacity(
        sections
            .len()
            .saturating_mul(shard.len() / 64 + 1)
            .min(1 << 16),
    );
    // Per-shard scratch: the key buffer, the probe core's intersection
    // buffer and the precomputed probe set are reused across every row, so
    // the per-(row × section) probe itself is allocation-free.
    let mut keys: Vec<u64> = Vec::with_capacity(config.samples);
    let mut scratch = QueryScratch::new();
    let mut pre = PrecomputedProbes::new();
    let mut alive: Vec<usize> = Vec::with_capacity(states.len());
    if family.is_some() {
        pre.reserve(
            config
                .samples
                .saturating_mul(usize::from(sections[0].1.hashes())),
        );
    }
    for block in shard.chunks(BLOCK_ROWS) {
        if algorithm.prunes_blocks() && !states.is_empty() {
            if let Some((vmin, vmax, smax)) = block_stats(block, config) {
                let unreportable = states.iter().all(|s| {
                    s.dead
                        || max_plausible_weight(s.universe, s.query_totals, vmin, vmax, smax)
                            .is_none()
                });
                if unreportable {
                    if let Some(m) = meter {
                        m.record_blocks_skipped(1);
                    }
                    continue;
                }
            }
        }
        for &(user, pattern) in block {
            let local_total = sample_keys_into(pattern, config, &mut keys)?;
            let slack = config.eps.saturating_mul(pattern.len() as u64);
            // Stage 1: score-bound pruning picks the candidate sections.
            // The meter charges each candidate its full probe cost here —
            // the work an exhaustive probe of that section would do — so
            // the recorded cost model is identical on every rung however
            // early stage 2 cuts the actual hashing short.
            alive.clear();
            for (i, s) in states.iter().enumerate() {
                if algorithm.prunes_sections() && s.dead {
                    if let Some(m) = meter {
                        m.record_rows_pruned(1);
                    }
                    continue;
                }
                if algorithm.prunes_rows()
                    && max_plausible_weight(
                        s.universe,
                        s.query_totals,
                        local_total,
                        local_total,
                        slack,
                    )
                    .is_none()
                {
                    if let Some(m) = meter {
                        m.record_rows_pruned(1);
                    }
                    continue;
                }
                if let Some(m) = meter {
                    m.record_hash_ops(s.filter.probe_cost(keys.len()));
                }
                alive.push(i);
            }
            if alive.is_empty() {
                continue;
            }
            // Stage 2 (shared geometry): hash each sampled key once and
            // test it against every still-alive section as one SIMD batch,
            // dropping sections the moment a key misses. Hashing stops as
            // soon as no candidate survives — in a miss-dominated store
            // most rows die on the first key or two.
            if let Some(fam) = &family {
                pre.clear();
                let bit_len = states[alive[0]].filter.bit_len();
                for (key_ordinal, &key) in keys.iter().enumerate() {
                    pre.push_key(fam, bit_len, key);
                    let (words, masks) = pre.key_masks(key_ordinal);
                    alive.retain(|&i| states[i].filter.passes_masks(words, masks));
                    if alive.is_empty() {
                        break;
                    }
                }
            }
            // Stage 3: survivors fold their weight sets. Under a shared
            // geometry membership is already proven, so only the weight
            // intersection remains; otherwise each section runs the full
            // per-section sequence query.
            for &i in &alive {
                let s = &states[i];
                let set = if family.is_some() {
                    s.filter.fold_weights_precomputed(&pre, &mut scratch)
                } else {
                    s.filter.query_sequence_scratch(&keys, &mut scratch)
                };
                if let Some(set) = set {
                    if let Some(m) = meter {
                        m.record_comparisons(set.len() as u64 + 1);
                    }
                    if let Some(weight) = select_weight(set, s.query_totals, local_total, slack) {
                        reports.push((s.query, user, weight));
                    }
                }
            }
        }
    }
    Ok(reports)
}

/// An entry of a per-section top-k heap, ordered so the **worst-ranked**
/// entry is the heap maximum (rank order: weight descending, then user
/// ascending — [`aggregate_and_rank`](crate::aggregate_and_rank)'s final
/// tiebreak). `peek()` is therefore the k-th score threshold θ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Worst(Weight, UserId);

impl Ord for Worst {
    fn cmp(&self, other: &Worst) -> std::cmp::Ordering {
        other.0.cmp(&self.0).then_with(|| self.1.cmp(&other.1))
    }
}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Worst) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Top-k variant of [`scan_shard_wbf`]: keeps only each section's k
/// best-ranked reports (weight descending, user ascending) in a local
/// threshold heap, and — on the pruning rungs — skips rows and blocks whose
/// score upper bound cannot beat the running k-th score θ.
///
/// The θ-skip is exact, not approximate: shard rows ascend by user and rank
/// ties break toward the *smaller* user, so a later candidate whose bound is
/// ≤ θ loses to every current heap entry and could never have entered the
/// heap under [`ScanAlgorithm::Exhaustive`] either. All four rungs return
/// bit-identical results; each local heap is merged at the center, never a
/// shared mutable threshold across shards or modes.
///
/// Reports are grouped by section in input order, each group best-first.
/// `k == 0` returns no reports without touching the shard (uniformly across
/// rungs, so error behavior stays identical).
///
/// # Errors
///
/// Propagates pattern-transformation errors (overflow, zero samples).
pub fn scan_shard_wbf_topk<F: WbfScanFilter>(
    sections: &[WbfScanSection<'_, F>],
    shard: &[(UserId, &Pattern)],
    config: &DiMatchingConfig,
    k: usize,
    meter: Option<&CostMeter>,
) -> Result<Vec<(u32, UserId, Weight)>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let algorithm = config.scan_algorithm;
    let states = section_states(sections);
    let family = shared_geometry(sections);
    // Static per-section bound: the largest nonzero weight the section's
    // universe can ever produce (None ⇔ dead).
    let static_bounds: Vec<Option<Weight>> = states
        .iter()
        .map(|s| {
            s.universe
                .as_slice()
                .iter()
                .rev()
                .copied()
                .find(|w| !w.is_zero())
        })
        .collect();
    let mut heaps: Vec<BinaryHeap<Worst>> = states
        .iter()
        .map(|_| BinaryHeap::with_capacity(k + 1))
        .collect();
    let mut keys: Vec<u64> = Vec::with_capacity(config.samples);
    let mut scratch = QueryScratch::new();
    let mut pre = PrecomputedProbes::new();
    let mut alive: Vec<usize> = Vec::with_capacity(states.len());
    if family.is_some() {
        pre.reserve(
            config
                .samples
                .saturating_mul(usize::from(sections[0].1.hashes())),
        );
    }
    for block in shard.chunks(BLOCK_ROWS) {
        if algorithm.prunes_blocks() && !states.is_empty() {
            if let Some((vmin, vmax, smax)) = block_stats(block, config) {
                let skippable = states.iter().enumerate().all(|(i, s)| {
                    if s.dead {
                        return true;
                    }
                    match max_plausible_weight(s.universe, s.query_totals, vmin, vmax, smax) {
                        None => true,
                        Some(bound) => {
                            heaps[i].len() == k
                                && heaps[i].peek().is_some_and(|worst| bound <= worst.0)
                        }
                    }
                });
                if skippable {
                    if let Some(m) = meter {
                        m.record_blocks_skipped(1);
                    }
                    continue;
                }
            }
        }
        for &(user, pattern) in block {
            let local_total = sample_keys_into(pattern, config, &mut keys)?;
            let slack = config.eps.saturating_mul(pattern.len() as u64);
            // Stage 1: θ-pruning picks candidates. Each heap belongs to one
            // section and only mutates in stage 3 of the same row, after
            // every candidate was chosen — so splitting selection from
            // probing cannot change which rows each threshold sees, and
            // results stay bit-identical to the interleaved form. The
            // meter charges full probe cost per candidate (see
            // [`scan_shard_wbf`]).
            alive.clear();
            for (i, s) in states.iter().enumerate() {
                let threshold = (heaps[i].len() == k)
                    .then(|| heaps[i].peek().map(|w| w.0))
                    .flatten();
                if algorithm.prunes_sections() {
                    if s.dead {
                        if let Some(m) = meter {
                            m.record_rows_pruned(1);
                        }
                        continue;
                    }
                    if let (Some(theta), Some(bound)) = (threshold, static_bounds[i]) {
                        if bound <= theta {
                            if let Some(m) = meter {
                                m.record_rows_pruned(1);
                            }
                            continue;
                        }
                    }
                }
                if algorithm.prunes_rows() {
                    let row_bound = max_plausible_weight(
                        s.universe,
                        s.query_totals,
                        local_total,
                        local_total,
                        slack,
                    );
                    let beatable = match row_bound {
                        None => false,
                        Some(bound) => !threshold.is_some_and(|theta| bound <= theta),
                    };
                    if !beatable {
                        if let Some(m) = meter {
                            m.record_rows_pruned(1);
                        }
                        continue;
                    }
                }
                if let Some(m) = meter {
                    m.record_hash_ops(s.filter.probe_cost(keys.len()));
                }
                alive.push(i);
            }
            if alive.is_empty() {
                continue;
            }
            // Stage 2 (shared geometry): incremental hash-and-test, exactly
            // as in [`scan_shard_wbf`].
            if let Some(fam) = &family {
                pre.clear();
                let bit_len = states[alive[0]].filter.bit_len();
                for (key_ordinal, &key) in keys.iter().enumerate() {
                    pre.push_key(fam, bit_len, key);
                    let (words, masks) = pre.key_masks(key_ordinal);
                    alive.retain(|&i| states[i].filter.passes_masks(words, masks));
                    if alive.is_empty() {
                        break;
                    }
                }
            }
            // Stage 3: survivors fold weights and feed their section heap.
            for &i in &alive {
                let s = &states[i];
                let set = if family.is_some() {
                    s.filter.fold_weights_precomputed(&pre, &mut scratch)
                } else {
                    s.filter.query_sequence_scratch(&keys, &mut scratch)
                };
                if let Some(set) = set {
                    if let Some(m) = meter {
                        m.record_comparisons(set.len() as u64 + 1);
                    }
                    if let Some(weight) = select_weight(set, s.query_totals, local_total, slack) {
                        let entry = Worst(weight, user);
                        let heap = &mut heaps[i];
                        if heap.len() < k {
                            heap.push(entry);
                        } else if heap.peek().is_some_and(|&worst| entry < worst) {
                            heap.pop();
                            heap.push(entry);
                        }
                    }
                }
            }
        }
    }
    let mut reports = Vec::with_capacity(heaps.iter().map(BinaryHeap::len).sum());
    for (s, heap) in states.iter().zip(heaps) {
        let mut entries = heap.into_vec();
        // Ascending `Worst` order is best-first.
        entries.sort_unstable();
        reports.extend(entries.into_iter().map(|Worst(w, u)| (s.query, u, w)));
    }
    Ok(reports)
}

/// The Bloom-baseline analogue of [`scan_shard_wbf`]: membership only, no
/// weights — every `(query, user)` pair whose sampled points are all
/// contained in that query's filter is reported.
///
/// # Errors
///
/// Propagates pattern-transformation errors.
pub fn scan_shard_bloom(
    sections: &[(u32, &BloomFilter)],
    shard: &[(UserId, &Pattern)],
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<(u32, UserId)>> {
    let mut reports = Vec::with_capacity(
        sections
            .len()
            .saturating_mul(shard.len() / 64 + 1)
            .min(1 << 16),
    );
    let mut keys: Vec<u64> = Vec::with_capacity(config.samples);
    for &(user, pattern) in shard {
        sample_keys_into(pattern, config, &mut keys)?;
        for &(query, filter) in sections {
            if let Some(m) = meter {
                m.record_hash_ops(filter.probe_cost(keys.len()));
            }
            if keys.iter().all(|&k| filter.contains(k)) {
                reports.push((query, user));
            }
        }
    }
    Ok(reports)
}

fn single_shard(patterns: &BTreeMap<UserId, Pattern>) -> Vec<(UserId, &Pattern)> {
    patterns.iter().map(|(&u, p)| (u, p)).collect()
}

/// Algorithm 2 over one station's unsharded store with a single query
/// filter: returns `(user, weight)` for every pattern the filter accepts
/// with a consistent weight.
///
/// Thin wrapper over [`scan_shard_wbf`] — the shard-scan core the generic
/// pipeline runs — presenting the store as one shard and one section.
///
/// `meter`, when given, records the hash and comparison work performed.
///
/// # Errors
///
/// Propagates pattern-transformation errors (overflow, zero samples).
pub fn scan_station(
    filter: &WeightedBloomFilter,
    query_totals: &[u64],
    patterns: &BTreeMap<UserId, Pattern>,
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<WeightReport>> {
    let shard = single_shard(patterns);
    let reports = scan_shard_wbf(&[(0, filter, query_totals)], &shard, config, meter)?;
    Ok(reports.into_iter().map(|(_, u, w)| (u, w)).collect())
}

/// The Bloom-baseline analogue of [`scan_station`]: membership only, no
/// weights — every user whose sampled points are all contained is reported.
///
/// Thin wrapper over [`scan_shard_bloom`].
///
/// # Errors
///
/// Propagates pattern-transformation errors.
pub fn scan_station_bloom(
    filter: &BloomFilter,
    patterns: &BTreeMap<UserId, Pattern>,
    config: &DiMatchingConfig,
    meter: Option<&CostMeter>,
) -> Result<Vec<UserId>> {
    let shard = single_shard(patterns);
    let reports = scan_shard_bloom(&[(0, filter)], &shard, config, meter)?;
    Ok(reports.into_iter().map(|(_, u)| u).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::build_wbf;
    use crate::query::PatternQuery;
    use dipm_core::FilterParams;

    fn station(patterns: Vec<(u64, Pattern)>) -> BTreeMap<UserId, Pattern> {
        patterns
            .into_iter()
            .map(|(id, p)| (UserId(id), p))
            .collect()
    }

    // Fragments chosen so no combination's tolerance band contains another
    // combination's samples at every position: weights are unambiguous.
    fn demo_query() -> PatternQuery {
        PatternQuery::from_locals(vec![
            Pattern::from([10u64, 0, 0, 5, 0, 0, 8, 0]),
            Pattern::from([0u64, 20, 0, 0, 15, 0, 0, 10]),
        ])
        .unwrap()
    }

    #[test]
    fn shard_mapping_is_pure_and_total() {
        for count in 1..=8 {
            let layout = Shards::new(count);
            assert_eq!(layout.count(), count);
            for id in 0..1000 {
                let shard = layout.of(UserId(id));
                assert!(shard < count);
                assert_eq!(shard, layout.of(UserId(id)), "mapping must be pure");
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let layout = Shards::new(0);
        assert_eq!(layout.count(), 1);
        assert_eq!(layout.of(UserId(123)), 0);
    }

    #[test]
    fn shards_spread_users() {
        let layout = Shards::new(4);
        let hit: std::collections::BTreeSet<usize> =
            (0..64).map(|id| layout.of(UserId(id))).collect();
        assert_eq!(hit.len(), 4, "64 sequential ids must reach all 4 shards");
    }

    #[test]
    fn base_station_partitions_cover_the_store() {
        let patterns = station((0..40).map(|i| (i, Pattern::from([i, 1, 2, 3]))).collect());
        let layout = Shards::new(5);
        let st = BaseStation::from_locals(StationId(3), &patterns, layout);
        assert_eq!(st.id(), StationId(3));
        assert_eq!(st.shard_count(), 5);
        assert_eq!(st.user_count(), 40);
        let mut seen = Vec::new();
        for i in 0..st.shard_count() {
            for &(user, pattern) in st.shard(i) {
                assert_eq!(layout.of(user), i, "row placed in the wrong shard");
                assert_eq!(patterns.get(&user), Some(pattern));
                seen.push(user);
            }
            let shard = st.shard(i);
            assert!(
                shard.windows(2).all(|w| w[0].0 < w[1].0),
                "shard rows must stay user-ordered"
            );
        }
        seen.sort();
        let expect: Vec<UserId> = patterns.keys().copied().collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn station_finds_global_match_with_weight_one() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let patterns = station(vec![(42, query.global().clone())]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, UserId(42));
        assert!(reports[0].1.is_one());
    }

    #[test]
    fn station_finds_local_match_with_fractional_weight() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let local = query.locals()[0].clone();
        let expect =
            Weight::ratio(local.total().unwrap(), query.global().total().unwrap()).unwrap();
        let patterns = station(vec![(7, local)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports, vec![(UserId(7), expect)]);
    }

    #[test]
    fn station_accepts_eps_similar_pattern() {
        let query = demo_query();
        let config = DiMatchingConfig::default(); // eps = 2
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        // Perturb the global by +1/-1 per interval: still within ε.
        let perturbed: Pattern = query
            .global()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 0 {
                    v + 1
                } else {
                    v.saturating_sub(1)
                }
            })
            .collect();
        let patterns = station(vec![(1, perturbed)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert_eq!(reports.len(), 1, "ε-similar pattern must match");
    }

    #[test]
    fn station_rejects_distant_pattern() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let far: Pattern = query.global().iter().map(|v| v + 50).collect();
        let patterns = station(vec![(1, far)]);
        let reports =
            scan_station(&built.filter, &built.query_totals, &patterns, &config, None).unwrap();
        assert!(reports.is_empty());
    }

    #[test]
    fn batch_scan_samples_each_pattern_once_for_many_sections() {
        // Probing two sections must double hash work but not the sampling:
        // reports appear per accepting section, tagged by query id.
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let patterns = station(vec![(5, query.global().clone())]);
        let shard = single_shard(&patterns);
        let sections: Vec<WbfScanSection<'_>> = vec![
            (0, &built.filter, built.query_totals.as_slice()),
            (9, &built.filter, built.query_totals.as_slice()),
        ];
        let meter = CostMeter::new();
        let reports = scan_shard_wbf(&sections, &shard, &config, Some(&meter)).unwrap();
        let tags: Vec<u32> = reports.iter().map(|&(q, _, _)| q).collect();
        assert_eq!(tags, vec![0, 9]);
        let single = CostMeter::new();
        scan_shard_wbf(&sections[..1], &shard, &config, Some(&single)).unwrap();
        assert_eq!(
            meter.report().hash_ops,
            2 * single.report().hash_ops,
            "hash work scales with sections"
        );
    }

    #[test]
    fn meter_records_station_work() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let meter = CostMeter::new();
        let patterns = station(vec![(1, query.global().clone())]);
        scan_station(
            &built.filter,
            &built.query_totals,
            &patterns,
            &config,
            Some(&meter),
        )
        .unwrap();
        let report = meter.report();
        assert!(report.hash_ops > 0);
        assert!(report.comparisons > 0);
    }

    #[test]
    fn bloom_scan_reports_ids_only() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        // Build a plain BF over the same keys the WBF would hold.
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let mut bf = BloomFilter::new(
            FilterParams::new(built.filter.bit_len(), built.filter.hashes()).unwrap(),
            config.seed,
        );
        // Re-insert the global's exact sampled keys.
        let (keys, _) = sample_keys(query.global(), &config).unwrap();
        for k in keys {
            bf.insert(k);
        }
        let patterns = station(vec![(5, query.global().clone())]);
        let ids = scan_station_bloom(&bf, &patterns, &config, None).unwrap();
        assert_eq!(ids, vec![UserId(5)]);
    }

    /// A store mixing the demo query's global (weight 1), its first local
    /// fragment (fractional weight) and distant non-matches.
    fn mixed_store(non_matches: u64) -> BTreeMap<UserId, Pattern> {
        let query = demo_query();
        let mut patterns = vec![(3, query.global().clone()), (8, query.locals()[0].clone())];
        for i in 0..non_matches {
            let far: Pattern = query.global().iter().map(|v| v + 50 + i).collect();
            patterns.push((100 + i, far));
        }
        station(patterns)
    }

    #[test]
    fn every_algorithm_matches_exhaustive_reports() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let patterns = mixed_store(200);
        let shard = single_shard(&patterns);
        let sections: Vec<WbfScanSection<'_>> = vec![
            (0, &built.filter, built.query_totals.as_slice()),
            (1, &built.filter, built.query_totals.as_slice()),
        ];
        let reference = scan_shard_wbf(&sections, &shard, &config, None).unwrap();
        assert!(!reference.is_empty());
        for algorithm in crate::config::ScanAlgorithm::ALL {
            let pruned_config = DiMatchingConfig {
                scan_algorithm: algorithm,
                ..config.clone()
            };
            let meter = CostMeter::new();
            let reports = scan_shard_wbf(&sections, &shard, &pruned_config, Some(&meter)).unwrap();
            assert_eq!(reports, reference, "{algorithm:?} diverged");
            if algorithm == crate::config::ScanAlgorithm::Exhaustive {
                let report = meter.report();
                assert_eq!(report.rows_pruned, 0);
                assert_eq!(report.blocks_skipped, 0);
            }
        }
    }

    #[test]
    fn dead_section_is_pruned_without_hashing() {
        // A filter with no insertions has an empty weight universe: the
        // MaxScore rung must skip every row of it without hash work.
        let query = demo_query();
        let config = DiMatchingConfig {
            scan_algorithm: crate::config::ScanAlgorithm::MaxScore,
            ..DiMatchingConfig::default()
        };
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let empty = WeightedBloomFilter::new(
            dipm_core::FilterParams::new(built.filter.bit_len(), built.filter.hashes()).unwrap(),
            config.seed,
        );
        let patterns = mixed_store(10);
        let shard = single_shard(&patterns);
        let sections: Vec<WbfScanSection<'_>> = vec![(0, &empty, &[])];
        let meter = CostMeter::new();
        let reports = scan_shard_wbf(&sections, &shard, &config, Some(&meter)).unwrap();
        assert!(reports.is_empty());
        let report = meter.report();
        assert_eq!(report.hash_ops, 0, "dead section must not hash");
        assert_eq!(report.rows_pruned, shard.len() as u64);
    }

    #[test]
    fn block_max_wand_skips_far_blocks() {
        // Non-matching rows with totals far outside every plausible-weight
        // window: whole blocks must be skipped, and results must not change.
        let query = demo_query();
        let exhaustive = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &exhaustive).unwrap();
        let far = station(
            (0..(4 * BLOCK_ROWS as u64))
                .map(|i| {
                    let p: Pattern = query.global().iter().map(|v| v * 100 + i).collect();
                    (i, p)
                })
                .collect(),
        );
        let shard = single_shard(&far);
        let sections: Vec<WbfScanSection<'_>> =
            vec![(0, &built.filter, built.query_totals.as_slice())];
        let reference = scan_shard_wbf(&sections, &shard, &exhaustive, None).unwrap();
        let bmw = DiMatchingConfig {
            scan_algorithm: crate::config::ScanAlgorithm::BlockMaxWand,
            ..exhaustive
        };
        let meter = CostMeter::new();
        let reports = scan_shard_wbf(&sections, &shard, &bmw, Some(&meter)).unwrap();
        assert_eq!(reports, reference);
        assert!(
            meter.report().blocks_skipped > 0,
            "far-off blocks must be skipped whole"
        );
    }

    #[test]
    fn topk_kernel_matches_exhaustive_for_every_algorithm_and_k() {
        let query = demo_query();
        let base = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &base).unwrap();
        let patterns = mixed_store(150);
        let shard = single_shard(&patterns);
        let sections: Vec<WbfScanSection<'_>> = vec![
            (0, &built.filter, built.query_totals.as_slice()),
            (7, &built.filter, built.query_totals.as_slice()),
        ];
        for k in [0usize, 1, 2, 3, 1000] {
            let reference = scan_shard_wbf_topk(&sections, &shard, &base, k, None).unwrap();
            for algorithm in crate::config::ScanAlgorithm::ALL {
                let config = DiMatchingConfig {
                    scan_algorithm: algorithm,
                    ..base.clone()
                };
                let reports = scan_shard_wbf_topk(&sections, &shard, &config, k, None).unwrap();
                assert_eq!(reports, reference, "{algorithm:?} k={k} diverged");
            }
        }
    }

    #[test]
    fn topk_kernel_keeps_the_best_ranked_entries() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let patterns = mixed_store(0); // users 3 (weight 1) and 8 (fraction)
        let shard = single_shard(&patterns);
        let sections: Vec<WbfScanSection<'_>> =
            vec![(0, &built.filter, built.query_totals.as_slice())];
        let all = scan_shard_wbf_topk(&sections, &shard, &config, 10, None).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, UserId(3), "weight-1 match ranks first");
        assert!(all[0].2.is_one());
        let top1 = scan_shard_wbf_topk(&sections, &shard, &config, 1, None).unwrap();
        assert_eq!(top1, all[..1]);
        assert!(scan_shard_wbf_topk(&sections, &shard, &config, 0, None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_station_produces_no_reports() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(&[query], &config).unwrap();
        let reports = scan_station(
            &built.filter,
            &built.query_totals,
            &BTreeMap::new(),
            &config,
            None,
        )
        .unwrap();
        assert!(reports.is_empty());
    }
}
