//! Data-center-side algorithms: WBF construction (Algorithm 1) and
//! similarity ranking (Algorithm 3).

use std::collections::{BTreeMap, BTreeSet};

use dipm_core::{FilterCore, FilterParams, Weight, WeightedBloomFilter};
use dipm_mobilenet::UserId;
use dipm_timeseries::{enumerate_combinations, AccumulatedPattern, SampledPattern};

use crate::config::DiMatchingConfig;
use crate::error::Result;
use crate::query::PatternQuery;

/// Construction statistics reported alongside a built filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Number of query patterns (`a` of Eq. 4, summed over queries).
    pub combinations: usize,
    /// Number of `(key, weight)` insertions, tolerance bands included.
    pub inserted_values: u64,
    /// The filter length in bits.
    pub bits: usize,
    /// The number of hash functions.
    pub hashes: u16,
}

impl BuildStats {
    /// Stats for a freshly built filter of either variant.
    fn for_filter<F: FilterCore>(combinations: usize, inserted_values: u64, filter: &F) -> Self {
        BuildStats {
            combinations,
            inserted_values,
            bits: filter.bit_len(),
            hashes: filter.hashes(),
        }
    }

    /// Element-wise sum — the merged statistics of a batch of per-query
    /// filter sections.
    pub fn merged_with(self, other: BuildStats) -> BuildStats {
        BuildStats {
            combinations: self.combinations + other.combinations,
            inserted_values: self.inserted_values + other.inserted_values,
            bits: self.bits + other.bits,
            hashes: self.hashes.max(other.hashes),
        }
    }
}

/// A filter built by Algorithm 1, ready for broadcast.
#[derive(Debug, Clone)]
pub struct BuiltFilter {
    /// The weighted Bloom filter encoding every combination pattern.
    pub filter: WeightedBloomFilter,
    /// Each query's global volume (the sampled accumulated maximum), in
    /// query order. Broadcast with the filter so stations can pick, among
    /// ambiguous surviving weights, the one whose implied combination volume
    /// matches the candidate's observed volume.
    pub query_totals: Vec<u64>,
    /// The distinct probe keys inserted, ascending. A station can genuinely
    /// report against this section only if at least one of these keys is in
    /// its local key population — the test the routing tree makes against
    /// each station's summary filter.
    pub probe_keys: Vec<u64>,
    /// Construction statistics.
    pub stats: BuildStats,
}

/// One combination pattern prepared for insertion: its sampled accumulated
/// points and its weight.
struct PreparedPattern {
    sampled: SampledPattern,
    weight: Weight,
}

/// Everything both builders need: the distinct `(key, weight)` pairs of the
/// query set (tolerance bands expanded, duplicates collapsed), the per-query
/// global volumes, and the combination count. The streaming session reuses
/// this per query: a standing query's pair set is exactly what gets
/// inserted into (and later removed from) the counting filter.
pub(crate) struct PreparedBuild {
    pub(crate) pairs: BTreeSet<(u64, Weight)>,
    pub(crate) query_totals: Vec<u64>,
    pub(crate) combinations: usize,
}

impl PreparedBuild {
    /// The distinct probe keys, ascending (the quantity filters are sized
    /// by — identical `(key, weight)` pairs set identical bits — and the
    /// set routing probes station summaries with).
    pub(crate) fn probe_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = Vec::new();
        for &(key, _) in &self.pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
            }
        }
        keys
    }
}

/// Collects the distinct insertion pairs for a query set. Similar queries
/// produce heavily overlapping tolerance bands, so the *distinct* pairs are
/// collected first and the filter sized by distinct keys, not raw
/// insertions.
pub(crate) fn prepare_build(
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
) -> Result<PreparedBuild> {
    let (prepared, query_totals) = prepare_queries(queries, config)?;
    let mut pairs: BTreeSet<(u64, Weight)> = BTreeSet::new();
    for p in &prepared {
        for (index, point) in p.sampled.points().iter().enumerate() {
            for value in config.tolerance.band_values(config.eps, *point) {
                pairs.insert((config.hash_scheme.key(index, value), p.weight));
            }
        }
    }
    Ok(PreparedBuild {
        pairs,
        query_totals,
        combinations: prepared.len(),
    })
}

/// Sizes a filter for `distinct_keys` insertions at the configured target
/// false-positive rate, with the configured floor applied — unless the
/// configuration pins an explicit geometry (streaming sessions and
/// rebuild-equivalence comparisons do).
pub(crate) fn sized_params(
    distinct_keys: usize,
    config: &DiMatchingConfig,
) -> Result<FilterParams> {
    if let Some(params) = config.fixed_geometry {
        return Ok(params);
    }
    let params = FilterParams::optimal(distinct_keys.max(1), config.target_fpp)?;
    if params.bits() < config.min_bits {
        Ok(FilterParams::new(config.min_bits, params.hashes())?)
    } else {
        Ok(params)
    }
}

fn prepare_queries(
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
) -> Result<(Vec<PreparedPattern>, Vec<u64>)> {
    let mut prepared = Vec::new();
    let mut query_totals = Vec::with_capacity(queries.len());
    for query in queries {
        let combos = enumerate_combinations(query.locals())?;
        // The final combination is the full set — the global pattern — whose
        // sampled maximum is the weight denominator v_ab of Algorithm 1.
        let global_acc = AccumulatedPattern::from_pattern(
            &combos.last().expect("at least one combination").pattern,
        )?;
        let global_sampled = SampledPattern::from_accumulated(&global_acc, config.samples)?;
        let global_total = global_sampled.max_value();
        query_totals.push(global_total);
        for combo in &combos {
            let acc = AccumulatedPattern::from_pattern(&combo.pattern)?;
            let sampled = SampledPattern::from_accumulated(&acc, config.samples)?;
            let total = sampled.max_value();
            if total == 0 {
                // A zero-volume combination carries no information and its
                // weight-0 entries would spuriously match idle users.
                continue;
            }
            let weight = Weight::ratio(total, global_total)?;
            prepared.push(PreparedPattern { sampled, weight });
        }
    }
    Ok((prepared, query_totals))
}

/// Algorithm 1: builds one weighted Bloom filter over every subset-sum
/// combination of every query's local patterns, with ε-tolerance bands.
///
/// # Errors
///
/// Propagates configuration, pattern and filter errors; see
/// [`DiMatchingConfig::validate`] and [`PatternQuery::from_locals`].
///
/// # Examples
///
/// ```
/// use dipm_protocol::{build_wbf, DiMatchingConfig, PatternQuery};
/// use dipm_timeseries::Pattern;
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let query = PatternQuery::from_locals(vec![
///     Pattern::from([1u64, 2, 3]),
///     Pattern::from([2u64, 2, 2]),
/// ])?;
/// let built = build_wbf(&[query], &DiMatchingConfig::default())?;
/// assert_eq!(built.stats.combinations, 3); // 2^2 − 1
/// # Ok(())
/// # }
/// ```
pub fn build_wbf(queries: &[PatternQuery], config: &DiMatchingConfig) -> Result<BuiltFilter> {
    config.validate()?;
    let build = prepare_build(queries, config)?;
    let probe_keys = build.probe_keys();
    let params = sized_params(probe_keys.len(), config)?;
    let mut filter = WeightedBloomFilter::new(params, config.seed);
    for &(key, weight) in &build.pairs {
        filter.insert(key, weight);
    }
    let stats = BuildStats::for_filter(build.combinations, build.pairs.len() as u64, &filter);
    Ok(BuiltFilter {
        filter,
        query_totals: build.query_totals,
        probe_keys,
        stats,
    })
}

/// A plain Bloom filter built over the same keys Algorithm 1 would insert —
/// the paper's `BF` comparison method (DI-matching with the weight layer
/// removed).
#[derive(Debug, Clone)]
pub struct BuiltBloom {
    /// The unweighted filter.
    pub filter: dipm_core::BloomFilter,
    /// The distinct probe keys inserted, ascending (see
    /// [`BuiltFilter::probe_keys`]).
    pub probe_keys: Vec<u64>,
    /// Construction statistics.
    pub stats: BuildStats,
}

/// Builds the Bloom-baseline filter: identical representation, sampling and
/// ε-banding to [`build_wbf`], but membership only — no weights.
///
/// # Errors
///
/// Same as [`build_wbf`].
pub fn build_bloom(queries: &[PatternQuery], config: &DiMatchingConfig) -> Result<BuiltBloom> {
    config.validate()?;
    let build = prepare_build(queries, config)?;
    // The weight layer is dropped: only the distinct keys are inserted.
    let probe_keys = build.probe_keys();
    let params = sized_params(probe_keys.len(), config)?;
    let mut filter = dipm_core::BloomFilter::new(params, config.seed);
    for &key in &probe_keys {
        filter.insert(key);
    }
    let stats = BuildStats::for_filter(build.combinations, probe_keys.len() as u64, &filter);
    Ok(BuiltBloom {
        filter,
        probe_keys,
        stats,
    })
}

/// A ranked answer entry: a user and their aggregated weight sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedUser {
    /// The matched user.
    pub user: UserId,
    /// The exact aggregated weight (1 for a perfectly reconstructed global
    /// match).
    pub weight_sum: Weight,
    /// How many stations reported this user — the ranking tie-breaker: a
    /// user matching at more stations reconstructed the query decomposition
    /// more faithfully than one reaching the same sum in fewer pieces.
    pub reports: u32,
}

/// Algorithm 3: aggregates per-station `(user, weight)` reports, discards
/// users whose weight sum exceeds 1 (they matched both the global pattern
/// and some local pattern, so their true global differs), ranks the rest by
/// descending weight sum (ties by ascending user id) and returns the top-K.
///
/// `top_k = None` returns every surviving user in rank order.
///
/// # Examples
///
/// ```
/// use dipm_core::Weight;
/// use dipm_mobilenet::UserId;
/// use dipm_protocol::aggregate_and_rank;
///
/// # fn main() -> Result<(), dipm_core::CoreError> {
/// let reports = vec![
///     (UserId(1), Weight::new(1, 3)?),
///     (UserId(1), Weight::new(2, 3)?), // sums to exactly 1
///     (UserId(2), Weight::new(1, 2)?),
///     (UserId(3), Weight::ONE),
///     (UserId(3), Weight::new(1, 3)?), // sums above 1 → discarded
/// ];
/// let ranked = aggregate_and_rank(reports, None);
/// let ids: Vec<u64> = ranked.iter().map(|r| r.user.0).collect();
/// assert_eq!(ids, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn aggregate_and_rank(reports: Vec<(UserId, Weight)>, top_k: Option<usize>) -> Vec<RankedUser> {
    let mut sums: BTreeMap<UserId, (Option<Weight>, u32)> = BTreeMap::new();
    for (user, weight) in reports {
        let entry = sums.entry(user).or_insert((Some(Weight::ZERO), 0));
        // `None` marks arithmetic overflow; an overflowed sum is certainly
        // above 1, so the user is discarded below either way.
        entry.0 = entry.0.and_then(|current| current.checked_add(weight));
        entry.1 += 1;
    }
    let mut ranked: Vec<RankedUser> = sums
        .into_iter()
        .filter_map(|(user, (sum, reports))| {
            let weight_sum = sum?;
            if weight_sum.cmp_one() == std::cmp::Ordering::Greater || weight_sum.is_zero() {
                None
            } else {
                Some(RankedUser {
                    user,
                    weight_sum,
                    reports,
                })
            }
        })
        .collect();
    // Comparator is a total order (user id breaks every tie), so the
    // unstable sort is deterministic and avoids the stable sort's buffer.
    fn rank_order(a: &RankedUser, b: &RankedUser) -> std::cmp::Ordering {
        b.weight_sum
            .cmp(&a.weight_sum)
            .then_with(|| b.reports.cmp(&a.reports))
            .then_with(|| a.user.cmp(&b.user))
    }
    match top_k {
        Some(0) => ranked.clear(),
        // Small-k cutoffs dominate in practice: partition the k best to the
        // front in O(n), then sort only them — O(n + k log k) total. Past
        // n/2 the partition stops paying for itself.
        Some(k) if k < ranked.len() / 2 => {
            ranked.select_nth_unstable_by(k - 1, rank_order);
            ranked.truncate(k);
            ranked.sort_unstable_by(rank_order);
        }
        _ => {
            ranked.sort_unstable_by(rank_order);
            if let Some(k) = top_k {
                ranked.truncate(k);
            }
        }
    }
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashScheme;
    use dipm_timeseries::Pattern;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    fn demo_query() -> PatternQuery {
        PatternQuery::from_locals(vec![
            Pattern::from([1u64, 2, 3, 1, 0, 2, 4, 1]),
            Pattern::from([2u64, 2, 2, 0, 1, 3, 0, 2]),
        ])
        .unwrap()
    }

    #[test]
    fn top_k_selection_matches_full_sort_for_every_k() {
        // The select-then-sort fast path must agree with plain
        // sort-and-truncate for every cutoff, including the boundary cases
        // around the n/2 switch, ties everywhere, and k past the end.
        let reports: Vec<(UserId, Weight)> = (0..60u64)
            .map(|i| (UserId(i), w(1 + i % 5, 7 + i % 3)))
            .filter(|(_, weight)| weight.cmp_one() != std::cmp::Ordering::Greater)
            .collect();
        let full = aggregate_and_rank(reports.clone(), None);
        for k in 0..=full.len() + 2 {
            let mut expect = full.clone();
            expect.truncate(k);
            assert_eq!(
                aggregate_and_rank(reports.clone(), Some(k)),
                expect,
                "k = {k}"
            );
        }
    }

    #[test]
    fn ranking_breaks_every_tie_deterministically() {
        // The ranking sort is unstable, so the comparator must be a total
        // order: users tying on weight sum AND report count are separated by
        // user id, and any permutation of the incoming reports ranks
        // identically.
        let reports = vec![
            (UserId(7), w(1, 2)),
            (UserId(3), w(1, 2)),
            (UserId(11), w(1, 2)),
            (UserId(5), w(1, 4)),
            (UserId(5), w(1, 4)),
            (UserId(2), w(1, 4)),
            (UserId(2), w(1, 4)),
            (UserId(9), w(1, 1)),
        ];
        let baseline = aggregate_and_rank(reports.clone(), None);
        let ids: Vec<u64> = baseline.iter().map(|r| r.user.0).collect();
        // Weight 1 first; the 1/2 trio ties on (sum, reports=1) and must come
        // out in ascending user order; likewise the 1/2-sum pair with 2
        // reports outranks the single-report trio.
        assert_eq!(ids, vec![9, 2, 5, 3, 7, 11]);
        for rotation in 1..reports.len() {
            let mut permuted = reports.clone();
            permuted.rotate_left(rotation);
            let last = permuted.len() - 1;
            permuted.swap(0, rotation % last);
            let ranked = aggregate_and_rank(permuted, None);
            assert_eq!(
                ranked
                    .iter()
                    .map(|r| (r.user, r.weight_sum, r.reports))
                    .collect::<Vec<_>>(),
                baseline
                    .iter()
                    .map(|r| (r.user, r.weight_sum, r.reports))
                    .collect::<Vec<_>>(),
                "rotation {rotation}"
            );
        }
    }

    #[test]
    fn build_produces_expected_combination_count() {
        let built = build_wbf(&[demo_query()], &DiMatchingConfig::default()).unwrap();
        assert_eq!(built.stats.combinations, 3);
        assert!(built.stats.inserted_values > 0);
        assert_eq!(built.filter.inserted(), built.stats.inserted_values);
    }

    #[test]
    fn global_pattern_gets_weight_one() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        // Probe the global pattern's sampled points: weight 1 must survive.
        let acc = AccumulatedPattern::from_pattern(query.global()).unwrap();
        let sampled = SampledPattern::from_accumulated(&acc, config.samples).unwrap();
        let keys = sampled
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| config.hash_scheme.key(i, p.value));
        let set = built.filter.query_sequence(keys).expect("bits set");
        assert!(set.contains(Weight::ONE));
    }

    #[test]
    fn local_pattern_gets_fractional_weight() {
        let query = demo_query();
        let config = DiMatchingConfig::default();
        let built = build_wbf(std::slice::from_ref(&query), &config).unwrap();
        let local = &query.locals()[0];
        let acc = AccumulatedPattern::from_pattern(local).unwrap();
        let sampled = SampledPattern::from_accumulated(&acc, config.samples).unwrap();
        let keys = sampled
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| config.hash_scheme.key(i, p.value));
        let set = built.filter.query_sequence(keys).expect("bits set");
        let expect =
            Weight::ratio(local.total().unwrap(), query.global().total().unwrap()).unwrap();
        assert!(set.contains(expect));
    }

    #[test]
    fn zero_volume_combinations_are_skipped() {
        let query = PatternQuery::from_locals(vec![
            Pattern::from([0u64, 0, 0, 0]),
            Pattern::from([1u64, 2, 0, 1]),
        ])
        .unwrap();
        let built = build_wbf(&[query], &DiMatchingConfig::default()).unwrap();
        // Combinations {zero}, {nonzero}, {both}: the zero one is skipped.
        assert_eq!(built.stats.combinations, 2);
    }

    #[test]
    fn multiple_queries_share_one_filter() {
        let q1 = demo_query();
        let q2 = PatternQuery::from_global(Pattern::from([9u64, 9, 9, 9, 9, 9, 9, 9])).unwrap();
        let built = build_wbf(&[q1, q2], &DiMatchingConfig::default()).unwrap();
        assert_eq!(built.stats.combinations, 4); // 3 + 1
    }

    #[test]
    fn min_bits_floor_applies() {
        let config = DiMatchingConfig {
            min_bits: 1 << 16,
            ..Default::default()
        };
        let built = build_wbf(&[demo_query()], &config).unwrap();
        assert!(built.stats.bits >= 1 << 16);
    }

    #[test]
    fn position_tagged_scheme_builds() {
        let config = DiMatchingConfig {
            hash_scheme: HashScheme::PositionTagged,
            ..Default::default()
        };
        let built = build_wbf(&[demo_query()], &config).unwrap();
        assert!(built.stats.inserted_values > 0);
    }

    #[test]
    fn aggregate_exact_decomposition_sums_to_one() {
        let ranked = aggregate_and_rank(vec![(UserId(7), w(1, 4)), (UserId(7), w(3, 4))], None);
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].weight_sum.is_one());
    }

    #[test]
    fn aggregate_discards_over_one() {
        // Section IV-B: matching the global at one station and a local at
        // another means the true aggregated global differs — delete.
        let ranked = aggregate_and_rank(vec![(UserId(1), Weight::ONE), (UserId(1), w(1, 3))], None);
        assert!(ranked.is_empty());
    }

    #[test]
    fn aggregate_ranks_descending_with_id_ties() {
        let ranked = aggregate_and_rank(
            vec![
                (UserId(5), w(1, 2)),
                (UserId(2), Weight::ONE),
                (UserId(9), w(1, 2)),
            ],
            None,
        );
        let ids: Vec<u64> = ranked.iter().map(|r| r.user.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn aggregate_top_k_truncates() {
        let ranked = aggregate_and_rank(
            vec![
                (UserId(1), Weight::ONE),
                (UserId(2), w(2, 3)),
                (UserId(3), w(1, 3)),
            ],
            Some(2),
        );
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].user, UserId(1));
    }

    #[test]
    fn aggregate_zero_weight_users_dropped() {
        let ranked = aggregate_and_rank(vec![(UserId(1), Weight::ZERO)], None);
        assert!(ranked.is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let config = DiMatchingConfig {
            samples: 0,
            ..Default::default()
        };
        assert!(build_wbf(&[demo_query()], &config).is_err());
    }
}
