//! Error types for the DI-matching protocol.

use std::error::Error;
use std::fmt;

use dipm_core::CoreError;
use dipm_distsim::DistSimError;
use dipm_timeseries::TimeSeriesError;

/// A convenient result alias used throughout [`dipm-protocol`](crate).
pub type Result<T, E = ProtocolError> = std::result::Result<T, E>;

/// Errors produced by query construction and protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An underlying filter/weight error.
    Core(CoreError),
    /// An underlying pattern/series error.
    TimeSeries(TimeSeriesError),
    /// An underlying simulated-network error.
    DistSim(DistSimError),
    /// A query carried no local patterns.
    EmptyQuery,
    /// A query's global pattern has zero total volume, so no weights can be
    /// assigned (every weight would be 0/0).
    ZeroQueryVolume,
    /// The protocol configuration was rejected.
    InvalidConfig {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// A station report could not be decoded at the data center.
    MalformedReport {
        /// Human-readable reason the payload was rejected.
        reason: String,
    },
    /// A frame's element count exceeds the wire format's `u32` length
    /// prefix. Encoding would have to truncate the count — a frame whose
    /// prefix lies about its body — so the encoder refuses instead.
    FrameTooLarge {
        /// What overflowed, and by how much.
        reason: String,
    },
    /// A streaming-session operation referenced a query id that is not
    /// live (never inserted, or already removed).
    UnknownStreamQuery {
        /// The referenced query id.
        id: u64,
    },
    /// A service registration reused a [`TenantId`](crate::TenantId) that is
    /// already live. The existing tenant is left untouched.
    DuplicateTenant {
        /// The conflicting tenant id.
        id: u64,
    },
    /// A service operation referenced a [`TenantId`](crate::TenantId) that
    /// is not registered.
    UnknownTenant {
        /// The referenced tenant id.
        id: u64,
    },
    /// A checkpoint could not be recovered: its recorded epoch, geometry or
    /// filter state disagrees with the state offered alongside it (retained
    /// station memories, session config). Nothing is rebuilt on rejection.
    CheckpointMismatch {
        /// Human-readable reason the checkpoint was rejected.
        reason: String,
    },
}

impl ProtocolError {
    pub(crate) fn invalid_config(reason: impl Into<String>) -> Self {
        ProtocolError::InvalidConfig {
            reason: reason.into(),
        }
    }

    pub(crate) fn malformed_report(reason: impl Into<String>) -> Self {
        ProtocolError::MalformedReport {
            reason: reason.into(),
        }
    }

    pub(crate) fn frame_too_large(reason: impl Into<String>) -> Self {
        ProtocolError::FrameTooLarge {
            reason: reason.into(),
        }
    }

    pub(crate) fn checkpoint_mismatch(reason: impl Into<String>) -> Self {
        ProtocolError::CheckpointMismatch {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Core(e) => write!(f, "filter error: {e}"),
            ProtocolError::TimeSeries(e) => write!(f, "pattern error: {e}"),
            ProtocolError::DistSim(e) => write!(f, "network error: {e}"),
            ProtocolError::EmptyQuery => write!(f, "query must contain at least one local pattern"),
            ProtocolError::ZeroQueryVolume => {
                write!(f, "query global pattern has zero total volume")
            }
            ProtocolError::InvalidConfig { reason } => {
                write!(f, "invalid protocol configuration: {reason}")
            }
            ProtocolError::MalformedReport { reason } => {
                write!(f, "malformed station report: {reason}")
            }
            ProtocolError::FrameTooLarge { reason } => {
                write!(f, "frame exceeds wire-format limits: {reason}")
            }
            ProtocolError::UnknownStreamQuery { id } => {
                write!(f, "streaming query {id} is not live")
            }
            ProtocolError::DuplicateTenant { id } => {
                write!(f, "tenant {id} is already registered")
            }
            ProtocolError::UnknownTenant { id } => {
                write!(f, "tenant {id} is not registered")
            }
            ProtocolError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint cannot be recovered: {reason}")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Core(e) => Some(e),
            ProtocolError::TimeSeries(e) => Some(e),
            ProtocolError::DistSim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ProtocolError {
    fn from(e: CoreError) -> Self {
        ProtocolError::Core(e)
    }
}

impl From<TimeSeriesError> for ProtocolError {
    fn from(e: TimeSeriesError) -> Self {
        ProtocolError::TimeSeries(e)
    }
}

impl From<DistSimError> for ProtocolError {
    fn from(e: DistSimError) -> Self {
        ProtocolError::DistSim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_chained() {
        let err = ProtocolError::from(CoreError::ZeroDenominator);
        assert!(err.source().is_some());
        assert!(ProtocolError::EmptyQuery.source().is_none());
    }

    #[test]
    fn display_is_informative() {
        assert!(ProtocolError::ZeroQueryVolume.to_string().contains("zero"));
        let err = ProtocolError::invalid_config("b must be non-zero");
        assert!(err.to_string().contains("b must be non-zero"));
    }

    #[test]
    fn service_errors_name_their_tenant() {
        assert!(ProtocolError::DuplicateTenant { id: 7 }
            .to_string()
            .contains('7'));
        assert!(ProtocolError::UnknownTenant { id: 9 }
            .to_string()
            .contains('9'));
        let err = ProtocolError::checkpoint_mismatch("epoch 3 behind station epoch 5");
        assert!(err.to_string().contains("epoch 3 behind station epoch 5"));
        assert!(err.source().is_none());
    }
}
