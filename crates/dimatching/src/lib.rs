//! The **DI-matching** framework (ICDCS 2012 reproduction): distributed
//! incomplete pattern matching via a weighted Bloom filter.
//!
//! DI-matching answers top-K pattern queries over data that exists only as
//! per-station fragments, in three steps (Section IV of the paper):
//!
//! 1. **Data center, [`build_wbf`]** (Algorithm 1) — accumulate the query's
//!    local patterns, enumerate all `2^e − 1` subset-sum combinations,
//!    sample `b` points of each, weight each combination by its share of the
//!    global volume, and hash every sampled value (with its ε-tolerance
//!    band) into one [`WeightedBloomFilter`](dipm_core::WeightedBloomFilter)
//!    that is broadcast to every base station.
//! 2. **Base stations, [`scan_station`]** (Algorithm 2) — probe every local
//!    pattern; report `(ID, weight)` only when all probed bits are set and
//!    one weight is common to every sampled point.
//! 3. **Data center, [`aggregate_and_rank`]** (Algorithm 3) — sum weights
//!    per ID, discard sums above 1, rank descending, return the top-K.
//!
//! All three methods — WBF, the plain-Bloom baseline and the naive oracle —
//! are [`FilterStrategy`] implementations ([`Wbf`], [`Bloom`], [`Naive`])
//! running through the single generic, batch-first [`run_pipeline`] over
//! the simulated deployment of [`dipm_distsim`]: per-query filter sections
//! in one broadcast frame, hash-sharded stations ([`Shards`] /
//! [`BaseStation`]) scanned in **one pass per station per batch**, and one
//! ranking per query in the returned [`BatchOutcome`]. [`run_wbf`],
//! [`run_bloom`] and [`run_naive`] are thin single-outcome wrappers, and
//! [`evaluate`] scores any outcome against ground truth.
//!
//! # Example
//!
//! ```
//! use dipm_distsim::ExecutionMode;
//! use dipm_mobilenet::{ground_truth, Dataset};
//! use dipm_protocol::{evaluate, run_wbf, DiMatchingConfig, PatternQuery};
//!
//! # fn main() -> Result<(), dipm_protocol::ProtocolError> {
//! let dataset = Dataset::small(1);
//! let probe = dataset.users()[0];
//! let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())?;
//!
//! let config = DiMatchingConfig::default();
//! let outcome = run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Threaded, None)?;
//!
//! let relevant = ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
//! let score = evaluate(outcome.retrieved(), &relevant);
//! assert!(score.recall > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod basestation;
mod config;
mod datacenter;
mod error;
mod eval;
mod naive;
mod pipeline;
mod query;
mod result;
mod routing;
mod service;
mod strategy;
mod streaming;
pub mod wire;

pub use basestation::{
    scan_shard_bloom, scan_shard_wbf, scan_shard_wbf_topk, scan_station, scan_station_bloom,
    BaseStation, Shards, WbfScanFilter, WbfScanSection, WeightReport, BLOCK_ROWS,
};
pub use config::{AdmissionPolicy, DiMatchingConfig, HashScheme, RoutingPolicy, ScanAlgorithm};
pub use datacenter::{
    aggregate_and_rank, build_bloom, build_wbf, BuildStats, BuiltBloom, BuiltFilter, RankedUser,
};
pub use error::{ProtocolError, Result};
pub use eval::{evaluate, Effectiveness};
pub use naive::{run_naive, Naive};
pub use pipeline::{run_bloom, run_pipeline, run_wbf, PipelineOptions, SectionGrouping};
pub use query::PatternQuery;
pub use result::{BatchOutcome, Method, MethodDetails, QueryOutcome, QueryVerdict};
pub use routing::RoutingTree;
pub use service::{Service, ServiceEpoch, TenantId};
pub use strategy::{Bloom, FilterStrategy, Wbf, WbfStationView};
pub use streaming::{
    run_streaming, EpochBroadcast, EpochOutcome, StationMemory, StreamQueryId, StreamingSession,
    StreamingUpdate,
};
