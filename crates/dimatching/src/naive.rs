//! The naive baseline (Approach 1 of Section III-C) as a
//! [`FilterStrategy`]: ship every station's raw data to the center and
//! match there.
//!
//! This is the accuracy gold standard — the center sees true global patterns
//! — but pays for it by moving the entire distributed corpus over the
//! network and storing it centrally. It broadcasts no filter
//! (`BROADCASTS = false`), its "scan" is a full shard dump, and its
//! aggregation reconstructs per-user globals and ranks by Chebyshev
//! distance per query.

use bytes::Bytes;
use dipm_distsim::{CostMeter, ExecutionMode, TrafficClass};
use dipm_mobilenet::{Dataset, UserId};
use dipm_timeseries::{chebyshev_distance, Pattern};

use crate::config::DiMatchingConfig;
use crate::error::Result;
use crate::pipeline::{run_pipeline, PipelineOptions, SectionGrouping};
use crate::query::PatternQuery;
use crate::result::{Method, MethodDetails, QueryOutcome, QueryVerdict};
use crate::strategy::FilterStrategy;
use crate::wire;

/// The ship-everything oracle method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Naive;

impl FilterStrategy for Naive {
    const METHOD: Method = Method::Naive;
    const BROADCASTS: bool = false;
    const REPORT_CLASS: TrafficClass = TrafficClass::Data;

    /// The query group's global patterns — kept at the center for the
    /// final matching; nothing is broadcast.
    type BuiltFilter = Vec<Pattern>;
    type Decoded = ();
    type StationReport = (UserId, Pattern);

    fn build(queries: &[PatternQuery], _config: &DiMatchingConfig) -> Result<Self::BuiltFilter> {
        Ok(queries.iter().map(|q| q.global().clone()).collect())
    }

    fn routing_keys(_built: &Self::BuiltFilter) -> &[u64] {
        // The oracle broadcasts nothing, so there is nothing to route: every
        // station ships its data whatever the query set.
        &[]
    }

    fn encode_filter(_built: &Self::BuiltFilter) -> Result<Bytes> {
        Ok(Bytes::new())
    }

    fn decode_filter(_bytes: Bytes) -> Result<Self::Decoded> {
        Ok(())
    }

    fn scan_shard(
        _sections: &[(u32, Self::Decoded)],
        shard: &[(UserId, &Pattern)],
        _config: &DiMatchingConfig,
        _meter: Option<&CostMeter>,
    ) -> Result<Vec<Self::StationReport>> {
        // The whole shard ships, once per batch — the method is oblivious
        // to how many queries the batch carries.
        Ok(shard
            .iter()
            .map(|&(user, pattern)| (user, pattern.clone()))
            .collect())
    }

    fn report_key(report: &Self::StationReport) -> (u32, UserId) {
        (0, report.0)
    }

    fn encode_reports(reports: &[Self::StationReport]) -> Result<Bytes> {
        wire::encode_station_data(reports.iter().map(|(u, p)| (*u, p)))
    }

    fn decode_reports(payload: Bytes) -> Result<Vec<Self::StationReport>> {
        wire::decode_station_data(payload)
    }

    fn record_center_storage(
        meter: &CostMeter,
        received_bytes: u64,
        _reports: &[Self::StationReport],
    ) {
        // The center stores everything it received.
        meter.record_storage(received_bytes);
    }

    fn aggregate(
        sections: &[Self::BuiltFilter],
        reports: Vec<Self::StationReport>,
        config: &DiMatchingConfig,
        meter: &CostMeter,
        top_k: Option<usize>,
    ) -> Result<Vec<QueryVerdict>> {
        // The center aggregates global patterns from the shipped fragments…
        let mut globals: std::collections::BTreeMap<UserId, Pattern> =
            std::collections::BTreeMap::new();
        for (user, fragment) in reports {
            match globals.remove(&user) {
                Some(existing) => {
                    globals.insert(user, existing.checked_add(&fragment)?);
                }
                None => {
                    globals.insert(user, fragment);
                }
            }
        }
        // …and matches every query global against every user global.
        Ok(sections
            .iter()
            .map(|query_globals| {
                let mut best: std::collections::BTreeMap<UserId, u64> =
                    std::collections::BTreeMap::new();
                for query_global in query_globals {
                    for (&user, global) in &globals {
                        meter.record_comparisons(1);
                        if let Some(d) = chebyshev_distance(global, query_global) {
                            if d <= config.eps {
                                best.entry(user)
                                    .and_modify(|cur| *cur = (*cur).min(d))
                                    .or_insert(d);
                            }
                        }
                    }
                }
                let mut distances: Vec<(UserId, u64)> = best.into_iter().collect();
                distances.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                if let Some(k) = top_k {
                    distances.truncate(k);
                }
                QueryVerdict {
                    ranked: distances.iter().map(|&(u, _)| u).collect(),
                    details: MethodDetails::Naive { distances },
                }
            })
            .collect())
    }
}

/// Runs the naive method: every station ships all `(user, local pattern)`
/// data to the center, which aggregates per-user globals and retrieves the
/// users within `eps` of any query global, ranked by ascending Chebyshev
/// distance (exact matches first).
///
/// Thin wrapper over [`run_pipeline::<Naive>`](run_pipeline) with an
/// unsharded layout, merged into one outcome.
///
/// # Errors
///
/// Propagates pattern and network errors.
pub fn run_naive(
    dataset: &Dataset,
    queries: &[PatternQuery],
    eps: u64,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let config = DiMatchingConfig {
        eps,
        ..DiMatchingConfig::default()
    };
    let options = PipelineOptions {
        mode,
        top_k,
        grouping: SectionGrouping::Merged,
        ..PipelineOptions::default()
    };
    Ok(run_pipeline::<Naive>(dataset, queries, &config, &options)?.into_merged(top_k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dipm_mobilenet::ground_truth;

    fn probe_query(dataset: &Dataset, user_index: usize) -> PatternQuery {
        let user = dataset.users()[user_index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    #[test]
    fn naive_retrieves_exactly_the_ground_truth() {
        let dataset = Dataset::small(31);
        let query = probe_query(&dataset, 0);
        let eps = 3;
        let outcome = run_naive(
            &dataset,
            std::slice::from_ref(&query),
            eps,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let relevant = ground_truth::eps_similar_users(&dataset, query.global(), eps);
        let retrieved: std::collections::BTreeSet<UserId> =
            outcome.ranked.iter().copied().collect();
        assert_eq!(retrieved, relevant, "naive must be exact");
    }

    #[test]
    fn naive_ranks_exact_match_first() {
        let dataset = Dataset::small(32);
        let query = probe_query(&dataset, 0);
        let outcome = run_naive(&dataset, &[query], 4, ExecutionMode::Sequential, None).unwrap();
        let MethodDetails::Naive { distances } = &outcome.details else {
            panic!("wrong detail variant");
        };
        assert!(distances.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(distances[0].1, 0, "probe user matches exactly");
    }

    #[test]
    fn naive_ships_the_whole_corpus() {
        let dataset = Dataset::small(33);
        let query = probe_query(&dataset, 0);
        let outcome = run_naive(&dataset, &[query], 2, ExecutionMode::Sequential, None).unwrap();
        // Data traffic dominates and equals stored bytes at the center.
        assert!(outcome.cost.data_bytes > 0);
        assert_eq!(outcome.cost.data_bytes, outcome.cost.storage_bytes);
        assert_eq!(outcome.cost.query_bytes, 0);
        // Shipment is at least the raw corpus size (headers add a little).
        assert!(outcome.cost.data_bytes >= dataset.raw_data_bytes());
    }

    #[test]
    fn naive_threaded_matches_sequential() {
        let dataset = Dataset::small(34);
        let query = probe_query(&dataset, 2);
        let seq = run_naive(
            &dataset,
            std::slice::from_ref(&query),
            3,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let thr = run_naive(&dataset, &[query], 3, ExecutionMode::Threaded, None).unwrap();
        assert_eq!(seq.ranked, thr.ranked);
    }

    #[test]
    fn naive_batch_ships_the_corpus_once() {
        // The oracle's cost is batch-oblivious: five queries move exactly
        // as many data bytes as one.
        let dataset = Dataset::small(36);
        let one = run_naive(
            &dataset,
            &[probe_query(&dataset, 0)],
            3,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let five: Vec<PatternQuery> = (0..5).map(|i| probe_query(&dataset, i)).collect();
        let many = run_naive(&dataset, &five, 3, ExecutionMode::Sequential, None).unwrap();
        assert_eq!(one.cost.data_bytes, many.cost.data_bytes);
        assert_eq!(one.cost.scan_passes, many.cost.scan_passes);
    }

    #[test]
    fn naive_top_k() {
        let dataset = Dataset::small(35);
        let query = probe_query(&dataset, 0);
        let outcome =
            run_naive(&dataset, &[query], 10, ExecutionMode::Sequential, Some(3)).unwrap();
        assert!(outcome.ranked.len() <= 3);
    }
}
