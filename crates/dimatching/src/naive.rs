//! The naive baseline (Approach 1 of Section III-C): ship every station's
//! raw data to the center and match there.
//!
//! This is the accuracy gold standard — the center sees true global patterns
//! — but pays for it by moving the entire distributed corpus over the
//! network and storing it centrally.

use std::collections::BTreeMap;
use std::time::Instant;

use dipm_distsim::{run_stations, ExecutionMode, Network, NodeId, TrafficClass, DATA_CENTER};
use dipm_mobilenet::{Dataset, StationId, UserId};
use dipm_timeseries::{chebyshev_distance, Pattern};

use crate::error::Result;
use crate::query::PatternQuery;
use crate::result::{Method, MethodDetails, QueryOutcome};
use crate::wire;

/// Runs the naive method: every station ships all `(user, local pattern)`
/// data to the center, which aggregates per-user globals and retrieves the
/// users within `eps` of any query global, ranked by ascending Chebyshev
/// distance (exact matches first).
///
/// # Errors
///
/// Propagates pattern and network errors.
pub fn run_naive(
    dataset: &Dataset,
    queries: &[PatternQuery],
    eps: u64,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let start = Instant::now();
    let network = Network::new();
    let center = network.register(DATA_CENTER)?;
    let stations: Vec<(StationId, NodeId)> = dataset
        .stations()
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, NodeId::base_station(i as u32)))
        .collect();
    for &(_, node) in &stations {
        network.register(node)?;
    }

    // Every station ships its whole local store.
    let results = run_stations(mode, &stations, |_, &(station, node)| {
        let payload = match dataset.station_locals(station) {
            Some(patterns) => wire::encode_station_data(patterns.iter().map(|(&u, p)| (u, p))),
            None => wire::encode_station_data(std::iter::empty()),
        };
        network.send(node, DATA_CENTER, TrafficClass::Data, payload)
    });
    for r in results {
        r?;
    }

    // The center aggregates global patterns from the shipped fragments…
    let mut globals: BTreeMap<UserId, Pattern> = BTreeMap::new();
    let mut received_bytes = 0u64;
    for envelope in center.drain() {
        received_bytes += envelope.payload.len() as u64;
        for (user, fragment) in wire::decode_station_data(envelope.payload)? {
            match globals.remove(&user) {
                Some(existing) => {
                    globals.insert(user, existing.checked_add(&fragment)?);
                }
                None => {
                    globals.insert(user, fragment);
                }
            }
        }
    }
    // …and stores everything it received.
    network.meter().record_storage(received_bytes);

    // Centralized matching: every query global against every user global.
    let mut best: BTreeMap<UserId, u64> = BTreeMap::new();
    for query in queries {
        for (&user, global) in &globals {
            network.meter().record_comparisons(1);
            if let Some(d) = chebyshev_distance(global, query.global()) {
                if d <= eps {
                    best.entry(user)
                        .and_modify(|cur| *cur = (*cur).min(d))
                        .or_insert(d);
                }
            }
        }
    }
    let mut distances: Vec<(UserId, u64)> = best.into_iter().collect();
    distances.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    if let Some(k) = top_k {
        distances.truncate(k);
    }

    Ok(QueryOutcome {
        method: Method::Naive,
        ranked: distances.iter().map(|&(u, _)| u).collect(),
        details: MethodDetails::Naive { distances },
        cost: network.meter().report(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dipm_mobilenet::ground_truth;

    fn probe_query(dataset: &Dataset, user_index: usize) -> PatternQuery {
        let user = dataset.users()[user_index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    #[test]
    fn naive_retrieves_exactly_the_ground_truth() {
        let dataset = Dataset::small(31);
        let query = probe_query(&dataset, 0);
        let eps = 3;
        let outcome = run_naive(
            &dataset,
            std::slice::from_ref(&query),
            eps,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let relevant = ground_truth::eps_similar_users(&dataset, query.global(), eps);
        let retrieved: std::collections::BTreeSet<UserId> =
            outcome.ranked.iter().copied().collect();
        assert_eq!(retrieved, relevant, "naive must be exact");
    }

    #[test]
    fn naive_ranks_exact_match_first() {
        let dataset = Dataset::small(32);
        let query = probe_query(&dataset, 0);
        let outcome = run_naive(&dataset, &[query], 4, ExecutionMode::Sequential, None).unwrap();
        let MethodDetails::Naive { distances } = &outcome.details else {
            panic!("wrong detail variant");
        };
        assert!(distances.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(distances[0].1, 0, "probe user matches exactly");
    }

    #[test]
    fn naive_ships_the_whole_corpus() {
        let dataset = Dataset::small(33);
        let query = probe_query(&dataset, 0);
        let outcome = run_naive(&dataset, &[query], 2, ExecutionMode::Sequential, None).unwrap();
        // Data traffic dominates and equals stored bytes at the center.
        assert!(outcome.cost.data_bytes > 0);
        assert_eq!(outcome.cost.data_bytes, outcome.cost.storage_bytes);
        assert_eq!(outcome.cost.query_bytes, 0);
        // Shipment is at least the raw corpus size (headers add a little).
        assert!(outcome.cost.data_bytes >= dataset.raw_data_bytes());
    }

    #[test]
    fn naive_threaded_matches_sequential() {
        let dataset = Dataset::small(34);
        let query = probe_query(&dataset, 2);
        let seq = run_naive(
            &dataset,
            std::slice::from_ref(&query),
            3,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let thr = run_naive(&dataset, &[query], 3, ExecutionMode::Threaded, None).unwrap();
        assert_eq!(seq.ranked, thr.ranked);
    }

    #[test]
    fn naive_top_k() {
        let dataset = Dataset::small(35);
        let query = probe_query(&dataset, 0);
        let outcome =
            run_naive(&dataset, &[query], 10, ExecutionMode::Sequential, Some(3)).unwrap();
        assert!(outcome.ranked.len() <= 3);
    }
}
