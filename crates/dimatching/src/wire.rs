//! Wire encodings for protocol messages.
//!
//! Station reports and raw-data shipments are encoded into real byte buffers
//! so the metered communication costs (Fig. 4c) reflect honest message
//! sizes, and the center does honest decode work.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dipm_core::Weight;
use dipm_mobilenet::UserId;
use dipm_timeseries::Pattern;

use crate::error::{ProtocolError, Result};

/// Frames a batch broadcast: one strategy-encoded filter section per query,
/// each tagged with its query id (`u32` section count, then per section
/// `{query id u32, len u32, bytes×len}`).
///
/// The sections are opaque to the frame — WBF sections carry query volumes
/// plus a weighted filter, Bloom sections a plain filter — so one frame
/// layout serves every [`FilterStrategy`](crate::FilterStrategy), and every
/// framing byte still crosses the metered network (Fig. 4c stays honest).
pub fn encode_batch_broadcast(sections: &[(u32, Bytes)]) -> Bytes {
    let body: usize = sections.iter().map(|(_, b)| 8 + b.len()).sum();
    let mut buf = BytesMut::with_capacity(4 + body);
    buf.put_u32_le(sections.len() as u32);
    for (query, bytes) in sections {
        buf.put_u32_le(*query);
        buf.put_u32_le(bytes.len() as u32);
        buf.extend_from_slice(bytes);
    }
    buf.freeze()
}

/// Splits a batch-broadcast frame back into `(query id, section bytes)`
/// pairs.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on a truncated header or
/// section, and on duplicate query ids (a station must never scan the same
/// query twice in one pass). The declared section count is validated against
/// the remaining bytes before any allocation.
pub fn decode_batch_broadcast(mut data: Bytes) -> Result<Vec<(u32, Bytes)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated batch header"));
    }
    let count = data.get_u32_le() as usize;
    // Every section takes at least 8 header bytes; reject impossible counts
    // before allocating.
    if data.remaining() < count.saturating_mul(8) {
        return Err(ProtocolError::malformed_report("truncated batch sections"));
    }
    let mut out: Vec<(u32, Bytes)> = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 8 {
            return Err(ProtocolError::malformed_report("truncated section header"));
        }
        let query = data.get_u32_le();
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(ProtocolError::malformed_report("truncated section body"));
        }
        if out.iter().any(|(q, _)| *q == query) {
            return Err(ProtocolError::malformed_report("duplicate query id"));
        }
        let section = data.slice(0..len);
        data.advance(len);
        out.push((query, section));
    }
    Ok(out)
}

/// One decoded station batch-report frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportFrame {
    /// The reporting station's index, as declared on the wire.
    pub station: u32,
    /// Virtual tick at which the station sent the report (`0` outside the
    /// latency-modeled async runtime).
    pub sent_tick: u64,
    /// The strategy-encoded report payload.
    pub payload: Bytes,
}

/// Frames a station's batch report: the station's shard count, its station
/// id and the virtual send tick, followed by the strategy-encoded report
/// payload.
///
/// The 16-byte header is a protocol sanity check three ways: the center
/// configured the deployment's shard layout, so a station reporting under a
/// different `shard_count` indicates a rebalance race; the `station` id lets
/// the center reject duplicate reports instead of double-counting a
/// retransmit; and the `sent_tick` stamp lets it reject out-of-order
/// arrivals (the simulated network delivers in send order, so a regression
/// indicates corruption). All validation lives in [`ReportCollector`].
pub fn encode_batch_reports(
    shard_count: u32,
    station: u32,
    sent_tick: u64,
    payload: Bytes,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + payload.len());
    buf.put_u32_le(shard_count);
    buf.put_u32_le(station);
    buf.put_u64_le(sent_tick);
    buf.extend_from_slice(&payload);
    buf.freeze()
}

/// Unwraps a batch-report frame, validating the station's declared shard
/// count against the deployment's configured one.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a shard-count
/// mismatch.
pub fn decode_batch_reports(mut data: Bytes, expected_shards: u32) -> Result<ReportFrame> {
    if data.remaining() < 16 {
        return Err(ProtocolError::malformed_report(
            "truncated batch report header",
        ));
    }
    let declared = data.get_u32_le();
    if declared != expected_shards {
        return Err(ProtocolError::malformed_report(format!(
            "shard-count mismatch: station declared {declared}, center expects {expected_shards}"
        )));
    }
    let station = data.get_u32_le();
    let sent_tick = data.get_u64_le();
    Ok(ReportFrame {
        station,
        sent_tick,
        payload: data,
    })
}

/// Center-side admission control for station report frames.
///
/// Wraps [`decode_batch_reports`] with the cross-frame checks a single
/// decode cannot make: each station may report **once** per batch (a
/// duplicate or retransmit must error, never double-count), the station id
/// must belong to the deployment, a frame cannot claim to have been sent
/// *after* it was delivered, and delivery ticks must be non-decreasing in
/// admission order (the center works through its inbox in modeled arrival
/// order, so a regression means the transport corrupted the queue — note
/// that **send** ticks may legitimately regress across stations, since a
/// small report on a slow link overtakes nothing).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use dipm_protocol::wire::{encode_batch_reports, ReportCollector};
///
/// let mut collector = ReportCollector::new(1, 4);
/// let frame = encode_batch_reports(1, 2, 10, Bytes::from_static(b"rows"));
/// let accepted = collector.accept(frame.clone(), 25).unwrap();
/// assert_eq!(accepted.station, 2);
/// // The same station reporting again is rejected, not double-counted.
/// assert!(collector.accept(frame, 26).is_err());
/// ```
#[derive(Debug)]
pub struct ReportCollector {
    expected_shards: u32,
    station_count: u32,
    seen: std::collections::BTreeSet<u32>,
    last_delivered: u64,
}

impl ReportCollector {
    /// A collector for a deployment of `station_count` stations sharded
    /// `expected_shards` ways.
    pub fn new(expected_shards: u32, station_count: u32) -> ReportCollector {
        ReportCollector {
            expected_shards,
            station_count,
            seen: std::collections::BTreeSet::new(),
            last_delivered: 0,
        }
    }

    /// Decodes and admits one report frame delivered at `delivered_tick`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] on truncation, a
    /// shard-count mismatch, or any [`ReportCollector::admit`] rejection.
    pub fn accept(&mut self, data: Bytes, delivered_tick: u64) -> Result<ReportFrame> {
        let frame = decode_batch_reports(data, self.expected_shards)?;
        self.admit(&frame, delivered_tick)?;
        Ok(frame)
    }

    /// Admits an already-decoded frame delivered at `delivered_tick`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] on an out-of-range or
    /// duplicate station id, a send tick later than the delivery tick, or a
    /// delivery tick older than the previously admitted frame's. A rejected
    /// frame leaves the collector untouched, so its rows can never be
    /// counted.
    pub fn admit(&mut self, frame: &ReportFrame, delivered_tick: u64) -> Result<()> {
        if frame.station >= self.station_count {
            return Err(ProtocolError::malformed_report(format!(
                "report from unknown station {} (deployment has {})",
                frame.station, self.station_count
            )));
        }
        if self.seen.contains(&frame.station) {
            return Err(ProtocolError::malformed_report(format!(
                "duplicate report from station {}",
                frame.station
            )));
        }
        if frame.sent_tick > delivered_tick {
            return Err(ProtocolError::malformed_report(format!(
                "station {} report delivered at tick {} before it was sent at tick {}",
                frame.station, delivered_tick, frame.sent_tick
            )));
        }
        if delivered_tick < self.last_delivered {
            return Err(ProtocolError::malformed_report(format!(
                "out-of-order report arrival: station {} delivered at tick {} after tick {}",
                frame.station, delivered_tick, self.last_delivered
            )));
        }
        // Admit only after every check passed, so a rejected frame leaves
        // the collector untouched.
        self.seen.insert(frame.station);
        self.last_delivered = delivered_tick;
        Ok(())
    }

    /// How many stations have reported so far.
    pub fn accepted(&self) -> usize {
        self.seen.len()
    }
}

/// Encodes query-tagged `(query, user, weight)` reports: `u32` count then
/// `{query u32, id u64, num u64, den u64}` per entry (28 bytes/candidate).
pub fn encode_tagged_weight_reports(reports: &[(u32, UserId, Weight)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 28);
    buf.put_u32_le(reports.len() as u32);
    for (query, user, weight) in reports {
        buf.put_u32_le(*query);
        buf.put_u64_le(user.0);
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    buf.freeze()
}

/// Decodes a query-tagged weight-report payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a zero
/// denominator.
pub fn decode_tagged_weight_reports(mut data: Bytes) -> Result<Vec<(u32, UserId, Weight)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated report count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(28) {
        return Err(ProtocolError::malformed_report("truncated report entries"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let query = data.get_u32_le();
        let user = UserId(data.get_u64_le());
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        out.push((query, user, weight));
    }
    Ok(out)
}

/// Encodes query-tagged candidate ids (the Bloom baseline's batch reports):
/// `u32` count then `{query u32, id u64}` per entry.
pub fn encode_tagged_id_reports(reports: &[(u32, UserId)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 12);
    buf.put_u32_le(reports.len() as u32);
    for (query, user) in reports {
        buf.put_u32_le(*query);
        buf.put_u64_le(user.0);
    }
    buf.freeze()
}

/// Decodes a query-tagged id payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_tagged_id_reports(mut data: Bytes) -> Result<Vec<(u32, UserId)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated id count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report("truncated id entries"));
    }
    Ok((0..count)
        .map(|_| (data.get_u32_le(), UserId(data.get_u64_le())))
        .collect())
}

/// Frames a filter broadcast: the per-query global volumes followed by the
/// encoded filter (`u32` count, `u64`×count totals, filter bytes).
pub fn encode_filter_broadcast(query_totals: &[u64], filter: Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + query_totals.len() * 8 + filter.len());
    buf.put_u32_le(query_totals.len() as u32);
    for &t in query_totals {
        buf.put_u64_le(t);
    }
    buf.extend_from_slice(&filter);
    buf.freeze()
}

/// Splits a filter-broadcast frame back into query volumes and filter bytes.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_filter_broadcast(mut data: Bytes) -> Result<(Vec<u64>, Bytes)> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated broadcast header",
        ));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 8 {
        return Err(ProtocolError::malformed_report("truncated query volumes"));
    }
    let totals = (0..count).map(|_| data.get_u64_le()).collect();
    Ok((totals, data))
}

/// Encodes `(user, weight)` reports: `u32` count then
/// `{id u64, num u64, den u64}` per entry (24 bytes/candidate — the
/// communication saving DI-matching claims over shipping patterns).
pub fn encode_weight_reports(reports: &[(UserId, Weight)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 24);
    buf.put_u32_le(reports.len() as u32);
    for (user, weight) in reports {
        buf.put_u64_le(user.0);
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    buf.freeze()
}

/// Decodes a weight-report payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a zero
/// denominator.
pub fn decode_weight_reports(mut data: Bytes) -> Result<Vec<(UserId, Weight)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated report count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 24 {
        return Err(ProtocolError::malformed_report("truncated report entries"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let user = UserId(data.get_u64_le());
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        out.push((user, weight));
    }
    Ok(out)
}

/// Encodes bare candidate IDs (the Bloom baseline's reports): `u32` count
/// then `u64` per id.
pub fn encode_id_reports(ids: &[UserId]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + ids.len() * 8);
    buf.put_u32_le(ids.len() as u32);
    for id in ids {
        buf.put_u64_le(id.0);
    }
    buf.freeze()
}

/// Decodes a bare-ID payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_id_reports(mut data: Bytes) -> Result<Vec<UserId>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated id count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 8 {
        return Err(ProtocolError::malformed_report("truncated id entries"));
    }
    Ok((0..count).map(|_| UserId(data.get_u64_le())).collect())
}

/// Encodes a station's full local data (the naive method's shipment):
/// `u32` user count, then per user `{id u64, len u32, values u64×len}`.
pub fn encode_station_data<'a, I>(entries: I) -> Bytes
where
    I: IntoIterator<Item = (UserId, &'a Pattern)>,
{
    let mut buf = BytesMut::new();
    let mut count = 0u32;
    let mut body = BytesMut::new();
    for (user, pattern) in entries {
        body.put_u64_le(user.0);
        body.put_u32_le(pattern.len() as u32);
        for v in pattern.iter() {
            body.put_u64_le(v);
        }
        count += 1;
    }
    buf.put_u32_le(count);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Decodes a naive-method data shipment.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_station_data(mut data: Bytes) -> Result<Vec<(UserId, Pattern)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated user count"));
    }
    let count = data.get_u32_le() as usize;
    // Every entry takes at least 12 bytes; reject impossible counts before
    // allocating (a malicious count must not drive `with_capacity`).
    if data.remaining() < count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report("truncated station data"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 12 {
            return Err(ProtocolError::malformed_report("truncated user header"));
        }
        let user = UserId(data.get_u64_le());
        let len = data.get_u32_le() as usize;
        if data.remaining() < len * 8 {
            return Err(ProtocolError::malformed_report("truncated pattern values"));
        }
        let values: Vec<u64> = (0..len).map(|_| data.get_u64_le()).collect();
        out.push((user, Pattern::new(values)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn weight_reports_roundtrip() {
        let reports = vec![
            (UserId(1), w(1, 3)),
            (UserId(999), Weight::ONE),
            (UserId(42), w(7, 9)),
        ];
        let encoded = encode_weight_reports(&reports);
        assert_eq!(encoded.len(), 4 + 3 * 24);
        assert_eq!(decode_weight_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn empty_reports_roundtrip() {
        assert!(decode_weight_reports(encode_weight_reports(&[]))
            .unwrap()
            .is_empty());
        assert!(decode_id_reports(encode_id_reports(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn id_reports_roundtrip() {
        let ids = vec![UserId(3), UserId(1), UserId(4)];
        let encoded = encode_id_reports(&ids);
        assert_eq!(encoded.len(), 4 + 3 * 8);
        assert_eq!(decode_id_reports(encoded).unwrap(), ids);
    }

    #[test]
    fn station_data_roundtrip() {
        let p1 = Pattern::from([1u64, 2, 3]);
        let p2 = Pattern::from([0u64; 5]);
        let encoded = encode_station_data(vec![(UserId(1), &p1), (UserId(2), &p2)]);
        let decoded = decode_station_data(encoded).unwrap();
        assert_eq!(decoded, vec![(UserId(1), p1), (UserId(2), p2)]);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let reports = vec![(UserId(1), w(1, 2))];
        let encoded = encode_weight_reports(&reports);
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert!(decode_weight_reports(encoded.slice(0..cut)).is_err());
        }
        let p = Pattern::from([1u64, 2]);
        let data = encode_station_data(vec![(UserId(1), &p)]);
        for cut in [0, 3, 10, data.len() - 1] {
            assert!(decode_station_data(data.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn zero_denominator_rejected() {
        let mut raw = encode_weight_reports(&[(UserId(1), w(1, 2))]).to_vec();
        // Denominator is the last 8 bytes; zero it.
        let n = raw.len();
        raw[n - 8..].fill(0);
        assert!(decode_weight_reports(Bytes::from(raw)).is_err());
    }

    #[test]
    fn filter_broadcast_roundtrip() {
        let filter_bytes = Bytes::from_static(b"FILTERPAYLOAD");
        let framed = encode_filter_broadcast(&[100, 250], filter_bytes.clone());
        let (totals, rest) = decode_filter_broadcast(framed).unwrap();
        assert_eq!(totals, vec![100, 250]);
        assert_eq!(rest, filter_bytes);
        assert!(decode_filter_broadcast(Bytes::from_static(b"\x01")).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrip() {
        let sections = vec![
            (0u32, Bytes::from_static(b"SECTION-A")),
            (1u32, Bytes::from_static(b"")),
            (7u32, Bytes::from_static(b"SECTION-C-LONGER")),
        ];
        let framed = encode_batch_broadcast(&sections);
        assert_eq!(framed.len(), 4 + sections.len() * 8 + 9 + 16);
        assert_eq!(decode_batch_broadcast(framed).unwrap(), sections);
        assert!(decode_batch_broadcast(encode_batch_broadcast(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_broadcast_rejects_duplicate_query_ids() {
        let framed =
            encode_batch_broadcast(&[(3, Bytes::from_static(b"x")), (3, Bytes::from_static(b"y"))]);
        assert!(decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn batch_broadcast_rejects_truncation() {
        let framed = encode_batch_broadcast(&[(0, Bytes::from_static(b"PAYLOAD"))]);
        for cut in [0, 3, 7, framed.len() - 1] {
            assert!(decode_batch_broadcast(framed.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn batch_reports_validate_shard_count() {
        let framed = encode_batch_reports(4, 7, 1234, Bytes::from_static(b"inner"));
        let frame = decode_batch_reports(framed.clone(), 4).unwrap();
        assert_eq!(frame.station, 7);
        assert_eq!(frame.sent_tick, 1234);
        assert_eq!(frame.payload.as_ref(), b"inner");
        assert!(decode_batch_reports(framed, 2).is_err());
        assert!(decode_batch_reports(Bytes::from_static(b"\x01"), 1).is_err());
    }

    #[test]
    fn report_collector_rejects_structural_lies() {
        let mut collector = ReportCollector::new(2, 3);
        let ok = collector
            .accept(encode_batch_reports(2, 0, 5, Bytes::from_static(b"a")), 9)
            .unwrap();
        assert_eq!((ok.station, ok.sent_tick), (0, 5));
        // Duplicate station (a retransmit must never double-count).
        assert!(collector
            .accept(encode_batch_reports(2, 0, 6, Bytes::from_static(b"b")), 10)
            .is_err());
        // Out-of-order arrival (delivery-tick regression).
        assert!(collector
            .accept(encode_batch_reports(2, 1, 4, Bytes::from_static(b"c")), 8)
            .is_err());
        // Delivered before it was sent.
        assert!(collector
            .accept(encode_batch_reports(2, 1, 30, Bytes::from_static(b"t")), 20)
            .is_err());
        // Unknown station id.
        assert!(collector
            .accept(encode_batch_reports(2, 9, 8, Bytes::from_static(b"d")), 11)
            .is_err());
        // Shard-count mismatch still caught underneath.
        assert!(collector
            .accept(encode_batch_reports(1, 1, 8, Bytes::from_static(b"e")), 11)
            .is_err());
        // A rejected frame leaves no trace: the same station admits cleanly,
        // and a *send* tick older than an earlier station's is legal (a
        // small report on a slow link regresses nothing).
        assert!(collector
            .accept(encode_batch_reports(2, 1, 3, Bytes::from_static(b"f")), 11)
            .is_ok());
        assert_eq!(collector.accepted(), 2);
    }

    #[test]
    fn tagged_weight_reports_roundtrip() {
        let reports = vec![
            (0u32, UserId(1), w(1, 3)),
            (2u32, UserId(999), Weight::ONE),
            (2u32, UserId(42), w(7, 9)),
        ];
        let encoded = encode_tagged_weight_reports(&reports);
        assert_eq!(encoded.len(), 4 + 3 * 28);
        assert_eq!(decode_tagged_weight_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn tagged_id_reports_roundtrip() {
        let reports = vec![(0u32, UserId(3)), (1u32, UserId(1)), (0u32, UserId(4))];
        let encoded = encode_tagged_id_reports(&reports);
        assert_eq!(encoded.len(), 4 + 3 * 12);
        assert_eq!(decode_tagged_id_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn tagged_decoders_reject_truncation_and_zero_denominators() {
        let encoded = encode_tagged_weight_reports(&[(0, UserId(1), w(1, 2))]);
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert!(decode_tagged_weight_reports(encoded.slice(0..cut)).is_err());
        }
        let mut raw = encoded.to_vec();
        let n = raw.len();
        raw[n - 8..].fill(0);
        assert!(decode_tagged_weight_reports(Bytes::from(raw)).is_err());
        let ids = encode_tagged_id_reports(&[(0, UserId(1))]);
        for cut in [0, 3, ids.len() - 1] {
            assert!(decode_tagged_id_reports(ids.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn weight_report_is_much_smaller_than_pattern_shipment() {
        // The core communication claim: 24 bytes per candidate vs a full
        // pattern (8 bytes × intervals) per user.
        let long = Pattern::from(vec![5u64; 336]); // one week at 30-min slots
        let shipment = encode_station_data(vec![(UserId(1), &long)]);
        let report = encode_weight_reports(&[(UserId(1), Weight::ONE)]);
        assert!(report.len() * 50 < shipment.len());
    }
}
