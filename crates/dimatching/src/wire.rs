//! Wire encodings for protocol messages.
//!
//! Station reports and raw-data shipments are encoded into real byte buffers
//! so the metered communication costs (Fig. 4c) reflect honest message
//! sizes, and the center does honest decode work.
//!
//! Two hardening rules hold across the whole module:
//!
//! * **length prefixes never truncate** — every element count crosses
//!   [`frame_count`], so an impossible frame errors at the encoder instead
//!   of writing a prefix that lies about the body;
//! * **decoders consume frames exactly** — bytes left over after the
//!   declared counts are a framing bug or corruption and are rejected, never
//!   silently ignored (the only exceptions are frames whose *final* field is
//!   defined as "the rest of the buffer": the report payload of
//!   [`decode_batch_reports`] and the filter bytes of
//!   [`decode_filter_broadcast`], both of which are validated exhaustively
//!   by their inner decoders).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dipm_core::{encode, BloomFilter, WbfFrameView, Weight, WeightDiff, WeightSet};
use dipm_mobilenet::UserId;
use dipm_timeseries::Pattern;

use crate::error::{ProtocolError, Result};

/// Bounds an element count to the wire format's `u32` length prefix.
///
/// Every encoder in this module routes its counts through here instead of a
/// truncating `as u32` cast. The overflow is impractical to provoke with
/// real allocations (> 4 Gi elements), which is exactly why the guard is a
/// separate, directly testable function.
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] when `len` exceeds `u32::MAX`.
pub fn frame_count(len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| {
        ProtocolError::frame_too_large(format!(
            "{len} elements exceed the u32 length prefix (max {})",
            u32::MAX
        ))
    })
}

/// Rejects bytes left over after a frame's declared contents.
fn expect_consumed(data: &Bytes, frame: &str) -> Result<()> {
    if data.remaining() > 0 {
        return Err(ProtocolError::malformed_report(format!(
            "{} trailing bytes after {frame}",
            data.remaining()
        )));
    }
    Ok(())
}

/// Frames a batch broadcast: one strategy-encoded filter section per query,
/// each tagged with its query id (`u32` section count, then per section
/// `{query id u32, len u32, bytes×len}`).
///
/// The sections are opaque to the frame — WBF sections carry query volumes
/// plus a weighted filter, Bloom sections a plain filter — so one frame
/// layout serves every [`FilterStrategy`](crate::FilterStrategy), and every
/// framing byte still crosses the metered network (Fig. 4c stays honest).
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the section count or any
/// section length exceeds the `u32` prefix.
pub fn encode_batch_broadcast(sections: &[(u32, Bytes)]) -> Result<Bytes> {
    let body: usize = sections.iter().map(|(_, b)| 8 + b.len()).sum();
    let mut buf = BytesMut::with_capacity(4 + body);
    buf.put_u32_le(frame_count(sections.len())?);
    for (query, bytes) in sections {
        buf.put_u32_le(*query);
        buf.put_u32_le(frame_count(bytes.len())?);
        buf.extend_from_slice(bytes);
    }
    Ok(buf.freeze())
}

/// Splits a batch-broadcast frame back into `(query id, section bytes)`
/// pairs.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on a truncated header or
/// section, on duplicate query ids (a station must never scan the same
/// query twice in one pass), and on trailing bytes after the last declared
/// section. The declared section count is validated against the remaining
/// bytes before any allocation.
pub fn decode_batch_broadcast(mut data: Bytes) -> Result<Vec<(u32, Bytes)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated batch header"));
    }
    let count = data.get_u32_le() as usize;
    // Every section takes at least 8 header bytes; reject impossible counts
    // before allocating.
    if data.remaining() < count.saturating_mul(8) {
        return Err(ProtocolError::malformed_report("truncated batch sections"));
    }
    let mut out: Vec<(u32, Bytes)> = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 8 {
            return Err(ProtocolError::malformed_report("truncated section header"));
        }
        let query = data.get_u32_le();
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(ProtocolError::malformed_report("truncated section body"));
        }
        if out.iter().any(|(q, _)| *q == query) {
            return Err(ProtocolError::malformed_report("duplicate query id"));
        }
        let section = data.slice(0..len);
        data.advance(len);
        out.push((query, section));
    }
    expect_consumed(&data, "batch broadcast sections")?;
    Ok(out)
}

/// One decoded station batch-report frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportFrame {
    /// The reporting station's index, as declared on the wire.
    pub station: u32,
    /// Virtual tick at which the station sent the report (`0` outside the
    /// latency-modeled async runtime).
    pub sent_tick: u64,
    /// The strategy-encoded report payload.
    pub payload: Bytes,
}

/// Frames a station's batch report: the station's shard count, its station
/// id and the virtual send tick, followed by the strategy-encoded report
/// payload.
///
/// The 16-byte header is a protocol sanity check three ways: the center
/// configured the deployment's shard layout, so a station reporting under a
/// different `shard_count` indicates a rebalance race; the `station` id lets
/// the center reject duplicate reports instead of double-counting a
/// retransmit; and the `sent_tick` stamp lets it reject out-of-order
/// arrivals (the simulated network delivers in send order, so a regression
/// indicates corruption). All validation lives in [`ReportCollector`].
pub fn encode_batch_reports(
    shard_count: u32,
    station: u32,
    sent_tick: u64,
    payload: Bytes,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + payload.len());
    buf.put_u32_le(shard_count);
    buf.put_u32_le(station);
    buf.put_u64_le(sent_tick);
    buf.extend_from_slice(&payload);
    buf.freeze()
}

/// Unwraps a batch-report frame, validating the station's declared shard
/// count against the deployment's configured one.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a shard-count
/// mismatch.
pub fn decode_batch_reports(mut data: Bytes, expected_shards: u32) -> Result<ReportFrame> {
    if data.remaining() < 16 {
        return Err(ProtocolError::malformed_report(
            "truncated batch report header",
        ));
    }
    let declared = data.get_u32_le();
    if declared != expected_shards {
        return Err(ProtocolError::malformed_report(format!(
            "shard-count mismatch: station declared {declared}, center expects {expected_shards}"
        )));
    }
    let station = data.get_u32_le();
    let sent_tick = data.get_u64_le();
    Ok(ReportFrame {
        station,
        sent_tick,
        payload: data,
    })
}

/// Center-side admission control for station report frames.
///
/// Wraps [`decode_batch_reports`] with the cross-frame checks a single
/// decode cannot make: each station may report **once** per batch (a
/// duplicate or retransmit must error, never double-count), the station id
/// must belong to the deployment, a frame cannot claim to have been sent
/// *after* it was delivered, and delivery ticks must be non-decreasing in
/// admission order (the center works through its inbox in modeled arrival
/// order, so a regression means the transport corrupted the queue — note
/// that **send** ticks may legitimately regress across stations, since a
/// small report on a slow link overtakes nothing).
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use dipm_protocol::wire::{encode_batch_reports, ReportCollector};
///
/// let mut collector = ReportCollector::new(1, 4);
/// let frame = encode_batch_reports(1, 2, 10, Bytes::from_static(b"rows"));
/// let accepted = collector.accept(frame.clone(), 25).unwrap();
/// assert_eq!(accepted.station, 2);
/// // The same station reporting again is rejected, not double-counted.
/// assert!(collector.accept(frame, 26).is_err());
/// ```
#[derive(Debug)]
pub struct ReportCollector {
    expected_shards: u32,
    station_count: u32,
    seen: std::collections::BTreeSet<u32>,
    last_delivered: u64,
}

impl ReportCollector {
    /// A collector for a deployment of `station_count` stations sharded
    /// `expected_shards` ways.
    pub fn new(expected_shards: u32, station_count: u32) -> ReportCollector {
        ReportCollector {
            expected_shards,
            station_count,
            seen: std::collections::BTreeSet::new(),
            last_delivered: 0,
        }
    }

    /// Decodes and admits one report frame delivered at `delivered_tick`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] on truncation, a
    /// shard-count mismatch, or any [`ReportCollector::admit`] rejection.
    pub fn accept(&mut self, data: Bytes, delivered_tick: u64) -> Result<ReportFrame> {
        let frame = decode_batch_reports(data, self.expected_shards)?;
        self.admit(&frame, delivered_tick)?;
        Ok(frame)
    }

    /// Admits an already-decoded frame delivered at `delivered_tick`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] on an out-of-range or
    /// duplicate station id, a send tick later than the delivery tick, or a
    /// delivery tick older than the previously admitted frame's. A rejected
    /// frame leaves the collector untouched, so its rows can never be
    /// counted.
    pub fn admit(&mut self, frame: &ReportFrame, delivered_tick: u64) -> Result<()> {
        if frame.station >= self.station_count {
            return Err(ProtocolError::malformed_report(format!(
                "report from unknown station {} (deployment has {})",
                frame.station, self.station_count
            )));
        }
        if self.seen.contains(&frame.station) {
            return Err(ProtocolError::malformed_report(format!(
                "duplicate report from station {}",
                frame.station
            )));
        }
        if frame.sent_tick > delivered_tick {
            return Err(ProtocolError::malformed_report(format!(
                "station {} report delivered at tick {} before it was sent at tick {}",
                frame.station, delivered_tick, frame.sent_tick
            )));
        }
        if delivered_tick < self.last_delivered {
            return Err(ProtocolError::malformed_report(format!(
                "out-of-order report arrival: station {} delivered at tick {} after tick {}",
                frame.station, delivered_tick, self.last_delivered
            )));
        }
        // Admit only after every check passed, so a rejected frame leaves
        // the collector untouched.
        self.seen.insert(frame.station);
        self.last_delivered = delivered_tick;
        Ok(())
    }

    /// How many stations have reported so far.
    pub fn accepted(&self) -> usize {
        self.seen.len()
    }
}

/// Encodes query-tagged `(query, user, weight)` reports: `u32` count then
/// `{query u32, id u64, num u64, den u64}` per entry (28 bytes/candidate).
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the report count exceeds the
/// `u32` prefix.
pub fn encode_tagged_weight_reports(reports: &[(u32, UserId, Weight)]) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 28);
    buf.put_u32_le(frame_count(reports.len())?);
    for (query, user, weight) in reports {
        buf.put_u32_le(*query);
        buf.put_u64_le(user.0);
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    Ok(buf.freeze())
}

/// Decodes a query-tagged weight-report payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a zero
/// denominator.
pub fn decode_tagged_weight_reports(mut data: Bytes) -> Result<Vec<(u32, UserId, Weight)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated report count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(28) {
        return Err(ProtocolError::malformed_report("truncated report entries"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let query = data.get_u32_le();
        let user = UserId(data.get_u64_le());
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        out.push((query, user, weight));
    }
    expect_consumed(&data, "tagged weight reports")?;
    Ok(out)
}

/// Encodes query-tagged candidate ids (the Bloom baseline's batch reports):
/// `u32` count then `{query u32, id u64}` per entry.
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the report count exceeds the
/// `u32` prefix.
pub fn encode_tagged_id_reports(reports: &[(u32, UserId)]) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 12);
    buf.put_u32_le(frame_count(reports.len())?);
    for (query, user) in reports {
        buf.put_u32_le(*query);
        buf.put_u64_le(user.0);
    }
    Ok(buf.freeze())
}

/// Decodes a query-tagged id payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_tagged_id_reports(mut data: Bytes) -> Result<Vec<(u32, UserId)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated id count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report("truncated id entries"));
    }
    let out = (0..count)
        .map(|_| (data.get_u32_le(), UserId(data.get_u64_le())))
        .collect();
    expect_consumed(&data, "tagged id reports")?;
    Ok(out)
}

/// Frames a filter broadcast: the per-query global volumes followed by the
/// encoded filter (`u32` count, `u64`×count totals, filter bytes).
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the volume count exceeds the
/// `u32` prefix.
pub fn encode_filter_broadcast(query_totals: &[u64], filter: Bytes) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4 + query_totals.len() * 8 + filter.len());
    buf.put_u32_le(frame_count(query_totals.len())?);
    for &t in query_totals {
        buf.put_u64_le(t);
    }
    buf.extend_from_slice(&filter);
    Ok(buf.freeze())
}

/// Splits a filter-broadcast frame back into query volumes and filter bytes.
///
/// The filter bytes are the frame's final, rest-of-buffer field; the filter
/// decoder validates them exhaustively (including trailing garbage).
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_filter_broadcast(mut data: Bytes) -> Result<(Vec<u64>, Bytes)> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated broadcast header",
        ));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(8) {
        return Err(ProtocolError::malformed_report("truncated query volumes"));
    }
    let totals = (0..count).map(|_| data.get_u64_le()).collect();
    Ok((totals, data))
}

/// A station's zero-copy view of one WBF broadcast section: the query
/// volumes plus a [`WbfFrameView`] that borrows the received frame bytes —
/// validated once at decode time, then probed in place. The batch scan
/// path uses this instead of materializing an owned
/// [`WeightedBloomFilter`](dipm_core::WeightedBloomFilter), so a broadcast
/// frame is never copied bit-by-bit into station-side structures. Owned
/// decode remains for paths that must *mutate* filter state (streaming
/// delta application, checkpoints).
#[derive(Debug, Clone)]
pub struct WbfSectionView {
    /// The zero-copy filter view to probe.
    pub filter: WbfFrameView,
    /// The query group's global volumes (the weight-plausibility anchors).
    pub query_totals: Vec<u64>,
}

/// Decodes a filter broadcast into a zero-copy [`WbfSectionView`].
///
/// Accepts and rejects exactly the frames the owned path
/// ([`decode_filter_broadcast`] + [`decode_wbf`](encode::decode_wbf))
/// does, with identical error messages — property-checked in the
/// `wire_fuzz` suite.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on a truncated broadcast
/// header and propagates the frame-view parser's exhaustive validation for
/// the filter bytes.
pub fn view_filter_broadcast(data: Bytes) -> Result<WbfSectionView> {
    let (query_totals, filter_bytes) = decode_filter_broadcast(data)?;
    let filter = encode::view_wbf(filter_bytes)?;
    Ok(WbfSectionView {
        filter,
        query_totals,
    })
}

/// A station's decoded view of one Bloom broadcast section.
///
/// The plain filter has no per-bit weight tables, so its decode is already
/// a single aligned copy of the bit words; the wrapper exists so the
/// station-side decode surface is uniform across filter families.
#[derive(Debug, Clone)]
pub struct BloomSectionView {
    /// The decoded baseline filter.
    pub filter: BloomFilter,
}

/// Decodes a Bloom section broadcast into a [`BloomSectionView`].
///
/// # Errors
///
/// Propagates the filter decoder's exhaustive validation (truncation,
/// geometry, trailing bytes).
pub fn view_bloom_section(data: Bytes) -> Result<BloomSectionView> {
    Ok(BloomSectionView {
        filter: encode::decode_bloom(data)?,
    })
}

/// Encodes `(user, weight)` reports: `u32` count then
/// `{id u64, num u64, den u64}` per entry (24 bytes/candidate — the
/// communication saving DI-matching claims over shipping patterns).
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the report count exceeds the
/// `u32` prefix.
pub fn encode_weight_reports(reports: &[(UserId, Weight)]) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 24);
    buf.put_u32_le(frame_count(reports.len())?);
    for (user, weight) in reports {
        buf.put_u64_le(user.0);
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    Ok(buf.freeze())
}

/// Decodes a weight-report payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a zero
/// denominator.
pub fn decode_weight_reports(mut data: Bytes) -> Result<Vec<(UserId, Weight)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated report count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(24) {
        return Err(ProtocolError::malformed_report("truncated report entries"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let user = UserId(data.get_u64_le());
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        out.push((user, weight));
    }
    expect_consumed(&data, "weight reports")?;
    Ok(out)
}

/// Encodes bare candidate IDs (the Bloom baseline's reports): `u32` count
/// then `u64` per id.
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the id count exceeds the
/// `u32` prefix.
pub fn encode_id_reports(ids: &[UserId]) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(4 + ids.len() * 8);
    buf.put_u32_le(frame_count(ids.len())?);
    for id in ids {
        buf.put_u64_le(id.0);
    }
    Ok(buf.freeze())
}

/// Decodes a bare-ID payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_id_reports(mut data: Bytes) -> Result<Vec<UserId>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated id count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(8) {
        return Err(ProtocolError::malformed_report("truncated id entries"));
    }
    let out = (0..count).map(|_| UserId(data.get_u64_le())).collect();
    expect_consumed(&data, "id reports")?;
    Ok(out)
}

/// Encodes a station's full local data (the naive method's shipment):
/// `u32` user count, then per user `{id u64, len u32, values u64×len}`.
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if the entry count or any
/// pattern length exceeds the `u32` prefix.
pub fn encode_station_data<'a, I>(entries: I) -> Result<Bytes>
where
    I: IntoIterator<Item = (UserId, &'a Pattern)>,
{
    let mut buf = BytesMut::new();
    let mut count = 0usize;
    let mut body = BytesMut::new();
    for (user, pattern) in entries {
        body.put_u64_le(user.0);
        body.put_u32_le(frame_count(pattern.len())?);
        for v in pattern.iter() {
            body.put_u64_le(v);
        }
        count += 1;
    }
    buf.put_u32_le(frame_count(count)?);
    buf.extend_from_slice(&body);
    Ok(buf.freeze())
}

/// Decodes a naive-method data shipment.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_station_data(mut data: Bytes) -> Result<Vec<(UserId, Pattern)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated user count"));
    }
    let count = data.get_u32_le() as usize;
    // Every entry takes at least 12 bytes; reject impossible counts before
    // allocating (a malicious count must not drive `with_capacity`).
    if data.remaining() < count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report("truncated station data"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 12 {
            return Err(ProtocolError::malformed_report("truncated user header"));
        }
        let user = UserId(data.get_u64_le());
        let len = data.get_u32_le() as usize;
        if data.remaining() < len.saturating_mul(8) {
            return Err(ProtocolError::malformed_report("truncated pattern values"));
        }
        let values: Vec<u64> = (0..len).map(|_| data.get_u64_le()).collect();
        out.push((user, Pattern::new(values)));
    }
    expect_consumed(&data, "station data")?;
    Ok(out)
}

const UPDATE_KIND_FULL: u8 = 0;
const UPDATE_KIND_DELTA: u8 = 1;

/// The changed positions of one filter section, as per-position
/// [`WeightDiff`]s against the receiver's current state.
///
/// Entries are in strictly ascending position order — the canonical form
/// [`CountingWbf::drain_dirty`](dipm_core::CountingWbf::drain_dirty)
/// produces; the encoder rejects disorder and the wire format makes it
/// unrepresentable (positions travel as varint gaps). Diffs rather than
/// absolute sets for two reasons: every position a churned pattern touches
/// carries the *same* few-weight diff, so the diff table interns to a
/// handful of entries where absolute sets (each grafted onto a different
/// pre-existing set) would not — and application doubles as validation,
/// since a diff that does not match the station's state proves the station
/// missed or replayed an epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterDelta {
    /// `(position, diff)` in strictly ascending position order.
    pub entries: Vec<(u32, WeightDiff)>,
}

impl FilterDelta {
    /// Whether the delta changes nothing (a pure CDR-churn epoch).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One epoch's broadcast in a streaming session: either the full filter
/// (session start, or a deliberate rebuild) or the delta since the previous
/// epoch. Both carry the epoch number — stations reject gaps and replays —
/// and the current per-query global volumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StationUpdate {
    /// A full filter broadcast: the station replaces its state wholesale.
    Full {
        /// The session epoch this update begins.
        epoch: u64,
        /// The live queries' global volumes.
        query_totals: Vec<u64>,
        /// The complete encoded filter
        /// ([`encode_wbf`](dipm_core::encode::encode_wbf) bytes).
        filter: Bytes,
    },
    /// A delta broadcast: only the positions whose visible state changed.
    Delta {
        /// The session epoch this update begins.
        epoch: u64,
        /// The live queries' global volumes (replaced wholesale; they only
        /// change with query churn, but re-sending them keeps the frame
        /// self-contained and they are a few bytes).
        query_totals: Vec<u64>,
        /// The changed positions.
        delta: FilterDelta,
    },
}

impl StationUpdate {
    /// The epoch this update begins.
    pub fn epoch(&self) -> u64 {
        match self {
            StationUpdate::Full { epoch, .. } | StationUpdate::Delta { epoch, .. } => *epoch,
        }
    }
}

/// Writes a LEB128 varint — the delta frame's integer form for position
/// gaps and diff references, both overwhelmingly one byte in practice.
fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn take_varint(data: &mut Bytes) -> Result<u64> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        if data.remaining() < 1 {
            return Err(ProtocolError::malformed_report("truncated varint"));
        }
        let byte = data.get_u8();
        // The 10th byte (shift 63) has one bit of capacity left: any higher
        // payload bit, or a further continuation, overflows u64 — reject it
        // rather than silently truncating to the low bit.
        if shift == 63 && byte > 1 {
            return Err(ProtocolError::malformed_report("varint exceeds 64 bits"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            if shift > 0 && byte == 0 {
                return Err(ProtocolError::malformed_report(
                    "non-canonical varint padding",
                ));
            }
            return Ok(value);
        }
    }
    Err(ProtocolError::malformed_report("varint exceeds 64 bits"))
}

/// Serializes a delta with the same weight-set interning idea the
/// full-filter encoding uses, applied to *diffs*: a dictionary of distinct
/// weights (`u16` ids) and a table of distinct `(removed, added)` diffs,
/// with each entry carrying its position as a varint gap from the previous
/// entry plus a varint reference into the diff table. A churned pattern
/// stamps the same diff onto every position it touches, so the table stays
/// tiny however many positions change.
fn put_filter_delta(buf: &mut BytesMut, delta: &FilterDelta) -> Result<()> {
    // Dictionary of distinct weights across all diffs, ascending.
    let mut dict_set = WeightSet::new();
    for (_, diff) in &delta.entries {
        dict_set.union_with(&diff.removed);
        dict_set.union_with(&diff.added);
    }
    let dict: Vec<Weight> = dict_set.iter().collect();
    if dict.len() > u16::MAX as usize {
        return Err(ProtocolError::frame_too_large(
            "more distinct weights than the delta format's u16 dictionary",
        ));
    }
    let side_ids = |side: &WeightSet| -> Result<Vec<u16>> {
        if side.len() > u16::MAX as usize {
            return Err(ProtocolError::frame_too_large(
                "more weights in one diff than the delta format supports",
            ));
        }
        Ok(side
            .iter()
            .map(|w| {
                dict.binary_search(&w)
                    .expect("dictionary contains every delta weight") as u16
            })
            .collect())
    };
    // Table of distinct diffs, first-seen order.
    let mut diffs: Vec<(Vec<u16>, Vec<u16>)> = Vec::new();
    let mut index: std::collections::HashMap<(Vec<u16>, Vec<u16>), u64> =
        std::collections::HashMap::new();
    let mut refs: Vec<u64> = Vec::with_capacity(delta.entries.len());
    let mut previous: Option<u32> = None;
    for (pos, diff) in &delta.entries {
        if previous.is_some_and(|p| p >= *pos) {
            return Err(ProtocolError::malformed_report(
                "delta positions must be strictly ascending",
            ));
        }
        previous = Some(*pos);
        if diff.is_empty() {
            return Err(ProtocolError::malformed_report("empty delta entry"));
        }
        if !diff.removed.intersection(&diff.added).is_empty() {
            return Err(ProtocolError::malformed_report(
                "diff removes and adds the same weight",
            ));
        }
        let key = (side_ids(&diff.removed)?, side_ids(&diff.added)?);
        let id = match index.get(&key) {
            Some(&id) => id,
            None => {
                let id = diffs.len() as u64;
                index.insert(key.clone(), id);
                diffs.push(key);
                id
            }
        };
        refs.push(id);
    }
    buf.put_u32_le(frame_count(dict.len())?);
    for weight in &dict {
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    buf.put_u32_le(frame_count(diffs.len())?);
    for (removed, added) in &diffs {
        buf.put_u16_le(removed.len() as u16);
        buf.put_u16_le(added.len() as u16);
        for &id in removed.iter().chain(added) {
            buf.put_u16_le(id);
        }
    }
    buf.put_u32_le(frame_count(delta.entries.len())?);
    let mut previous: Option<u32> = None;
    for ((pos, _), diff_ref) in delta.entries.iter().zip(refs) {
        // First entry: the absolute position. Later entries: the gap minus
        // one (strict ascent makes gap ≥ 1, so the common consecutive-run
        // case encodes as a zero byte).
        let gap = match previous {
            None => u64::from(*pos),
            Some(p) => u64::from(*pos - p - 1),
        };
        previous = Some(*pos);
        put_varint(buf, gap);
        put_varint(buf, diff_ref);
    }
    Ok(())
}

fn take_filter_delta(data: &mut Bytes) -> Result<FilterDelta> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated delta dictionary length",
        ));
    }
    let dict_len = data.get_u32_le() as usize;
    if dict_len > u16::MAX as usize {
        return Err(ProtocolError::malformed_report(
            "delta dictionary too large",
        ));
    }
    if data.remaining() < dict_len.saturating_mul(16) {
        return Err(ProtocolError::malformed_report(
            "truncated delta dictionary",
        ));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        dict.push(weight);
    }
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated delta diff table length",
        ));
    }
    let diffs_len = data.get_u32_le() as usize;
    // Every diff takes at least 4 header bytes; bound before allocating.
    if data.remaining() < diffs_len.saturating_mul(4) {
        return Err(ProtocolError::malformed_report(
            "truncated delta diff table",
        ));
    }
    let mut diffs: Vec<WeightDiff> = Vec::with_capacity(diffs_len);
    for _ in 0..diffs_len {
        if data.remaining() < 4 {
            return Err(ProtocolError::malformed_report(
                "truncated delta diff header",
            ));
        }
        let removed_len = data.get_u16_le() as usize;
        let added_len = data.get_u16_le() as usize;
        if removed_len + added_len == 0 {
            return Err(ProtocolError::malformed_report("empty diff table entry"));
        }
        if data.remaining() < (removed_len + added_len).saturating_mul(2) {
            return Err(ProtocolError::malformed_report(
                "truncated delta diff indices",
            ));
        }
        let mut take_side = |len: usize| -> Result<WeightSet> {
            let mut side = WeightSet::new();
            for _ in 0..len {
                let idx = data.get_u16_le() as usize;
                let weight = dict.get(idx).copied().ok_or_else(|| {
                    ProtocolError::malformed_report("delta weight index outside dictionary")
                })?;
                side.insert(weight);
            }
            Ok(side)
        };
        let removed = take_side(removed_len)?;
        let added = take_side(added_len)?;
        if !removed.intersection(&added).is_empty() {
            return Err(ProtocolError::malformed_report(
                "diff removes and adds the same weight",
            ));
        }
        diffs.push(WeightDiff { removed, added });
    }
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated delta entry count",
        ));
    }
    let entry_count = data.get_u32_le() as usize;
    // Every entry takes at least 2 varint bytes; bound before allocating.
    if data.remaining() < entry_count.saturating_mul(2) {
        return Err(ProtocolError::malformed_report("truncated delta entries"));
    }
    let mut entries = Vec::with_capacity(entry_count);
    let mut previous: Option<u32> = None;
    for _ in 0..entry_count {
        let gap = take_varint(data)?;
        let pos = match previous {
            None => Some(gap),
            // Checked: a hostile gap near u64::MAX must error, not wrap
            // into a duplicate or backwards position.
            Some(p) => gap.checked_add(1).and_then(|g| u64::from(p).checked_add(g)),
        };
        let pos = pos.and_then(|pos| u32::try_from(pos).ok()).ok_or_else(|| {
            ProtocolError::malformed_report("delta position exceeds the u32 filter range")
        })?;
        previous = Some(pos);
        let diff_ref = take_varint(data)?;
        let diff = usize::try_from(diff_ref)
            .ok()
            .and_then(|i| diffs.get(i))
            .cloned()
            .ok_or_else(|| ProtocolError::malformed_report("delta diff reference outside table"))?;
        entries.push((pos, diff));
    }
    Ok(FilterDelta { entries })
}

/// Frames one streaming epoch's broadcast.
///
/// Layout: `kind u8` (0 full, 1 delta), `epoch u64`, `u32` volume count,
/// `u64`×count volumes, then the full filter bytes (kind 0) or the interned
/// delta (kind 1).
///
/// # Errors
///
/// Returns [`ProtocolError::FrameTooLarge`] if any count exceeds its wire
/// prefix.
pub fn encode_station_update(update: &StationUpdate) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    match update {
        StationUpdate::Full {
            epoch,
            query_totals,
            filter,
        } => {
            buf.put_u8(UPDATE_KIND_FULL);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(frame_count(query_totals.len())?);
            for &t in query_totals {
                buf.put_u64_le(t);
            }
            buf.extend_from_slice(filter);
        }
        StationUpdate::Delta {
            epoch,
            query_totals,
            delta,
        } => {
            buf.put_u8(UPDATE_KIND_DELTA);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(frame_count(query_totals.len())?);
            for &t in query_totals {
                buf.put_u64_le(t);
            }
            put_filter_delta(&mut buf, delta)?;
        }
    }
    Ok(buf.freeze())
}

/// Decodes one streaming epoch's broadcast.
///
/// Delta frames are validated structurally here (counts bounded before
/// allocation, dictionary and set references in range, strictly ascending
/// positions, no trailing bytes); full frames hand their rest-of-buffer
/// filter bytes to the filter decoder, which performs the equivalent
/// validation.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on any malformed input.
pub fn decode_station_update(mut data: Bytes) -> Result<StationUpdate> {
    if data.remaining() < 1 + 8 + 4 {
        return Err(ProtocolError::malformed_report(
            "truncated station update header",
        ));
    }
    let kind = data.get_u8();
    let epoch = data.get_u64_le();
    let count = data.get_u32_le() as usize;
    if data.remaining() < count.saturating_mul(8) {
        return Err(ProtocolError::malformed_report(
            "truncated station update volumes",
        ));
    }
    let query_totals: Vec<u64> = (0..count).map(|_| data.get_u64_le()).collect();
    match kind {
        UPDATE_KIND_FULL => Ok(StationUpdate::Full {
            epoch,
            query_totals,
            filter: data,
        }),
        UPDATE_KIND_DELTA => {
            let delta = take_filter_delta(&mut data)?;
            expect_consumed(&data, "station update delta")?;
            Ok(StationUpdate::Delta {
                epoch,
                query_totals,
                delta,
            })
        }
        other => Err(ProtocolError::malformed_report(format!(
            "unknown station update kind {other}"
        ))),
    }
}

/// Encodes one station's routing-summary upload: `u32` station index
/// followed by the station's encoded summary Bloom filter. The data center
/// unions these into the routing tree.
pub fn encode_routing_summary(station: u32, filter: &BloomFilter) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + encode::encoded_bloom_len(filter));
    buf.put_u32_le(station);
    buf.extend_from_slice(&encode::encode_bloom(filter));
    buf.freeze()
}

/// Decodes a routing-summary upload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on a truncated header and
/// propagates the filter decoder's exhaustive validation (which also
/// rejects trailing bytes) for the rest.
pub fn decode_routing_summary(mut data: Bytes) -> Result<(u32, BloomFilter)> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated routing summary header",
        ));
    }
    let station = data.get_u32_le();
    let filter = encode::decode_bloom(data)?;
    Ok((station, filter))
}

/// One surviving bottom-level subtree of the routing tree: the leaf range
/// `[lo, hi)` it claims and the target stations inside it, strictly
/// ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedProbes {
    /// First station index the subtree covers (inclusive).
    pub lo: u32,
    /// One past the last station index the subtree covers.
    pub hi: u32,
    /// The stations the query's probe keys route to, strictly ascending,
    /// all within `[lo, hi)`.
    pub targets: Vec<u32>,
}

fn check_routed_probes(lo: u32, hi: u32, targets: &[u32]) -> Result<()> {
    if lo > hi {
        return Err(ProtocolError::malformed_report(format!(
            "routed probe range [{lo}, {hi}) is inverted"
        )));
    }
    let mut prev: Option<u32> = None;
    for &target in targets {
        if target < lo || target >= hi {
            return Err(ProtocolError::malformed_report(format!(
                "routed target {target} outside claimed range [{lo}, {hi})"
            )));
        }
        if prev.is_some_and(|p| p >= target) {
            return Err(ProtocolError::malformed_report(
                "routed targets must be strictly ascending (no duplicate station ids)",
            ));
        }
        prev = Some(target);
    }
    Ok(())
}

/// Encodes one routed-probe frame: `u32` range lo, `u32` range hi, `u32`
/// target count, then the target station indices. The encoder enforces the
/// same invariants the decoder checks (range not inverted, targets strictly
/// ascending within the range) so a malformed frame cannot be produced.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on an invalid range or
/// target list.
pub fn encode_routed_probes(lo: u32, hi: u32, targets: &[u32]) -> Result<Bytes> {
    check_routed_probes(lo, hi, targets)?;
    let mut buf = BytesMut::with_capacity(12 + targets.len() * 4);
    buf.put_u32_le(lo);
    buf.put_u32_le(hi);
    buf.put_u32_le(frame_count(targets.len())?);
    for &target in targets {
        buf.put_u32_le(target);
    }
    Ok(buf.freeze())
}

/// Decodes one routed-probe frame, validating structure exhaustively: the
/// count is bounded by the claimed range before any allocation, targets
/// must be strictly ascending inside `[lo, hi)` (duplicate station ids are
/// rejected), and trailing bytes are refused.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on any malformed input.
pub fn decode_routed_probes(mut data: Bytes) -> Result<RoutedProbes> {
    if data.remaining() < 12 {
        return Err(ProtocolError::malformed_report(
            "truncated routed probe header",
        ));
    }
    let lo = data.get_u32_le();
    let hi = data.get_u32_le();
    let count = data.get_u32_le() as usize;
    if lo > hi {
        return Err(ProtocolError::malformed_report(format!(
            "routed probe range [{lo}, {hi}) is inverted"
        )));
    }
    if count > (hi - lo) as usize {
        return Err(ProtocolError::malformed_report(format!(
            "routed probe frame claims {count} targets in a range of {}",
            hi - lo
        )));
    }
    if data.remaining() < count.saturating_mul(4) {
        return Err(ProtocolError::malformed_report(
            "truncated routed probe targets",
        ));
    }
    let targets: Vec<u32> = (0..count).map(|_| data.get_u32_le()).collect();
    expect_consumed(&data, "routed probe")?;
    check_routed_probes(lo, hi, targets.as_slice())?;
    Ok(RoutedProbes { lo, hi, targets })
}

/// Assembles a batch's routed-probe frames into the final recipient set,
/// rejecting plans whose subtree claims overlap: each station index may be
/// covered by at most one claimed range, so no station can be targeted (or
/// skipped) twice.
#[derive(Debug, Clone, Default)]
pub struct RoutingPlan {
    station_count: u32,
    claims: Vec<(u32, u32)>,
    targets: Vec<u32>,
}

impl RoutingPlan {
    /// An empty plan over `station_count` stations.
    pub fn new(station_count: u32) -> RoutingPlan {
        RoutingPlan {
            station_count,
            claims: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Admits one decoded frame's claim.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] if the claim reaches past
    /// the deployment's station count or overlaps a previously admitted
    /// claim.
    pub fn claim(&mut self, frame: &RoutedProbes) -> Result<()> {
        if frame.hi > self.station_count {
            return Err(ProtocolError::malformed_report(format!(
                "subtree claim [{}, {}) exceeds the {} deployed stations",
                frame.lo, frame.hi, self.station_count
            )));
        }
        for &(lo, hi) in &self.claims {
            if frame.lo < hi && lo < frame.hi {
                return Err(ProtocolError::malformed_report(format!(
                    "subtree claim [{}, {}) overlaps earlier claim [{lo}, {hi})",
                    frame.lo, frame.hi
                )));
            }
        }
        self.claims.push((frame.lo, frame.hi));
        self.targets.extend_from_slice(&frame.targets);
        Ok(())
    }

    /// The assembled recipient set, ascending.
    pub fn into_targets(mut self) -> Vec<u32> {
        self.targets.sort_unstable();
        self.targets
    }
}

/// Magic prefix of a session checkpoint frame (`DIPC`).
const CHECKPOINT_MAGIC: u32 = 0x4449_5043;
/// Magic prefix of a service checkpoint frame (`DIPS`).
const SERVICE_MAGIC: u32 = 0x4449_5053;
/// Version byte both checkpoint frame families currently carry.
const CHECKPOINT_VERSION: u8 = 1;

/// One live query as a checkpoint records it: the exact pairs the center
/// inserted, so recovery can replay them and removal keeps working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointQuery {
    /// The query's [`StreamQueryId`](crate::StreamQueryId) value.
    pub id: u64,
    /// The query's global volume.
    pub total: u64,
    /// The query's combination count (build statistics).
    pub combinations: u64,
    /// The `(key, weight)` pairs inserted for this query, in insertion
    /// order.
    pub pairs: Vec<(u64, Weight)>,
}

/// One base station's cross-epoch protocol position as the center records
/// it: whether the station holds a filter, and the last epoch it applied.
///
/// The filter itself is deliberately **not** in the checkpoint — stations
/// retain their own state across a center crash, and resyncing them via the
/// next delta instead of re-shipping filters is the entire economic point
/// of recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStation {
    /// Whether the station holds a decoded filter.
    pub has_filter: bool,
    /// The last epoch the station applied.
    pub applied_epoch: u64,
}

/// A versioned serialization of one streaming session's center state: the
/// counting filter (refcounts never cross the wire otherwise), the pending
/// per-position delta baselines, the live-query registry and the epoch
/// bookkeeping.
///
/// A center rebuilt from this frame plus the stations' retained memories
/// continues the session exactly where it stopped: the next epoch drains
/// the same delta the crashed center would have (see
/// [`StreamingSession::recover`](crate::StreamingSession::recover)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// The next epoch the session will run.
    pub epoch: u64,
    /// The virtual tick the session has reached (async latency modeling).
    pub clock_base: u64,
    /// Whether the next epoch must broadcast the full filter.
    pub needs_full: bool,
    /// Filter length in positions.
    pub bits: u64,
    /// Number of hash functions.
    pub hashes: u16,
    /// Hash seed shared between center and stations.
    pub seed: u64,
    /// The next [`StreamQueryId`](crate::StreamQueryId) to assign.
    pub next_id: u64,
    /// The live queries, in ascending id order.
    pub queries: Vec<CheckpointQuery>,
    /// The counting filter's refcounted state: each occupied position with
    /// its `(weight, count)` entries, positions and weights strictly
    /// ascending.
    pub counts: Vec<(u32, Vec<(Weight, u32)>)>,
    /// The pending dirty baselines: each dirtied position mapped to its
    /// visible weight set as of the last drain, positions strictly
    /// ascending. Restoring these makes the recovered center's next delta
    /// byte-identical to the crashed one's.
    pub baselines: Vec<(u32, WeightSet)>,
    /// Per-station protocol positions (empty before the first epoch
    /// initializes stations).
    pub stations: Vec<CheckpointStation>,
}

fn put_checkpoint_weight(buf: &mut BytesMut, weight: Weight) {
    buf.put_u64_le(weight.numerator());
    buf.put_u64_le(weight.denominator());
}

fn take_checkpoint_weight(data: &mut Bytes) -> Result<Weight> {
    let num = data.get_u64_le();
    let den = data.get_u64_le();
    Weight::new(num, den).map_err(|_| ProtocolError::malformed_report("zero weight denominator"))
}

/// The structural rules shared by the checkpoint encoder and decoder, so a
/// buggy caller errors as loudly as hostile bytes.
fn validate_session_checkpoint(checkpoint: &SessionCheckpoint) -> Result<()> {
    if checkpoint.bits == 0 || checkpoint.bits > u64::from(u32::MAX) {
        return Err(ProtocolError::malformed_report(format!(
            "checkpoint filter length {} outside (0, u32::MAX]",
            checkpoint.bits
        )));
    }
    if checkpoint.hashes == 0 || checkpoint.hashes > dipm_core::MAX_HASHES {
        return Err(ProtocolError::malformed_report(format!(
            "checkpoint hash count {} outside (0, {}]",
            checkpoint.hashes,
            dipm_core::MAX_HASHES
        )));
    }
    let mut previous: Option<u64> = None;
    for query in &checkpoint.queries {
        if previous.is_some_and(|p| p >= query.id) {
            return Err(ProtocolError::malformed_report(
                "checkpoint query ids must be strictly ascending",
            ));
        }
        previous = Some(query.id);
        if query.id >= checkpoint.next_id {
            return Err(ProtocolError::malformed_report(format!(
                "checkpoint query id {} not below next id {}",
                query.id, checkpoint.next_id
            )));
        }
        if query.total == 0 {
            return Err(ProtocolError::malformed_report(
                "checkpoint query with zero global volume",
            ));
        }
        if query.pairs.is_empty() {
            return Err(ProtocolError::malformed_report(
                "checkpoint query with no pairs",
            ));
        }
    }
    let mut previous: Option<u32> = None;
    for (pos, entries) in &checkpoint.counts {
        if previous.is_some_and(|p| p >= *pos) {
            return Err(ProtocolError::malformed_report(
                "checkpoint count positions must be strictly ascending",
            ));
        }
        previous = Some(*pos);
        if u64::from(*pos) >= checkpoint.bits {
            return Err(ProtocolError::malformed_report(format!(
                "checkpoint count position {pos} outside filter of {} positions",
                checkpoint.bits
            )));
        }
        if entries.is_empty() {
            return Err(ProtocolError::malformed_report(
                "checkpoint position with no weight entries",
            ));
        }
        let mut prev_weight: Option<Weight> = None;
        for &(weight, count) in entries {
            if prev_weight.is_some_and(|p| p >= weight) {
                return Err(ProtocolError::malformed_report(
                    "checkpoint position weights must be strictly ascending",
                ));
            }
            prev_weight = Some(weight);
            if count == 0 {
                return Err(ProtocolError::malformed_report(
                    "checkpoint weight with zero count",
                ));
            }
        }
    }
    let mut previous: Option<u32> = None;
    for (pos, _) in &checkpoint.baselines {
        if previous.is_some_and(|p| p >= *pos) {
            return Err(ProtocolError::malformed_report(
                "checkpoint baseline positions must be strictly ascending",
            ));
        }
        previous = Some(*pos);
        if u64::from(*pos) >= checkpoint.bits {
            return Err(ProtocolError::malformed_report(format!(
                "checkpoint baseline position {pos} outside filter of {} positions",
                checkpoint.bits
            )));
        }
    }
    for (station, state) in checkpoint.stations.iter().enumerate() {
        // An epoch regression: the center can never trail a station it
        // itself updated.
        if state.applied_epoch > checkpoint.epoch {
            return Err(ProtocolError::malformed_report(format!(
                "station {station} applied epoch {} beyond checkpoint epoch {}",
                state.applied_epoch, checkpoint.epoch
            )));
        }
        // A filter is only ever installed by applying an update; a station
        // that never applied one cannot hold state.
        if !state.has_filter && state.applied_epoch != 0 {
            return Err(ProtocolError::malformed_report(format!(
                "station {station} applied epoch {} without holding a filter",
                state.applied_epoch
            )));
        }
    }
    Ok(())
}

/// Frames one streaming session's checkpoint.
///
/// Layout: `magic u32` (`DIPC`), `version u8`, `epoch u64`,
/// `clock_base u64`, `needs_full u8`, `bits u64`, `hashes u16`, `seed u64`,
/// `next_id u64`, then the query registry, the refcounted counts, the
/// pending baselines and the per-station protocol positions, each behind a
/// `u32` count.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] if the checkpoint violates
/// the structural rules the decoder enforces (disorder, zero counts,
/// out-of-range positions, station epoch regressions) and
/// [`ProtocolError::FrameTooLarge`] if any count exceeds its wire prefix.
pub fn encode_session_checkpoint(checkpoint: &SessionCheckpoint) -> Result<Bytes> {
    validate_session_checkpoint(checkpoint)?;
    let mut buf = BytesMut::new();
    buf.put_u32_le(CHECKPOINT_MAGIC);
    buf.put_u8(CHECKPOINT_VERSION);
    buf.put_u64_le(checkpoint.epoch);
    buf.put_u64_le(checkpoint.clock_base);
    buf.put_u8(u8::from(checkpoint.needs_full));
    buf.put_u64_le(checkpoint.bits);
    buf.put_u16_le(checkpoint.hashes);
    buf.put_u64_le(checkpoint.seed);
    buf.put_u64_le(checkpoint.next_id);
    buf.put_u32_le(frame_count(checkpoint.queries.len())?);
    for query in &checkpoint.queries {
        buf.put_u64_le(query.id);
        buf.put_u64_le(query.total);
        buf.put_u64_le(query.combinations);
        buf.put_u32_le(frame_count(query.pairs.len())?);
        for &(key, weight) in &query.pairs {
            buf.put_u64_le(key);
            put_checkpoint_weight(&mut buf, weight);
        }
    }
    buf.put_u32_le(frame_count(checkpoint.counts.len())?);
    for (pos, entries) in &checkpoint.counts {
        if entries.len() > u16::MAX as usize {
            return Err(ProtocolError::frame_too_large(
                "more weights at one position than the checkpoint format's u16 count",
            ));
        }
        buf.put_u32_le(*pos);
        buf.put_u16_le(entries.len() as u16);
        for &(weight, count) in entries {
            put_checkpoint_weight(&mut buf, weight);
            buf.put_u32_le(count);
        }
    }
    buf.put_u32_le(frame_count(checkpoint.baselines.len())?);
    for (pos, baseline) in &checkpoint.baselines {
        if baseline.len() > u16::MAX as usize {
            return Err(ProtocolError::frame_too_large(
                "more baseline weights than the checkpoint format's u16 count",
            ));
        }
        buf.put_u32_le(*pos);
        buf.put_u16_le(baseline.len() as u16);
        for weight in baseline.iter() {
            put_checkpoint_weight(&mut buf, weight);
        }
    }
    buf.put_u32_le(frame_count(checkpoint.stations.len())?);
    for state in &checkpoint.stations {
        buf.put_u8(u8::from(state.has_filter));
        buf.put_u64_le(state.applied_epoch);
    }
    Ok(buf.freeze())
}

/// Decodes one streaming session's checkpoint, enforcing every structural
/// rule the encoder promises: counts bounded against the remaining buffer
/// before allocation, strictly ascending positions/ids/weights, positions
/// inside the declared geometry, station epochs never beyond the session
/// epoch, and no trailing bytes.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on any malformed input.
pub fn decode_session_checkpoint(mut data: Bytes) -> Result<SessionCheckpoint> {
    // magic + version + epoch + clock + needs_full + bits + hashes + seed
    // + next_id.
    if data.remaining() < 4 + 1 + 8 + 8 + 1 + 8 + 2 + 8 + 8 {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint header",
        ));
    }
    let magic = data.get_u32_le();
    if magic != CHECKPOINT_MAGIC {
        return Err(ProtocolError::malformed_report(format!(
            "bad checkpoint magic {magic:#010x}"
        )));
    }
    let version = data.get_u8();
    if version != CHECKPOINT_VERSION {
        return Err(ProtocolError::malformed_report(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let epoch = data.get_u64_le();
    let clock_base = data.get_u64_le();
    let needs_full = match data.get_u8() {
        0 => false,
        1 => true,
        other => {
            return Err(ProtocolError::malformed_report(format!(
                "checkpoint needs-full byte {other} is not a boolean"
            )))
        }
    };
    let bits = data.get_u64_le();
    let hashes = data.get_u16_le();
    let seed = data.get_u64_le();
    let next_id = data.get_u64_le();

    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint query count",
        ));
    }
    let query_count = data.get_u32_le() as usize;
    // Every query takes at least 28 header bytes; bound before allocating.
    if data.remaining() < query_count.saturating_mul(28) {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint queries",
        ));
    }
    let mut queries = Vec::with_capacity(query_count);
    for _ in 0..query_count {
        if data.remaining() < 28 {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint query header",
            ));
        }
        let id = data.get_u64_le();
        let total = data.get_u64_le();
        let combinations = data.get_u64_le();
        let pair_count = data.get_u32_le() as usize;
        if data.remaining() < pair_count.saturating_mul(24) {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint query pairs",
            ));
        }
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let key = data.get_u64_le();
            let weight = take_checkpoint_weight(&mut data)?;
            pairs.push((key, weight));
        }
        queries.push(CheckpointQuery {
            id,
            total,
            combinations,
            pairs,
        });
    }

    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint count table",
        ));
    }
    let position_count = data.get_u32_le() as usize;
    // Every position takes at least 4 + 2 + 20 bytes.
    if data.remaining() < position_count.saturating_mul(26) {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint counts",
        ));
    }
    let mut counts = Vec::with_capacity(position_count);
    for _ in 0..position_count {
        if data.remaining() < 6 {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint position header",
            ));
        }
        let pos = data.get_u32_le();
        let entry_count = data.get_u16_le() as usize;
        if data.remaining() < entry_count.saturating_mul(20) {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint position entries",
            ));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let weight = take_checkpoint_weight(&mut data)?;
            let count = data.get_u32_le();
            entries.push((weight, count));
        }
        counts.push((pos, entries));
    }

    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint baseline table",
        ));
    }
    let baseline_count = data.get_u32_le() as usize;
    // Every baseline takes at least 4 + 2 bytes (the set may be empty: a
    // position unoccupied at the last drain).
    if data.remaining() < baseline_count.saturating_mul(6) {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint baselines",
        ));
    }
    let mut baselines = Vec::with_capacity(baseline_count);
    for _ in 0..baseline_count {
        if data.remaining() < 6 {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint baseline header",
            ));
        }
        let pos = data.get_u32_le();
        let weight_count = data.get_u16_le() as usize;
        if data.remaining() < weight_count.saturating_mul(16) {
            return Err(ProtocolError::malformed_report(
                "truncated checkpoint baseline weights",
            ));
        }
        let mut baseline = WeightSet::new();
        let mut prev_weight: Option<Weight> = None;
        for _ in 0..weight_count {
            let weight = take_checkpoint_weight(&mut data)?;
            if prev_weight.is_some_and(|p| p >= weight) {
                return Err(ProtocolError::malformed_report(
                    "checkpoint baseline weights must be strictly ascending",
                ));
            }
            prev_weight = Some(weight);
            baseline.insert(weight);
        }
        baselines.push((pos, baseline));
    }

    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint station table",
        ));
    }
    let station_count = data.get_u32_le() as usize;
    if data.remaining() < station_count.saturating_mul(9) {
        return Err(ProtocolError::malformed_report(
            "truncated checkpoint stations",
        ));
    }
    let mut stations = Vec::with_capacity(station_count);
    for station in 0..station_count {
        let has_filter = match data.get_u8() {
            0 => false,
            1 => true,
            other => {
                return Err(ProtocolError::malformed_report(format!(
                    "station {station} has-filter byte {other} is not a boolean"
                )))
            }
        };
        let applied_epoch = data.get_u64_le();
        stations.push(CheckpointStation {
            has_filter,
            applied_epoch,
        });
    }
    expect_consumed(&data, "session checkpoint")?;

    let checkpoint = SessionCheckpoint {
        epoch,
        clock_base,
        needs_full,
        bits,
        hashes,
        seed,
        next_id,
        queries,
        counts,
        baselines,
        stations,
    };
    validate_session_checkpoint(&checkpoint)?;
    Ok(checkpoint)
}

/// Frames a whole service's checkpoint: every tenant's session checkpoint
/// behind its tenant id, ids strictly ascending (`magic u32` `DIPS`,
/// `version u8`, `u32` tenant count, then per tenant `{id u64, len u32,
/// bytes×len}`).
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] if tenant ids repeat or
/// regress and [`ProtocolError::FrameTooLarge`] if any count exceeds its
/// wire prefix.
pub fn encode_service_checkpoint(tenants: &[(u64, Bytes)]) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(SERVICE_MAGIC);
    buf.put_u8(CHECKPOINT_VERSION);
    buf.put_u32_le(frame_count(tenants.len())?);
    let mut previous: Option<u64> = None;
    for (tenant, frame) in tenants {
        if previous.is_some_and(|p| p >= *tenant) {
            return Err(ProtocolError::malformed_report(
                "service checkpoint tenant ids must be strictly ascending",
            ));
        }
        previous = Some(*tenant);
        buf.put_u64_le(*tenant);
        buf.put_u32_le(frame_count(frame.len())?);
        buf.extend_from_slice(frame);
    }
    Ok(buf.freeze())
}

/// Decodes a service checkpoint into `(tenant id, session frame)` pairs.
///
/// Tenant ids must be strictly ascending — a duplicated or regressing id
/// is rejected (two checkpoints for one tenant would make recovery
/// ambiguous). The per-tenant frames stay opaque here; feed each to
/// [`decode_session_checkpoint`].
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on any malformed input.
pub fn decode_service_checkpoint(mut data: Bytes) -> Result<Vec<(u64, Bytes)>> {
    if data.remaining() < 4 + 1 + 4 {
        return Err(ProtocolError::malformed_report(
            "truncated service checkpoint header",
        ));
    }
    let magic = data.get_u32_le();
    if magic != SERVICE_MAGIC {
        return Err(ProtocolError::malformed_report(format!(
            "bad service checkpoint magic {magic:#010x}"
        )));
    }
    let version = data.get_u8();
    if version != CHECKPOINT_VERSION {
        return Err(ProtocolError::malformed_report(format!(
            "unsupported service checkpoint version {version}"
        )));
    }
    let tenant_count = data.get_u32_le() as usize;
    // Every tenant takes at least 12 header bytes; bound before allocating.
    if data.remaining() < tenant_count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report(
            "truncated service checkpoint tenants",
        ));
    }
    let mut tenants = Vec::with_capacity(tenant_count);
    let mut previous: Option<u64> = None;
    for _ in 0..tenant_count {
        if data.remaining() < 12 {
            return Err(ProtocolError::malformed_report(
                "truncated service checkpoint tenant header",
            ));
        }
        let tenant = data.get_u64_le();
        if previous.is_some_and(|p| p >= tenant) {
            return Err(ProtocolError::malformed_report(
                "service checkpoint tenant ids must be strictly ascending",
            ));
        }
        previous = Some(tenant);
        let len = data.get_u32_le() as usize;
        if data.remaining() < len {
            return Err(ProtocolError::malformed_report(
                "truncated service checkpoint tenant frame",
            ));
        }
        tenants.push((tenant, Bytes::from(data.take_bytes(len).to_vec())));
    }
    expect_consumed(&data, "service checkpoint")?;
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn weight_reports_roundtrip() {
        let reports = vec![
            (UserId(1), w(1, 3)),
            (UserId(999), Weight::ONE),
            (UserId(42), w(7, 9)),
        ];
        let encoded = encode_weight_reports(&reports).unwrap();
        assert_eq!(encoded.len(), 4 + 3 * 24);
        assert_eq!(decode_weight_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn empty_reports_roundtrip() {
        assert!(decode_weight_reports(encode_weight_reports(&[]).unwrap())
            .unwrap()
            .is_empty());
        assert!(decode_id_reports(encode_id_reports(&[]).unwrap())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn id_reports_roundtrip() {
        let ids = vec![UserId(3), UserId(1), UserId(4)];
        let encoded = encode_id_reports(&ids).unwrap();
        assert_eq!(encoded.len(), 4 + 3 * 8);
        assert_eq!(decode_id_reports(encoded).unwrap(), ids);
    }

    #[test]
    fn station_data_roundtrip() {
        let p1 = Pattern::from([1u64, 2, 3]);
        let p2 = Pattern::from([0u64; 5]);
        let encoded = encode_station_data(vec![(UserId(1), &p1), (UserId(2), &p2)]).unwrap();
        let decoded = decode_station_data(encoded).unwrap();
        assert_eq!(decoded, vec![(UserId(1), p1), (UserId(2), p2)]);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let reports = vec![(UserId(1), w(1, 2))];
        let encoded = encode_weight_reports(&reports).unwrap();
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert!(decode_weight_reports(encoded.slice(0..cut)).is_err());
        }
        let p = Pattern::from([1u64, 2]);
        let data = encode_station_data(vec![(UserId(1), &p)]).unwrap();
        for cut in [0, 3, 10, data.len() - 1] {
            assert!(decode_station_data(data.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn zero_denominator_rejected() {
        let mut raw = encode_weight_reports(&[(UserId(1), w(1, 2))])
            .unwrap()
            .to_vec();
        // Denominator is the last 8 bytes; zero it.
        let n = raw.len();
        raw[n - 8..].fill(0);
        assert!(decode_weight_reports(Bytes::from(raw)).is_err());
    }

    #[test]
    fn filter_broadcast_roundtrip() {
        let filter_bytes = Bytes::from_static(b"FILTERPAYLOAD");
        let framed = encode_filter_broadcast(&[100, 250], filter_bytes.clone()).unwrap();
        let (totals, rest) = decode_filter_broadcast(framed).unwrap();
        assert_eq!(totals, vec![100, 250]);
        assert_eq!(rest, filter_bytes);
        assert!(decode_filter_broadcast(Bytes::from_static(b"\x01")).is_err());
    }

    #[test]
    fn batch_broadcast_roundtrip() {
        let sections = vec![
            (0u32, Bytes::from_static(b"SECTION-A")),
            (1u32, Bytes::from_static(b"")),
            (7u32, Bytes::from_static(b"SECTION-C-LONGER")),
        ];
        let framed = encode_batch_broadcast(&sections).unwrap();
        assert_eq!(framed.len(), 4 + sections.len() * 8 + 9 + 16);
        assert_eq!(decode_batch_broadcast(framed).unwrap(), sections);
        assert!(decode_batch_broadcast(encode_batch_broadcast(&[]).unwrap())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_broadcast_rejects_duplicate_query_ids() {
        let framed =
            encode_batch_broadcast(&[(3, Bytes::from_static(b"x")), (3, Bytes::from_static(b"y"))])
                .unwrap();
        assert!(decode_batch_broadcast(framed).is_err());
    }

    #[test]
    fn batch_broadcast_rejects_truncation() {
        let framed = encode_batch_broadcast(&[(0, Bytes::from_static(b"PAYLOAD"))]).unwrap();
        for cut in [0, 3, 7, framed.len() - 1] {
            assert!(decode_batch_broadcast(framed.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn batch_reports_validate_shard_count() {
        let framed = encode_batch_reports(4, 7, 1234, Bytes::from_static(b"inner"));
        let frame = decode_batch_reports(framed.clone(), 4).unwrap();
        assert_eq!(frame.station, 7);
        assert_eq!(frame.sent_tick, 1234);
        assert_eq!(frame.payload.as_ref(), b"inner");
        assert!(decode_batch_reports(framed, 2).is_err());
        assert!(decode_batch_reports(Bytes::from_static(b"\x01"), 1).is_err());
    }

    #[test]
    fn report_collector_rejects_structural_lies() {
        let mut collector = ReportCollector::new(2, 3);
        let ok = collector
            .accept(encode_batch_reports(2, 0, 5, Bytes::from_static(b"a")), 9)
            .unwrap();
        assert_eq!((ok.station, ok.sent_tick), (0, 5));
        // Duplicate station (a retransmit must never double-count).
        assert!(collector
            .accept(encode_batch_reports(2, 0, 6, Bytes::from_static(b"b")), 10)
            .is_err());
        // Out-of-order arrival (delivery-tick regression).
        assert!(collector
            .accept(encode_batch_reports(2, 1, 4, Bytes::from_static(b"c")), 8)
            .is_err());
        // Delivered before it was sent.
        assert!(collector
            .accept(encode_batch_reports(2, 1, 30, Bytes::from_static(b"t")), 20)
            .is_err());
        // Unknown station id.
        assert!(collector
            .accept(encode_batch_reports(2, 9, 8, Bytes::from_static(b"d")), 11)
            .is_err());
        // Shard-count mismatch still caught underneath.
        assert!(collector
            .accept(encode_batch_reports(1, 1, 8, Bytes::from_static(b"e")), 11)
            .is_err());
        // A rejected frame leaves no trace: the same station admits cleanly,
        // and a *send* tick older than an earlier station's is legal (a
        // small report on a slow link regresses nothing).
        assert!(collector
            .accept(encode_batch_reports(2, 1, 3, Bytes::from_static(b"f")), 11)
            .is_ok());
        assert_eq!(collector.accepted(), 2);
    }

    #[test]
    fn tagged_weight_reports_roundtrip() {
        let reports = vec![
            (0u32, UserId(1), w(1, 3)),
            (2u32, UserId(999), Weight::ONE),
            (2u32, UserId(42), w(7, 9)),
        ];
        let encoded = encode_tagged_weight_reports(&reports).unwrap();
        assert_eq!(encoded.len(), 4 + 3 * 28);
        assert_eq!(decode_tagged_weight_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn tagged_id_reports_roundtrip() {
        let reports = vec![(0u32, UserId(3)), (1u32, UserId(1)), (0u32, UserId(4))];
        let encoded = encode_tagged_id_reports(&reports).unwrap();
        assert_eq!(encoded.len(), 4 + 3 * 12);
        assert_eq!(decode_tagged_id_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn tagged_decoders_reject_truncation_and_zero_denominators() {
        let encoded = encode_tagged_weight_reports(&[(0, UserId(1), w(1, 2))]).unwrap();
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert!(decode_tagged_weight_reports(encoded.slice(0..cut)).is_err());
        }
        let mut raw = encoded.to_vec();
        let n = raw.len();
        raw[n - 8..].fill(0);
        assert!(decode_tagged_weight_reports(Bytes::from(raw)).is_err());
        let ids = encode_tagged_id_reports(&[(0, UserId(1))]).unwrap();
        for cut in [0, 3, ids.len() - 1] {
            assert!(decode_tagged_id_reports(ids.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn frame_count_guards_the_length_prefix() {
        // The regression the checked casts fix: a count above u32::MAX used
        // to truncate silently (`len() as u32`), producing a prefix that
        // lies about the body. Constructing > 4 Gi real elements is not
        // feasible in a test, which is why the guard is its own function.
        assert_eq!(frame_count(0).unwrap(), 0);
        assert_eq!(frame_count(u32::MAX as usize).unwrap(), u32::MAX);
        for len in [u32::MAX as usize + 1, usize::MAX] {
            let err = frame_count(len).unwrap_err();
            assert!(
                matches!(err, ProtocolError::FrameTooLarge { .. }),
                "{len} must refuse to encode, got {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected_on_report_frames() {
        let valid = encode_weight_reports(&[(UserId(1), w(1, 2))]).unwrap();
        let mut raw = valid.to_vec();
        raw.push(0xEE);
        assert!(decode_weight_reports(Bytes::from(raw)).is_err());
        let valid = encode_tagged_id_reports(&[(0, UserId(9))]).unwrap();
        let mut raw = valid.to_vec();
        raw.extend_from_slice(&[1, 2, 3]);
        assert!(decode_tagged_id_reports(Bytes::from(raw)).is_err());
    }

    fn ws(weights: &[Weight]) -> WeightSet {
        weights.iter().copied().collect()
    }

    fn diff(removed: &[Weight], added: &[Weight]) -> WeightDiff {
        WeightDiff {
            removed: ws(removed),
            added: ws(added),
        }
    }

    #[test]
    fn station_update_delta_roundtrips_with_interning() {
        let churn = diff(&[w(1, 3)], &[w(2, 3)]);
        let delta = FilterDelta {
            entries: vec![
                (3, churn.clone()),
                (9, diff(&[Weight::ONE], &[])),
                (17, churn.clone()),
                (18, churn.clone()),
                (40, diff(&[], &[Weight::ONE])),
            ],
        };
        let update = StationUpdate::Delta {
            epoch: 7,
            query_totals: vec![100, 250],
            delta: delta.clone(),
        };
        let encoded = encode_station_update(&update).unwrap();
        assert_eq!(decode_station_update(encoded.clone()).unwrap(), update);
        // Interning + varint gaps: the repeated churn diff crosses the wire
        // once and each entry costs a couple of bytes, so the frame stays
        // well below one uninterned 16-byte weight pair per entry.
        let header = 1 + 8 + 4 + 2 * 8;
        let uninterned = 5 * (4 + 2 * 16);
        assert!(
            encoded.len() < header + (3 * uninterned) / 4,
            "delta frame too large: {} bytes",
            encoded.len()
        );
        assert_eq!(update.epoch(), 7);
        assert!(!delta.is_empty());
        assert!(FilterDelta::default().is_empty());
    }

    #[test]
    fn delta_encoder_rejects_disorder_and_empty_diffs() {
        let out_of_order = FilterDelta {
            entries: vec![
                (9, diff(&[], &[Weight::ONE])),
                (3, diff(&[], &[Weight::ONE])),
            ],
        };
        assert!(encode_station_update(&StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta: out_of_order,
        })
        .is_err());
        let duplicate = FilterDelta {
            entries: vec![
                (3, diff(&[], &[Weight::ONE])),
                (3, diff(&[], &[Weight::ONE])),
            ],
        };
        assert!(encode_station_update(&StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta: duplicate,
        })
        .is_err());
        let empty_diff = FilterDelta {
            entries: vec![(3, WeightDiff::default())],
        };
        assert!(encode_station_update(&StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta: empty_diff,
        })
        .is_err());
        // Encode/decode symmetry: an overlapping diff is rejected at the
        // encoder too, so the center can never frame an update every
        // station would refuse.
        let overlapping = FilterDelta {
            entries: vec![(3, diff(&[Weight::ONE], &[Weight::ONE]))],
        };
        assert!(encode_station_update(&StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta: overlapping,
        })
        .is_err());
    }

    #[test]
    fn overlong_varints_are_rejected_not_truncated() {
        // A 10-byte varint whose final byte carries payload above bit 63
        // must error: silently keeping only the low bit would decode a
        // corrupt frame to wrong positions. Frame: a delta with one dict
        // weight and one diff, whose single entry's gap varint is hostile.
        let mut frame = BytesMut::new();
        frame.put_u8(1);
        frame.put_u64_le(0);
        frame.put_u32_le(0);
        frame.put_u32_le(1); // dict: one weight
        frame.put_u64_le(1);
        frame.put_u64_le(2);
        frame.put_u32_le(1); // one diff
        frame.put_u16_le(0); // removes nothing
        frame.put_u16_le(1); // adds weight 0
        frame.put_u16_le(0);
        frame.put_u32_le(1); // one entry
        frame.extend_from_slice(&[0x80; 9]); // gap varint: 9 continuations…
        frame.put_u8(0x7E); // …then payload bits above the u64 range
        frame.put_u8(0); // diff ref
        assert!(decode_station_update(frame.freeze()).is_err());
    }

    #[test]
    fn hostile_position_gaps_error_instead_of_wrapping() {
        // Entry 1 at position 5, entry 2 with gap u64::MAX: the position
        // reconstruction must error, not overflow (a wraparound would land
        // back on position 5, double-applying a diff to one position).
        let mut frame = BytesMut::new();
        frame.put_u8(1); // delta kind
        frame.put_u64_le(0); // epoch
        frame.put_u32_le(0); // totals
        frame.put_u32_le(1); // dict: one weight
        frame.put_u64_le(1);
        frame.put_u64_le(2);
        frame.put_u32_le(1); // one diff
        frame.put_u16_le(0); // removes nothing
        frame.put_u16_le(1); // adds weight 0
        frame.put_u16_le(0);
        frame.put_u32_le(2); // two entries
        frame.put_u8(5); // entry 1: position 5
        frame.put_u8(0); // diff ref
        frame.extend_from_slice(&[0xFF; 9]); // entry 2: gap = u64::MAX…
        frame.put_u8(0x01); // …(canonical 10-byte varint)
        frame.put_u8(0); // diff ref
        assert!(decode_station_update(frame.freeze()).is_err());
    }

    #[test]
    fn station_update_full_roundtrips() {
        let update = StationUpdate::Full {
            epoch: 0,
            query_totals: vec![42],
            filter: Bytes::from_static(b"FILTERBYTES"),
        };
        let encoded = encode_station_update(&update).unwrap();
        assert_eq!(decode_station_update(encoded).unwrap(), update);
    }

    #[test]
    fn station_update_rejects_structural_corruption() {
        // Unknown kind byte.
        let mut raw = encode_station_update(&StationUpdate::Delta {
            epoch: 1,
            query_totals: vec![],
            delta: FilterDelta::default(),
        })
        .unwrap()
        .to_vec();
        raw[0] = 9;
        assert!(decode_station_update(Bytes::from(raw)).is_err());
        // A diff reference outside the table: entry count 1, reference 2
        // while the table holds nothing.
        let mut buf = BytesMut::new();
        buf.put_u8(1); // delta
        buf.put_u64_le(0); // epoch
        buf.put_u32_le(0); // totals
        buf.put_u32_le(0); // dict
        buf.put_u32_le(0); // diffs
        buf.put_u32_le(1); // entries
        buf.put_u8(5); // pos varint
        buf.put_u8(2); // diff ref → out of range
        assert!(decode_station_update(buf.freeze()).is_err());
        // An empty diff in the table.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(0); // dict
        buf.put_u32_le(1); // one diff…
        buf.put_u16_le(0); // …removing nothing
        buf.put_u16_le(0); // …and adding nothing
        buf.put_u32_le(0); // entries
        assert!(decode_station_update(buf.freeze()).is_err());
        // A diff that removes and adds the same weight.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(1); // dict: one weight
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u32_le(1); // one diff
        buf.put_u16_le(1); // removes weight 0…
        buf.put_u16_le(1); // …and adds weight 0
        buf.put_u16_le(0);
        buf.put_u16_le(0);
        buf.put_u32_le(0); // entries
        assert!(decode_station_update(buf.freeze()).is_err());
    }

    #[test]
    fn weight_report_is_much_smaller_than_pattern_shipment() {
        // The core communication claim: 24 bytes per candidate vs a full
        // pattern (8 bytes × intervals) per user.
        let long = Pattern::from(vec![5u64; 336]); // one week at 30-min slots
        let shipment = encode_station_data(vec![(UserId(1), &long)]).unwrap();
        let report = encode_weight_reports(&[(UserId(1), Weight::ONE)]).unwrap();
        assert!(report.len() * 50 < shipment.len());
    }

    #[test]
    fn routing_summary_roundtrip() {
        let params = dipm_core::FilterParams::new(256, 3).unwrap();
        let mut filter = BloomFilter::new(params, 9);
        filter.insert(42);
        filter.insert(77);
        let frame = encode_routing_summary(6, &filter);
        let (station, decoded) = decode_routing_summary(frame).unwrap();
        assert_eq!(station, 6);
        assert_eq!(decoded, filter);
    }

    #[test]
    fn routing_summary_rejects_truncation_and_trailing_bytes() {
        let params = dipm_core::FilterParams::new(256, 3).unwrap();
        let filter = BloomFilter::new(params, 9);
        let frame = encode_routing_summary(0, &filter);
        // Truncation anywhere — mid-header and mid-filter.
        for cut in [0, 3, 4, 20, frame.len() - 1] {
            assert!(
                decode_routing_summary(frame.slice(..cut)).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing garbage after a valid filter payload.
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&frame);
        buf.put_u8(0xEE);
        assert!(decode_routing_summary(buf.freeze()).is_err());
    }

    #[test]
    fn routed_probes_roundtrip() {
        let frame = encode_routed_probes(4, 8, &[4, 6, 7]).unwrap();
        assert_eq!(
            decode_routed_probes(frame).unwrap(),
            RoutedProbes {
                lo: 4,
                hi: 8,
                targets: vec![4, 6, 7],
            }
        );
        // Empty target lists and empty ranges are legal (nothing routed).
        let frame = encode_routed_probes(0, 0, &[]).unwrap();
        let probes = decode_routed_probes(frame).unwrap();
        assert!(probes.targets.is_empty());
    }

    #[test]
    fn routed_probes_encoder_and_decoder_reject_the_same_invariants() {
        // Encoder-side: inverted range, out-of-range and duplicate ids.
        assert!(encode_routed_probes(8, 4, &[]).is_err());
        assert!(encode_routed_probes(4, 8, &[3]).is_err());
        assert!(encode_routed_probes(4, 8, &[8]).is_err());
        assert!(encode_routed_probes(4, 8, &[5, 5]).is_err());
        assert!(encode_routed_probes(4, 8, &[6, 5]).is_err());
        // Decoder-side: the same frames hand-built hostile.
        let hostile = |lo: u32, hi: u32, ids: &[u32]| {
            let mut buf = BytesMut::new();
            buf.put_u32_le(lo);
            buf.put_u32_le(hi);
            buf.put_u32_le(frame_count(ids.len()).unwrap());
            for &id in ids {
                buf.put_u32_le(id);
            }
            buf.freeze()
        };
        assert!(decode_routed_probes(hostile(8, 4, &[])).is_err());
        assert!(decode_routed_probes(hostile(4, 8, &[3])).is_err());
        assert!(decode_routed_probes(hostile(4, 8, &[8])).is_err());
        assert!(decode_routed_probes(hostile(4, 8, &[5, 5])).is_err());
        assert!(decode_routed_probes(hostile(4, 8, &[6, 5])).is_err());
        // A count larger than the claimed range is rejected before any
        // allocation, however large it lies.
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u32_le(4);
        buf.put_u32_le(u32::MAX);
        assert!(decode_routed_probes(buf.freeze()).is_err());
        // Truncation and trailing bytes.
        let frame = encode_routed_probes(0, 4, &[1, 2]).unwrap();
        for cut in [0, 3, 11, frame.len() - 1] {
            assert!(decode_routed_probes(frame.slice(..cut)).is_err());
        }
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&frame);
        buf.put_u8(0xEE);
        assert!(decode_routed_probes(buf.freeze()).is_err());
    }

    #[test]
    fn routing_plan_rejects_overlapping_subtree_claims() {
        let mut plan = RoutingPlan::new(12);
        plan.claim(&RoutedProbes {
            lo: 0,
            hi: 4,
            targets: vec![1, 3],
        })
        .unwrap();
        plan.claim(&RoutedProbes {
            lo: 8,
            hi: 12,
            targets: vec![9],
        })
        .unwrap();
        // Overlaps an admitted claim (even partially) → rejected.
        let overlap = RoutedProbes {
            lo: 3,
            hi: 6,
            targets: vec![5],
        };
        assert!(plan.claim(&overlap).is_err());
        // Reaches past the deployment → rejected.
        let beyond = RoutedProbes {
            lo: 4,
            hi: 13,
            targets: vec![4],
        };
        assert!(plan.claim(&beyond).is_err());
        // The gap in between is still claimable, and targets assemble
        // ascending whatever the claim order.
        plan.claim(&RoutedProbes {
            lo: 4,
            hi: 8,
            targets: vec![4],
        })
        .unwrap();
        assert_eq!(plan.into_targets(), vec![1, 3, 4, 9]);
    }

    fn sample_checkpoint() -> SessionCheckpoint {
        let mut baseline = WeightSet::new();
        baseline.insert(w(1, 4));
        baseline.insert(w(3, 4));
        SessionCheckpoint {
            epoch: 5,
            clock_base: 940,
            needs_full: false,
            bits: 1 << 12,
            hashes: 4,
            seed: 0xfeed,
            next_id: 3,
            queries: vec![
                CheckpointQuery {
                    id: 0,
                    total: 40,
                    combinations: 12,
                    pairs: vec![(11, w(1, 4)), (7, w(3, 4))],
                },
                CheckpointQuery {
                    id: 2,
                    total: 9,
                    combinations: 1,
                    pairs: vec![(99, w(9, 9))],
                },
            ],
            counts: vec![
                (3, vec![(w(1, 4), 2), (w(3, 4), 1)]),
                (700, vec![(w(9, 9), 4)]),
            ],
            baselines: vec![(3, baseline), (701, WeightSet::new())],
            stations: vec![
                CheckpointStation {
                    has_filter: true,
                    applied_epoch: 4,
                },
                CheckpointStation {
                    has_filter: false,
                    applied_epoch: 0,
                },
            ],
        }
    }

    #[test]
    fn session_checkpoint_roundtrips() {
        let checkpoint = sample_checkpoint();
        let frame = encode_session_checkpoint(&checkpoint).unwrap();
        let decoded = decode_session_checkpoint(frame).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn session_checkpoint_rejects_truncation_everywhere() {
        let frame = encode_session_checkpoint(&sample_checkpoint()).unwrap();
        for len in 0..frame.len() {
            assert!(
                decode_session_checkpoint(frame.slice(..len)).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn session_checkpoint_rejects_trailing_bytes() {
        let frame = encode_session_checkpoint(&sample_checkpoint()).unwrap();
        let mut padded = BytesMut::new();
        padded.extend_from_slice(&frame);
        padded.put_u8(0);
        let err = decode_session_checkpoint(padded.freeze()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn session_checkpoint_rejects_structural_violations() {
        // The decoder re-runs the same validation, so rejecting these on
        // encode proves both directions.
        let mut c = sample_checkpoint();
        c.stations[1].applied_epoch = 9;
        c.stations[1].has_filter = true;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(err.to_string().contains("beyond checkpoint epoch"), "{err}");

        let mut c = sample_checkpoint();
        c.stations[1].applied_epoch = 2;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(
            err.to_string().contains("without holding a filter"),
            "{err}"
        );

        let mut c = sample_checkpoint();
        c.queries[1].id = 0;
        assert!(encode_session_checkpoint(&c).is_err());

        let mut c = sample_checkpoint();
        c.queries[1].id = 77;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(err.to_string().contains("not below next id"), "{err}");

        let mut c = sample_checkpoint();
        c.counts[1].0 = 1 << 12;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(err.to_string().contains("outside filter"), "{err}");

        let mut c = sample_checkpoint();
        c.counts[0].1[1].1 = 0;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(err.to_string().contains("zero count"), "{err}");

        let mut c = sample_checkpoint();
        c.baselines[0].0 = 701;
        let err = encode_session_checkpoint(&c).unwrap_err();
        assert!(err.to_string().contains("strictly ascending"), "{err}");
    }

    #[test]
    fn session_checkpoint_rejects_huge_declared_counts() {
        let frame = encode_session_checkpoint(&sample_checkpoint()).unwrap();
        // The query count lives right after the 48-byte fixed header;
        // inflate it far beyond the remaining bytes.
        let mut bytes = frame.to_vec();
        bytes[48..52].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_session_checkpoint(Bytes::from(bytes)).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn session_checkpoint_rejects_bad_magic_and_version() {
        let frame = encode_session_checkpoint(&sample_checkpoint()).unwrap();
        let mut bytes = frame.to_vec();
        bytes[0] ^= 0xff;
        assert!(decode_session_checkpoint(Bytes::from(bytes.clone())).is_err());
        bytes[0] ^= 0xff;
        bytes[4] = 2;
        let err = decode_session_checkpoint(Bytes::from(bytes)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn service_checkpoint_roundtrips_and_rejects_disorder() {
        let frames = vec![
            (1u64, Bytes::from_static(b"alpha")),
            (4, Bytes::from_static(b"")),
            (9, Bytes::from_static(b"gamma")),
        ];
        let encoded = encode_service_checkpoint(&frames).unwrap();
        assert_eq!(decode_service_checkpoint(encoded.clone()).unwrap(), frames);

        for len in 0..encoded.len() {
            assert!(
                decode_service_checkpoint(encoded.slice(..len)).is_err(),
                "prefix of {len} bytes decoded"
            );
        }

        let duplicated = vec![
            (4u64, Bytes::from_static(b"a")),
            (4, Bytes::from_static(b"b")),
        ];
        let err = encode_service_checkpoint(&duplicated).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");
    }
}
