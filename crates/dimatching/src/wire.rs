//! Wire encodings for protocol messages.
//!
//! Station reports and raw-data shipments are encoded into real byte buffers
//! so the metered communication costs (Fig. 4c) reflect honest message
//! sizes, and the center does honest decode work.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dipm_core::Weight;
use dipm_mobilenet::UserId;
use dipm_timeseries::Pattern;

use crate::error::{ProtocolError, Result};

/// Frames a filter broadcast: the per-query global volumes followed by the
/// encoded filter (`u32` count, `u64`×count totals, filter bytes).
pub fn encode_filter_broadcast(query_totals: &[u64], filter: Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + query_totals.len() * 8 + filter.len());
    buf.put_u32_le(query_totals.len() as u32);
    for &t in query_totals {
        buf.put_u64_le(t);
    }
    buf.extend_from_slice(&filter);
    buf.freeze()
}

/// Splits a filter-broadcast frame back into query volumes and filter bytes.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_filter_broadcast(mut data: Bytes) -> Result<(Vec<u64>, Bytes)> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report(
            "truncated broadcast header",
        ));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 8 {
        return Err(ProtocolError::malformed_report("truncated query volumes"));
    }
    let totals = (0..count).map(|_| data.get_u64_le()).collect();
    Ok((totals, data))
}

/// Encodes `(user, weight)` reports: `u32` count then
/// `{id u64, num u64, den u64}` per entry (24 bytes/candidate — the
/// communication saving DI-matching claims over shipping patterns).
pub fn encode_weight_reports(reports: &[(UserId, Weight)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + reports.len() * 24);
    buf.put_u32_le(reports.len() as u32);
    for (user, weight) in reports {
        buf.put_u64_le(user.0);
        buf.put_u64_le(weight.numerator());
        buf.put_u64_le(weight.denominator());
    }
    buf.freeze()
}

/// Decodes a weight-report payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation or a zero
/// denominator.
pub fn decode_weight_reports(mut data: Bytes) -> Result<Vec<(UserId, Weight)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated report count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 24 {
        return Err(ProtocolError::malformed_report("truncated report entries"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let user = UserId(data.get_u64_le());
        let num = data.get_u64_le();
        let den = data.get_u64_le();
        let weight = Weight::new(num, den)
            .map_err(|_| ProtocolError::malformed_report("zero weight denominator"))?;
        out.push((user, weight));
    }
    Ok(out)
}

/// Encodes bare candidate IDs (the Bloom baseline's reports): `u32` count
/// then `u64` per id.
pub fn encode_id_reports(ids: &[UserId]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + ids.len() * 8);
    buf.put_u32_le(ids.len() as u32);
    for id in ids {
        buf.put_u64_le(id.0);
    }
    buf.freeze()
}

/// Decodes a bare-ID payload.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_id_reports(mut data: Bytes) -> Result<Vec<UserId>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated id count"));
    }
    let count = data.get_u32_le() as usize;
    if data.remaining() < count * 8 {
        return Err(ProtocolError::malformed_report("truncated id entries"));
    }
    Ok((0..count).map(|_| UserId(data.get_u64_le())).collect())
}

/// Encodes a station's full local data (the naive method's shipment):
/// `u32` user count, then per user `{id u64, len u32, values u64×len}`.
pub fn encode_station_data<'a, I>(entries: I) -> Bytes
where
    I: IntoIterator<Item = (UserId, &'a Pattern)>,
{
    let mut buf = BytesMut::new();
    let mut count = 0u32;
    let mut body = BytesMut::new();
    for (user, pattern) in entries {
        body.put_u64_le(user.0);
        body.put_u32_le(pattern.len() as u32);
        for v in pattern.iter() {
            body.put_u64_le(v);
        }
        count += 1;
    }
    buf.put_u32_le(count);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Decodes a naive-method data shipment.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedReport`] on truncation.
pub fn decode_station_data(mut data: Bytes) -> Result<Vec<(UserId, Pattern)>> {
    if data.remaining() < 4 {
        return Err(ProtocolError::malformed_report("truncated user count"));
    }
    let count = data.get_u32_le() as usize;
    // Every entry takes at least 12 bytes; reject impossible counts before
    // allocating (a malicious count must not drive `with_capacity`).
    if data.remaining() < count.saturating_mul(12) {
        return Err(ProtocolError::malformed_report("truncated station data"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 12 {
            return Err(ProtocolError::malformed_report("truncated user header"));
        }
        let user = UserId(data.get_u64_le());
        let len = data.get_u32_le() as usize;
        if data.remaining() < len * 8 {
            return Err(ProtocolError::malformed_report("truncated pattern values"));
        }
        let values: Vec<u64> = (0..len).map(|_| data.get_u64_le()).collect();
        out.push((user, Pattern::new(values)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u64, d: u64) -> Weight {
        Weight::new(n, d).unwrap()
    }

    #[test]
    fn weight_reports_roundtrip() {
        let reports = vec![
            (UserId(1), w(1, 3)),
            (UserId(999), Weight::ONE),
            (UserId(42), w(7, 9)),
        ];
        let encoded = encode_weight_reports(&reports);
        assert_eq!(encoded.len(), 4 + 3 * 24);
        assert_eq!(decode_weight_reports(encoded).unwrap(), reports);
    }

    #[test]
    fn empty_reports_roundtrip() {
        assert!(decode_weight_reports(encode_weight_reports(&[]))
            .unwrap()
            .is_empty());
        assert!(decode_id_reports(encode_id_reports(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn id_reports_roundtrip() {
        let ids = vec![UserId(3), UserId(1), UserId(4)];
        let encoded = encode_id_reports(&ids);
        assert_eq!(encoded.len(), 4 + 3 * 8);
        assert_eq!(decode_id_reports(encoded).unwrap(), ids);
    }

    #[test]
    fn station_data_roundtrip() {
        let p1 = Pattern::from([1u64, 2, 3]);
        let p2 = Pattern::from([0u64; 5]);
        let encoded = encode_station_data(vec![(UserId(1), &p1), (UserId(2), &p2)]);
        let decoded = decode_station_data(encoded).unwrap();
        assert_eq!(decoded, vec![(UserId(1), p1), (UserId(2), p2)]);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let reports = vec![(UserId(1), w(1, 2))];
        let encoded = encode_weight_reports(&reports);
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert!(decode_weight_reports(encoded.slice(0..cut)).is_err());
        }
        let p = Pattern::from([1u64, 2]);
        let data = encode_station_data(vec![(UserId(1), &p)]);
        for cut in [0, 3, 10, data.len() - 1] {
            assert!(decode_station_data(data.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn zero_denominator_rejected() {
        let mut raw = encode_weight_reports(&[(UserId(1), w(1, 2))]).to_vec();
        // Denominator is the last 8 bytes; zero it.
        let n = raw.len();
        raw[n - 8..].fill(0);
        assert!(decode_weight_reports(Bytes::from(raw)).is_err());
    }

    #[test]
    fn filter_broadcast_roundtrip() {
        let filter_bytes = Bytes::from_static(b"FILTERPAYLOAD");
        let framed = encode_filter_broadcast(&[100, 250], filter_bytes.clone());
        let (totals, rest) = decode_filter_broadcast(framed).unwrap();
        assert_eq!(totals, vec![100, 250]);
        assert_eq!(rest, filter_bytes);
        assert!(decode_filter_broadcast(Bytes::from_static(b"\x01")).is_err());
    }

    #[test]
    fn weight_report_is_much_smaller_than_pattern_shipment() {
        // The core communication claim: 24 bytes per candidate vs a full
        // pattern (8 bytes × intervals) per user.
        let long = Pattern::from(vec![5u64; 336]); // one week at 30-min slots
        let shipment = encode_station_data(vec![(UserId(1), &long)]);
        let report = encode_weight_reports(&[(UserId(1), Weight::ONE)]);
        assert!(report.len() * 50 < shipment.len());
    }
}
