//! End-to-end DI-matching runs over the simulated deployment.
//!
//! Each run wires up a [`Network`], registers the data center and one node
//! per base station, broadcasts the encoded filter, executes Algorithm 2 at
//! every station (sequentially or one thread per station), ships the
//! `(ID, weight)` reports back and ranks them with Algorithm 3 — metering
//! every byte and operation along the way.

use std::time::Instant;

use dipm_core::encode;
use dipm_distsim::{run_stations, ExecutionMode, Network, NodeId, TrafficClass, DATA_CENTER};
use dipm_mobilenet::{Dataset, StationId};

use crate::basestation::{scan_station, scan_station_bloom};
use crate::config::DiMatchingConfig;
use crate::datacenter::{aggregate_and_rank, build_bloom, build_wbf};
use crate::error::Result;
use crate::query::PatternQuery;
use crate::result::{Method, MethodDetails, QueryOutcome};
use crate::wire;

/// Bytes of aggregation state the center keeps per surviving candidate.
const CENTER_ENTRY_BYTES: u64 = 24;

fn station_nodes(dataset: &Dataset) -> Vec<(usize, StationId, NodeId)> {
    dataset
        .stations()
        .iter()
        .enumerate()
        .map(|(i, &s)| (i, s, NodeId::base_station(i as u32)))
        .collect()
}

/// Runs full DI-matching with the weighted Bloom filter.
///
/// `top_k = None` returns every surviving candidate in rank order.
///
/// # Errors
///
/// Propagates configuration, pattern, filter and network errors.
///
/// # Examples
///
/// ```
/// use dipm_mobilenet::Dataset;
/// use dipm_protocol::{run_wbf, DiMatchingConfig, PatternQuery};
/// use dipm_distsim::ExecutionMode;
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let dataset = Dataset::small(7);
/// let probe = dataset.users()[0];
/// let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())?;
/// let outcome = run_wbf(
///     &dataset,
///     &[query],
///     &DiMatchingConfig::default(),
///     ExecutionMode::Sequential,
///     Some(10),
/// )?;
/// assert!(outcome.ranked.contains(&probe.id));
/// # Ok(())
/// # }
/// ```
pub fn run_wbf(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let start = Instant::now();
    let network = Network::new();
    let center = network.register(DATA_CENTER)?;
    let stations = station_nodes(dataset);
    let mailboxes = stations
        .iter()
        .map(|&(_, _, node)| network.register(node))
        .collect::<dipm_distsim::Result<Vec<_>>>()?;

    // Algorithm 1 at the data center.
    let built = build_wbf(queries, config)?;
    let filter_bytes =
        encode::encode_wbf(&built.filter).map_err(crate::error::ProtocolError::Core)?;
    let encoded = wire::encode_filter_broadcast(&built.query_totals, filter_bytes);
    network.broadcast(
        DATA_CENTER,
        stations.iter().map(|&(_, _, node)| node),
        TrafficClass::Query,
        &encoded,
    )?;
    // Each station holds a copy of the filter while the query is live.
    network
        .meter()
        .record_storage(encoded.len() as u64 * stations.len() as u64);

    // Algorithm 2, one worker per station.
    let items: Vec<(StationId, &dipm_distsim::Mailbox)> = stations
        .iter()
        .zip(&mailboxes)
        .map(|(&(_, station, _), mailbox)| (station, mailbox))
        .collect();
    let results = run_stations(mode, &items, |i, (station, mailbox)| {
        let envelope = mailbox.recv()?;
        let (query_totals, filter_bytes) = wire::decode_filter_broadcast(envelope.payload)?;
        let filter = encode::decode_wbf(filter_bytes)?;
        let reports = match dataset.station_locals(*station) {
            Some(patterns) => scan_station(
                &filter,
                &query_totals,
                patterns,
                config,
                Some(network.meter()),
            )?,
            None => Vec::new(),
        };
        let payload = wire::encode_weight_reports(&reports);
        network.send(
            NodeId::base_station(i as u32),
            DATA_CENTER,
            TrafficClass::Report,
            payload,
        )?;
        Ok::<(), crate::error::ProtocolError>(())
    });
    for r in results {
        r?;
    }

    // Algorithm 3 at the data center.
    let mut all_reports = Vec::new();
    for envelope in center.drain() {
        all_reports.extend(wire::decode_weight_reports(envelope.payload)?);
    }
    network
        .meter()
        .record_storage(all_reports.len() as u64 * CENTER_ENTRY_BYTES);
    let ranked_users = aggregate_and_rank(all_reports, top_k);

    Ok(QueryOutcome {
        method: Method::Wbf,
        ranked: ranked_users.iter().map(|r| r.user).collect(),
        details: MethodDetails::Wbf {
            weights: ranked_users,
            build: built.stats,
        },
        cost: network.meter().report(),
        elapsed: start.elapsed(),
    })
}

/// Runs DI-matching with the plain Bloom filter (the paper's `BF` method):
/// same representation and sampling, membership-only matching, bare-ID
/// reports, ranking by the number of reporting stations.
///
/// # Errors
///
/// Propagates configuration, pattern, filter and network errors.
pub fn run_bloom(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let start = Instant::now();
    let network = Network::new();
    let center = network.register(DATA_CENTER)?;
    let stations = station_nodes(dataset);
    let mailboxes = stations
        .iter()
        .map(|&(_, _, node)| network.register(node))
        .collect::<dipm_distsim::Result<Vec<_>>>()?;

    let built = build_bloom(queries, config)?;
    let encoded = encode::encode_bloom(&built.filter);
    network.broadcast(
        DATA_CENTER,
        stations.iter().map(|&(_, _, node)| node),
        TrafficClass::Query,
        &encoded,
    )?;
    network
        .meter()
        .record_storage(encoded.len() as u64 * stations.len() as u64);

    let items: Vec<(StationId, &dipm_distsim::Mailbox)> = stations
        .iter()
        .zip(&mailboxes)
        .map(|(&(_, station, _), mailbox)| (station, mailbox))
        .collect();
    let results = run_stations(mode, &items, |i, (station, mailbox)| {
        let envelope = mailbox.recv()?;
        let filter = encode::decode_bloom(envelope.payload)?;
        let ids = match dataset.station_locals(*station) {
            Some(patterns) => scan_station_bloom(&filter, patterns, config, Some(network.meter()))?,
            None => Vec::new(),
        };
        let payload = wire::encode_id_reports(&ids);
        network.send(
            NodeId::base_station(i as u32),
            DATA_CENTER,
            TrafficClass::Report,
            payload,
        )?;
        Ok::<(), crate::error::ProtocolError>(())
    });
    for r in results {
        r?;
    }

    // Without weights the center can only count reporting stations.
    let mut counts: std::collections::BTreeMap<dipm_mobilenet::UserId, u32> =
        std::collections::BTreeMap::new();
    for envelope in center.drain() {
        for id in wire::decode_id_reports(envelope.payload)? {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    network
        .meter()
        .record_storage(counts.len() as u64 * CENTER_ENTRY_BYTES);
    let mut station_counts: Vec<(dipm_mobilenet::UserId, u32)> = counts.into_iter().collect();
    station_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if let Some(k) = top_k {
        station_counts.truncate(k);
    }

    Ok(QueryOutcome {
        method: Method::Bloom,
        ranked: station_counts.iter().map(|&(u, _)| u).collect(),
        details: MethodDetails::Bloom {
            station_counts,
            build: built.stats,
        },
        cost: network.meter().report(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dipm_core::Weight;

    fn probe_query(dataset: &Dataset, user_index: usize) -> PatternQuery {
        let user = dataset.users()[user_index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    #[test]
    fn wbf_retrieves_probe_user() {
        let dataset = Dataset::small(21);
        let query = probe_query(&dataset, 0);
        let outcome = run_wbf(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let probe = dataset.users()[0].id;
        assert!(outcome.ranked.contains(&probe));
        let MethodDetails::Wbf { weights, .. } = &outcome.details else {
            panic!("wrong detail variant");
        };
        let entry = weights.iter().find(|r| r.user == probe).unwrap();
        // Ambiguous band overlaps can under-report fragment weights, so the
        // probe's sum is at most 1, and never deleted.
        assert!(entry.weight_sum <= Weight::ONE);
        assert!(!entry.weight_sum.is_zero());
    }

    #[test]
    fn clean_decomposition_aggregates_to_exactly_one() {
        // With ε = 0 and well-separated fragments there is no band overlap:
        // every station reports its exact combination weight and the probe's
        // weights sum to exactly 1 (Section IV-B's headline property).
        use dipm_mobilenet::TraceConfig;
        let dataset = TraceConfig::new(30, 6)
            .noise(0)
            .seed(77)
            .generate()
            .unwrap();
        let probe = dataset.users()[0];
        let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap();
        let config = DiMatchingConfig {
            eps: 0,
            ..Default::default()
        };
        let outcome =
            run_wbf(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        let MethodDetails::Wbf { weights, .. } = &outcome.details else {
            panic!("wrong detail variant");
        };
        let entry = weights.iter().find(|r| r.user == probe.id).unwrap();
        assert_eq!(entry.weight_sum, Weight::ONE);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let dataset = Dataset::small(22);
        let query = probe_query(&dataset, 3);
        let config = DiMatchingConfig::default();
        let seq = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let thr = run_wbf(&dataset, &[query], &config, ExecutionMode::Threaded, None).unwrap();
        assert_eq!(seq.ranked, thr.ranked);
        // Communication costs are identical; only wall time may differ.
        assert_eq!(seq.cost.query_bytes, thr.cost.query_bytes);
        assert_eq!(seq.cost.report_bytes, thr.cost.report_bytes);
    }

    #[test]
    fn top_k_truncates_ranking() {
        let dataset = Dataset::small(23);
        let query = probe_query(&dataset, 0);
        let config = DiMatchingConfig::default();
        let full = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let k = 1.min(full.ranked.len());
        let cut = run_wbf(
            &dataset,
            &[query],
            &config,
            ExecutionMode::Sequential,
            Some(k),
        )
        .unwrap();
        assert_eq!(cut.ranked.len(), k);
        assert_eq!(cut.ranked[..], full.ranked[..k]);
    }

    #[test]
    fn wbf_meters_all_cost_classes() {
        let dataset = Dataset::small(24);
        let query = probe_query(&dataset, 0);
        let outcome = run_wbf(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        assert!(outcome.cost.query_bytes > 0, "filter broadcast not metered");
        assert!(outcome.cost.report_bytes > 0, "reports not metered");
        assert_eq!(outcome.cost.data_bytes, 0, "wbf ships no raw data");
        assert!(outcome.cost.storage_bytes > 0);
        assert!(outcome.cost.hash_ops > 0);
        assert_eq!(outcome.cost.messages as usize, dataset.stations().len() * 2);
    }

    #[test]
    fn bloom_baseline_runs_and_retrieves_probe() {
        let dataset = Dataset::small(25);
        let query = probe_query(&dataset, 0);
        let outcome = run_bloom(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        assert!(outcome.ranked.contains(&dataset.users()[0].id));
        assert!(matches!(outcome.details, MethodDetails::Bloom { .. }));
    }

    #[test]
    fn bloom_reports_at_least_wbf_candidates() {
        // Weight consistency only ever removes candidates.
        let dataset = Dataset::small(26);
        let query = probe_query(&dataset, 0);
        let config = DiMatchingConfig::default();
        let wbf = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        let bf_set: std::collections::BTreeSet<_> = bf.ranked.iter().collect();
        // Every WBF candidate that survived aggregation was reported by some
        // station under BF too (same bits are set in both filters).
        for user in &wbf.ranked {
            assert!(bf_set.contains(user), "{user:?} in WBF but not BF");
        }
    }
}
