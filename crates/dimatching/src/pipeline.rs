//! The generic, batch-first DI-matching pipeline over the simulated
//! deployment.
//!
//! [`run_pipeline`] is the *one* implementation of the paper's protocol,
//! parameterized by a [`FilterStrategy`]: the data center builds one filter
//! section per query (Algorithm 1), broadcasts the batch frame, every
//! station decodes it once and scans its hash-sharded local store in **one
//! pass per batch** (Algorithm 2 — shards are the unit of parallelism, so
//! [`ExecutionMode::ThreadPool`] multiplexes every station's shards over a
//! small worker pool), ships canonical-ordered reports back, and the center
//! aggregates one ranking per query (Algorithm 3) — metering every byte and
//! operation along the way.
//!
//! [`DiMatchingConfig::scan_algorithm`] threads through unchanged to the
//! shard-scan cores: every station scans under the same dynamic-pruning
//! rung (`Exhaustive`/`MaxScore`/`Wand`/`BlockMaxWand`), and because the
//! pipeline-context scan prunes only provably reportless work, rankings
//! and byte meters are bit-identical across all rungs in every execution
//! mode.
//!
//! [`run_wbf`] and [`run_bloom`] are thin wrappers:
//! `run_pipeline::<Wbf>` / `run_pipeline::<Bloom>` with an unsharded layout,
//! merged into the legacy single-outcome shape (as is
//! [`run_naive`](crate::run_naive) over the [`Naive`](crate::Naive)
//! strategy).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dipm_distsim::{
    block_on_all, run_station_shards, run_stations, ExecutionMode, LatencyModel, LatencyReport,
    Network, NodeId, StationLatency, TrafficClass, VirtualClock, DATA_CENTER,
};
use dipm_mobilenet::{Dataset, StationId};

use crate::basestation::{BaseStation, Shards};
use crate::config::{DiMatchingConfig, RoutingPolicy};
use crate::error::{ProtocolError, Result};
use crate::query::PatternQuery;
use crate::result::{BatchOutcome, QueryOutcome};
use crate::routing;
use crate::strategy::{Bloom, FilterStrategy, Wbf};
use crate::wire;

/// How a query batch maps onto broadcast filter sections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SectionGrouping {
    /// One filter section per query: the batch frame carries per-query
    /// sections and the outcome one ranking per query. Costs a larger
    /// broadcast (no cross-query key dedup) in exchange for per-query
    /// answers.
    #[default]
    PerQuery,
    /// One merged section over the whole batch — the paper's Algorithm 1,
    /// where all given patterns share one filter and one ranking. The
    /// outcome carries a single verdict. This is what the legacy
    /// single-outcome entry points use.
    Merged,
}

/// Deployment knobs of one pipeline run — how the fixed protocol executes,
/// as opposed to [`DiMatchingConfig`], which fixes *what* is computed.
///
/// A multi-tenant [`Service`](crate::Service) holds exactly one of these
/// for all its tenants: mode, shard layout and latency model describe the
/// shared deployment (one executor, one simulated network), while each
/// tenant's `DiMatchingConfig` stays per-session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// How station shards are scheduled.
    pub mode: ExecutionMode,
    /// The per-station shard layout (pure `UserId → shard`; identical
    /// results for every count).
    pub shards: Shards,
    /// Keep only the best `K` candidates per query ranking.
    pub top_k: Option<usize>,
    /// How queries group into broadcast sections.
    pub grouping: SectionGrouping,
    /// Modeled flight and scan times, used only under
    /// [`ExecutionMode::Async`]: broadcast and report envelopes are stamped
    /// with virtual delivery ticks and the run reports a deterministic
    /// `makespan_ticks`. Synchronous modes ignore it entirely, so it cannot
    /// perturb the mode-invariant byte meters.
    pub latency: LatencyModel,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            mode: ExecutionMode::Sequential,
            shards: Shards::new(1),
            top_k: None,
            grouping: SectionGrouping::PerQuery,
            latency: LatencyModel::default(),
        }
    }
}

fn station_nodes(dataset: &Dataset) -> Vec<(usize, StationId, NodeId)> {
    dataset
        .stations()
        .iter()
        .enumerate()
        .map(|(i, &s)| (i, s, NodeId::base_station(i as u32)))
        .collect()
}

/// The center's admitted station report frames for one batch or epoch, in
/// canonical station order, plus the run's delivery metrics.
pub(crate) struct CollectedReports {
    /// `(frame, delivered_tick)` sorted by station id.
    pub(crate) frames: Vec<(wire::ReportFrame, u64)>,
    /// Total report payload bytes received.
    pub(crate) received_bytes: u64,
    /// The latest modeled delivery tick (zero in unmodeled runs).
    pub(crate) makespan: u64,
}

impl CollectedReports {
    /// The latency dimension of the collected frames, in modeled delivery
    /// order.
    pub(crate) fn latency_report(&self) -> LatencyReport {
        let mut stations: Vec<StationLatency> = self
            .frames
            .iter()
            .map(|(frame, deliver)| StationLatency {
                station: frame.station,
                report_sent: frame.sent_tick,
                report_delivered: *deliver,
            })
            .collect();
        stations.sort_by_key(|s| (s.report_delivered, s.station));
        LatencyReport {
            makespan_ticks: self.makespan,
            stations,
        }
    }
}

/// The shared Algorithm 3 intake: drains the center's mailbox, works
/// through the frames in modeled delivery order (the executor's *physical*
/// completion order may differ run to run under work stealing; virtual
/// delivery times never do) and admits them one by one — duplicate
/// stations, unknown ids, time-traveling stamps and delivery regressions
/// all error, never double-count. The returned frames are in canonical
/// station order so downstream aggregation input is identical whatever
/// order stations finished in. Records the makespan on the network's meter.
pub(crate) fn collect_station_reports(
    center: &dipm_distsim::Mailbox,
    network: &Network,
    shard_count: u32,
    station_count: u32,
) -> Result<CollectedReports> {
    let mut received_bytes = 0u64;
    let mut arrivals: Vec<(wire::ReportFrame, u64)> = Vec::new();
    for envelope in center.drain() {
        received_bytes += envelope.payload.len() as u64;
        let deliver_at = envelope.deliver_at;
        arrivals.push((
            wire::decode_batch_reports(envelope.payload, shard_count)?,
            deliver_at,
        ));
    }
    arrivals.sort_by_key(|(frame, deliver)| (*deliver, frame.station));
    let mut collector = wire::ReportCollector::new(shard_count, station_count);
    for (frame, deliver) in &arrivals {
        collector.admit(frame, *deliver)?;
    }
    let makespan = arrivals
        .iter()
        .map(|&(_, deliver)| deliver)
        .max()
        .unwrap_or(0);
    network.meter().record_makespan(makespan);
    arrivals.sort_by_key(|(frame, _)| frame.station);
    Ok(CollectedReports {
        frames: arrivals,
        received_bytes,
        makespan,
    })
}

/// Runs the full DI-matching protocol for a batch of queries under filter
/// strategy `S`.
///
/// The batch is first-class end to end: one build pass producing filter
/// sections (per query under [`SectionGrouping::PerQuery`], one merged
/// section under [`SectionGrouping::Merged`]), **one broadcast** carrying
/// all of them, **one scan pass per station** (asserted via the meter's
/// `scan_passes` — a batch of Q queries over N stations records exactly N
/// passes, not Q × N), one report per station, and one ranking per section
/// in the returned [`BatchOutcome`]. Single-query use is just a batch of
/// one; the legacy entry points wrap exactly that.
///
/// # Errors
///
/// Propagates configuration, pattern, filter, wire and network errors.
///
/// # Examples
///
/// ```
/// use dipm_distsim::ExecutionMode;
/// use dipm_mobilenet::Dataset;
/// use dipm_protocol::{run_pipeline, DiMatchingConfig, PatternQuery, PipelineOptions, Shards, Wbf};
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let dataset = Dataset::small(7);
/// let queries: Vec<PatternQuery> = (0..3)
///     .map(|i| {
///         let probe = dataset.users()[i];
///         PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())
///     })
///     .collect::<Result<_, _>>()?;
/// let options = PipelineOptions {
///     mode: ExecutionMode::ThreadPool { workers: 4 },
///     shards: Shards::new(2),
///     top_k: Some(10),
///     ..PipelineOptions::default()
/// };
/// let batch = run_pipeline::<Wbf>(&dataset, &queries, &DiMatchingConfig::default(), &options)?;
/// assert_eq!(batch.queries.len(), 3);
/// // One scan pass per station, however many queries the batch carries.
/// assert_eq!(batch.cost.scan_passes as usize, dataset.stations().len());
/// assert!(batch.queries[0].ranked.contains(&dataset.users()[0].id));
/// # Ok(())
/// # }
/// ```
pub fn run_pipeline<S: FilterStrategy>(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    options: &PipelineOptions,
) -> Result<BatchOutcome> {
    let start = Instant::now();
    config.validate()?;
    // Async runs stamp every envelope against a shared virtual clock; the
    // synchronous modes keep the unmodeled network (all stamps zero).
    let (clock, network) = match options.mode {
        ExecutionMode::Async { .. } => {
            let clock = Arc::new(VirtualClock::new());
            let network = Network::with_latency(options.latency, Arc::clone(&clock));
            (Some(clock), network)
        }
        _ => (None, Network::new()),
    };
    let center = network.register(DATA_CENTER)?;
    let stations = station_nodes(dataset);
    let mailboxes = stations
        .iter()
        .map(|&(_, _, node)| network.register(node))
        .collect::<dipm_distsim::Result<Vec<_>>>()?;

    // Algorithm 1 at the data center: one filter section per query group,
    // one batch frame for all of them.
    let groups: Vec<&[PatternQuery]> = match options.grouping {
        SectionGrouping::PerQuery => queries.chunks(1).collect(),
        SectionGrouping::Merged => vec![queries],
    };
    let sections: Vec<S::BuiltFilter> = groups
        .iter()
        .map(|group| S::build(group, config))
        .collect::<Result<_>>()?;

    // Query routing: under a tree policy the center unions the batch's probe
    // keys, probes the Bloofi tree of station summaries, and broadcasts only
    // to stations whose subtree can possibly match. `None` means broadcast
    // to all — the default, and the only option for a strategy that ships no
    // filter (there is nothing to route by).
    let routed: Option<Vec<bool>> = match config.routing {
        RoutingPolicy::Tree { fanout } if S::BROADCASTS => {
            let keys: Vec<u64> = sections
                .iter()
                .flat_map(|s| S::routing_keys(s).iter().copied())
                .collect::<std::collections::BTreeSet<u64>>()
                .into_iter()
                .collect();
            Some(routing::route_batch(
                dataset,
                &keys,
                fanout,
                config,
                network.meter(),
            )?)
        }
        _ => None,
    };
    let active = |i: usize| routed.as_ref().map_or(true, |mask| mask[i]);

    if S::BROADCASTS {
        let payloads: Vec<(u32, bytes::Bytes)> = sections
            .iter()
            .enumerate()
            .map(|(i, s)| Ok((i as u32, S::encode_filter(s)?)))
            .collect::<Result<_>>()?;
        let frame = wire::encode_batch_broadcast(&payloads)?;
        let recipients: Vec<NodeId> = stations
            .iter()
            .filter(|&&(i, _, _)| active(i))
            .map(|&(_, _, node)| node)
            .collect();
        network.broadcast(
            DATA_CENTER,
            recipients.iter().copied(),
            TrafficClass::Query,
            &frame,
        )?;
        // Each targeted station holds a copy of the batch frame while it is
        // live; pruned stations never see (or store) it.
        network
            .meter()
            .record_storage(frame.len() as u64 * recipients.len() as u64);
    }

    // Station side: every station receives and decodes the frame once and
    // partitions its local store into shards.
    let empty = BTreeMap::new();
    let layouts: Vec<BaseStation<'_>> = stations
        .iter()
        .map(|&(_, station, _)| {
            let locals = dataset.station_locals(station).unwrap_or(&empty);
            BaseStation::from_locals(station, locals, options.shards)
        })
        .collect();
    let shard_count = options.shards.count() as u32;
    match options.mode {
        ExecutionMode::Async { workers } => {
            // One future per station, polled per shard: the station sleeps
            // until its broadcast copy's modeled delivery tick, decodes,
            // charges each shard scan to the virtual clock (yielding the
            // worker between shards), and sends its stamped report the
            // moment it finishes — stations complete in virtual-time order,
            // not station order.
            let clock = clock.as_ref().expect("async mode builds a clock");
            let model = options.latency;
            let futures: Vec<_> = mailboxes
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| active(i))
                .map(|(i, mailbox)| {
                    let network = network.clone();
                    let clock = Arc::clone(clock);
                    let layout = &layouts[i];
                    async move {
                        // The station's own virtual timeline. Deadlines are
                        // interleaving-free; global `clock.now()` reads are
                        // not (the pool may advance the clock while this
                        // station's poll sits in a queue), so every stamp
                        // below derives from `station_now`, never from the
                        // global reading.
                        let mut station_now = 0u64;
                        let sections: Vec<(u32, S::Decoded)> = if S::BROADCASTS {
                            let envelope = mailbox.recv()?;
                            station_now = envelope.deliver_at;
                            clock.sleep_until(station_now).await;
                            wire::decode_batch_broadcast(envelope.payload)?
                                .into_iter()
                                .map(|(query, bytes)| Ok((query, S::decode_filter(bytes)?)))
                                .collect::<Result<Vec<_>>>()?
                        } else {
                            Vec::new()
                        };
                        let mut merged: Vec<S::StationReport> = Vec::new();
                        for shard_index in 0..layout.shard_count() {
                            let shard = layout.shard(shard_index);
                            // Charge the modeled scan time to the station's
                            // own timeline…
                            station_now = station_now.saturating_add(model.scan_ticks(shard.len()));
                            clock.sleep_until(station_now).await;
                            merged.extend(S::scan_shard(
                                &sections,
                                shard,
                                config,
                                Some(network.meter()),
                            )?);
                            // …and yield unconditionally after each shard
                            // (an already-elapsed sleep resolves without
                            // suspending), so one large station cannot
                            // monopolize a worker even under a zero-tick
                            // latency model.
                            dipm_distsim::yield_now().await;
                        }
                        merged.sort_by_key(S::report_key);
                        network.meter().record_scan_pass();
                        let payload = wire::encode_batch_reports(
                            shard_count,
                            i as u32,
                            station_now,
                            S::encode_reports(&merged)?,
                        );
                        network.send_at(
                            NodeId::base_station(i as u32),
                            DATA_CENTER,
                            S::REPORT_CLASS,
                            payload,
                            station_now,
                        )?;
                        Ok::<(), ProtocolError>(())
                    }
                })
                .collect();
            let (results, _run) = block_on_all(workers, clock, futures);
            for result in results {
                result?;
            }
        }
        mode => {
            let mut decoded: Vec<Vec<(u32, S::Decoded)>> =
                stations.iter().map(|_| Vec::new()).collect();
            if S::BROADCASTS {
                // Each targeted station decodes its own copy of the frame,
                // under the same execution mode the scans will use (decoding
                // is station-side work, not the center's). Pruned stations
                // received nothing, so their mailboxes must never be polled.
                let targeted: Vec<(usize, &dipm_distsim::Mailbox)> = mailboxes
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| active(i))
                    .collect();
                let results = run_stations(mode, &targeted, |_, &(_, mailbox)| {
                    let envelope = mailbox.recv()?;
                    wire::decode_batch_broadcast(envelope.payload)?
                        .into_iter()
                        .map(|(query, bytes)| Ok((query, S::decode_filter(bytes)?)))
                        .collect::<Result<Vec<_>>>()
                });
                for (result, &(i, _)) in results.into_iter().zip(&targeted) {
                    decoded[i] = result?;
                }
            }

            // Algorithm 2: one scan pass per targeted station per batch,
            // fanned out over the flattened (station, shard) grid.
            let grid: Vec<(usize, usize)> = layouts
                .iter()
                .enumerate()
                .filter(|&(i, _)| active(i))
                .flat_map(|(i, layout)| (0..layout.shard_count()).map(move |shard| (i, shard)))
                .collect();
            let scanned = run_station_shards(mode, &grid, |_, &(station, shard)| {
                S::scan_shard(
                    &decoded[station],
                    layouts[station].shard(shard),
                    config,
                    Some(network.meter()),
                )
            });

            // Merge each station's shard output in canonical (query, user)
            // order — the report bytes are identical whatever the shard
            // layout — and send.
            let mut shard_results = scanned.into_iter();
            for (i, layout) in layouts.iter().enumerate().filter(|&(i, _)| active(i)) {
                let mut merged: Vec<S::StationReport> = Vec::new();
                for _ in 0..layout.shard_count() {
                    merged.extend(shard_results.next().expect("one result per grid entry")?);
                }
                merged.sort_by_key(S::report_key);
                network.meter().record_scan_pass();
                let payload = wire::encode_batch_reports(
                    shard_count,
                    i as u32,
                    0,
                    S::encode_reports(&merged)?,
                );
                network.send(
                    NodeId::base_station(i as u32),
                    DATA_CENTER,
                    S::REPORT_CLASS,
                    payload,
                )?;
            }
        }
    }

    // Algorithm 3 at the data center: admit, order and decode the report
    // frames (shared with the streaming epoch runner), then aggregate.
    let collected = collect_station_reports(&center, &network, shard_count, stations.len() as u32)?;
    let latency = clock.map(|_| collected.latency_report());
    let received_bytes = collected.received_bytes;
    let mut all_reports: Vec<S::StationReport> = Vec::new();
    for (frame, _) in &collected.frames {
        all_reports.extend(S::decode_reports(frame.payload.clone())?);
    }
    S::record_center_storage(network.meter(), received_bytes, &all_reports);
    let verdicts = S::aggregate(
        &sections,
        all_reports,
        config,
        network.meter(),
        options.top_k,
    )?;

    Ok(BatchOutcome {
        method: S::METHOD,
        queries: verdicts,
        cost: network.meter().report(),
        latency,
        elapsed: start.elapsed(),
    })
}

/// Runs full DI-matching with the weighted Bloom filter.
///
/// Thin wrapper: [`run_pipeline::<Wbf>`](run_pipeline) with an unsharded
/// layout and one merged filter over the whole query set (the paper's
/// Algorithm 1), collapsed into one outcome.
///
/// `top_k = None` returns every surviving candidate in rank order.
///
/// # Errors
///
/// Propagates configuration, pattern, filter and network errors.
///
/// # Examples
///
/// ```
/// use dipm_mobilenet::Dataset;
/// use dipm_protocol::{run_wbf, DiMatchingConfig, PatternQuery};
/// use dipm_distsim::ExecutionMode;
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let dataset = Dataset::small(7);
/// let probe = dataset.users()[0];
/// let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())?;
/// let outcome = run_wbf(
///     &dataset,
///     &[query],
///     &DiMatchingConfig::default(),
///     ExecutionMode::Sequential,
///     Some(10),
/// )?;
/// assert!(outcome.ranked.contains(&probe.id));
/// # Ok(())
/// # }
/// ```
pub fn run_wbf(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let options = PipelineOptions {
        mode,
        top_k,
        grouping: SectionGrouping::Merged,
        ..PipelineOptions::default()
    };
    Ok(run_pipeline::<Wbf>(dataset, queries, config, &options)?.into_merged(top_k))
}

/// Runs DI-matching with the plain Bloom filter (the paper's `BF` method):
/// same representation and sampling, membership-only matching, bare-ID
/// reports, ranking by the number of reporting stations.
///
/// Thin wrapper: [`run_pipeline::<Bloom>`](run_pipeline) with an unsharded
/// layout and one merged filter over the whole query set, collapsed into
/// one outcome.
///
/// # Errors
///
/// Propagates configuration, pattern, filter and network errors.
pub fn run_bloom(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    top_k: Option<usize>,
) -> Result<QueryOutcome> {
    let options = PipelineOptions {
        mode,
        top_k,
        grouping: SectionGrouping::Merged,
        ..PipelineOptions::default()
    };
    Ok(run_pipeline::<Bloom>(dataset, queries, config, &options)?.into_merged(top_k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{Method, MethodDetails};
    use dipm_core::Weight;

    fn probe_query(dataset: &Dataset, user_index: usize) -> PatternQuery {
        let user = dataset.users()[user_index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    #[test]
    fn wbf_retrieves_probe_user() {
        let dataset = Dataset::small(21);
        let query = probe_query(&dataset, 0);
        let outcome = run_wbf(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let probe = dataset.users()[0].id;
        assert!(outcome.ranked.contains(&probe));
        let MethodDetails::Wbf { weights, .. } = &outcome.details else {
            panic!("wrong detail variant");
        };
        let entry = weights.iter().find(|r| r.user == probe).unwrap();
        // Ambiguous band overlaps can under-report fragment weights, so the
        // probe's sum is at most 1, and never deleted.
        assert!(entry.weight_sum <= Weight::ONE);
        assert!(!entry.weight_sum.is_zero());
    }

    #[test]
    fn clean_decomposition_aggregates_to_exactly_one() {
        // With ε = 0 and well-separated fragments there is no band overlap:
        // every station reports its exact combination weight and the probe's
        // weights sum to exactly 1 (Section IV-B's headline property).
        use dipm_mobilenet::TraceConfig;
        let dataset = TraceConfig::new(30, 6)
            .noise(0)
            .seed(77)
            .generate()
            .unwrap();
        let probe = dataset.users()[0];
        let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap();
        let config = DiMatchingConfig {
            eps: 0,
            ..Default::default()
        };
        let outcome =
            run_wbf(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        let MethodDetails::Wbf { weights, .. } = &outcome.details else {
            panic!("wrong detail variant");
        };
        let entry = weights.iter().find(|r| r.user == probe.id).unwrap();
        assert_eq!(entry.weight_sum, Weight::ONE);
    }

    #[test]
    fn all_modes_agree() {
        let dataset = Dataset::small(22);
        let query = probe_query(&dataset, 3);
        let config = DiMatchingConfig::default();
        let seq = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let thr = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Threaded,
            None,
        )
        .unwrap();
        let pool = run_wbf(
            &dataset,
            &[query],
            &config,
            ExecutionMode::ThreadPool { workers: 3 },
            None,
        )
        .unwrap();
        assert_eq!(seq.ranked, thr.ranked);
        assert_eq!(seq.ranked, pool.ranked);
        // Communication costs are identical; only wall time may differ.
        assert_eq!(seq.cost, thr.cost);
        assert_eq!(seq.cost, pool.cost);
    }

    #[test]
    fn sharded_run_matches_unsharded() {
        let dataset = Dataset::small(27);
        let query = probe_query(&dataset, 1);
        let config = DiMatchingConfig::default();
        let run = |shards: usize| {
            let options = PipelineOptions {
                shards: Shards::new(shards),
                ..PipelineOptions::default()
            };
            run_pipeline::<Wbf>(&dataset, std::slice::from_ref(&query), &config, &options).unwrap()
        };
        let flat = run(1);
        for shards in [2, 5] {
            let sharded = run(shards);
            assert_eq!(flat.queries[0].ranked, sharded.queries[0].ranked);
            // Canonical report ordering keeps the whole cost report
            // byte-identical across shard layouts.
            assert_eq!(flat.cost, sharded.cost);
        }
    }

    #[test]
    fn batch_scans_each_station_once() {
        let dataset = Dataset::small(28);
        let queries: Vec<PatternQuery> = (0..4).map(|i| probe_query(&dataset, i)).collect();
        let config = DiMatchingConfig::default();
        let batch =
            run_pipeline::<Wbf>(&dataset, &queries, &config, &PipelineOptions::default()).unwrap();
        assert_eq!(batch.queries.len(), 4);
        assert_eq!(
            batch.cost.scan_passes as usize,
            dataset.stations().len(),
            "a batch of Q queries must scan each station once, not Q times"
        );
        assert_eq!(
            batch.cost.messages as usize,
            dataset.stations().len() * 2,
            "one broadcast and one report per station"
        );
    }

    #[test]
    fn async_mode_agrees_and_reports_latency() {
        use dipm_distsim::LatencyModel;
        let dataset = Dataset::small(37);
        let queries: Vec<PatternQuery> = (0..3).map(|i| probe_query(&dataset, i * 2)).collect();
        let config = DiMatchingConfig::default();
        let reference =
            run_pipeline::<Wbf>(&dataset, &queries, &config, &PipelineOptions::default()).unwrap();
        assert!(reference.latency.is_none(), "sync modes do not model time");
        assert_eq!(reference.cost.makespan_ticks, 0);
        let options = PipelineOptions {
            mode: ExecutionMode::Async { workers: 3 },
            shards: Shards::new(2),
            latency: LatencyModel {
                base_ticks: 50,
                ticks_per_byte: 1,
                ticks_per_row: 2,
                jitter_ticks: 7,
                seed: 11,
            },
            ..PipelineOptions::default()
        };
        let run = |options: &PipelineOptions| {
            run_pipeline::<Wbf>(&dataset, &queries, &config, options).unwrap()
        };
        let first = run(&options);
        // Answers and mode-invariant meters are identical to Sequential…
        for (a, b) in reference.queries.iter().zip(&first.queries) {
            assert_eq!(a.ranked, b.ranked);
        }
        assert_eq!(reference.cost, first.cost.mode_invariant());
        // …and the latency dimension is present, plausible and
        // deterministic under the seeded virtual clock.
        let latency = first.latency.as_ref().expect("async models time");
        assert!(latency.makespan_ticks > 0);
        assert_eq!(latency.stations.len(), dataset.stations().len());
        assert_eq!(latency.critical_path_ticks(), latency.makespan_ticks);
        assert_eq!(first.cost.makespan_ticks, latency.makespan_ticks);
        for station in &latency.stations {
            assert!(station.report_sent >= 50, "broadcast flight charged");
            assert!(station.report_delivered > station.report_sent);
        }
        let again = run(&options);
        assert_eq!(first.cost, again.cost, "async cost must be deterministic");
        assert_eq!(first.latency, again.latency);
        // A single deterministic worker models the very same virtual times.
        let single = run(&PipelineOptions {
            mode: ExecutionMode::Async { workers: 1 },
            ..options
        });
        assert_eq!(single.latency, first.latency);
    }

    #[test]
    fn slower_links_stretch_the_makespan() {
        let dataset = Dataset::small(38);
        let queries = vec![probe_query(&dataset, 0)];
        let config = DiMatchingConfig::default();
        let makespan = |base_ticks: u64| {
            let options = PipelineOptions {
                mode: ExecutionMode::Async { workers: 2 },
                latency: dipm_distsim::LatencyModel {
                    base_ticks,
                    ..dipm_distsim::LatencyModel::default()
                },
                ..PipelineOptions::default()
            };
            run_pipeline::<Wbf>(&dataset, &queries, &config, &options)
                .unwrap()
                .cost
                .makespan_ticks
        };
        let fast = makespan(10);
        let slow = makespan(10_000);
        assert!(
            slow >= fast + 2 * (10_000 - 10),
            "a round trip pays the base latency twice: {fast} vs {slow}"
        );
    }

    #[test]
    fn top_k_truncates_ranking() {
        let dataset = Dataset::small(23);
        let query = probe_query(&dataset, 0);
        let config = DiMatchingConfig::default();
        let full = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let k = 1.min(full.ranked.len());
        let cut = run_wbf(
            &dataset,
            &[query],
            &config,
            ExecutionMode::Sequential,
            Some(k),
        )
        .unwrap();
        assert_eq!(cut.ranked.len(), k);
        assert_eq!(cut.ranked[..], full.ranked[..k]);
    }

    #[test]
    fn wbf_meters_all_cost_classes() {
        let dataset = Dataset::small(24);
        let query = probe_query(&dataset, 0);
        let outcome = run_wbf(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        assert!(outcome.cost.query_bytes > 0, "filter broadcast not metered");
        assert!(outcome.cost.report_bytes > 0, "reports not metered");
        assert_eq!(outcome.cost.data_bytes, 0, "wbf ships no raw data");
        assert!(outcome.cost.storage_bytes > 0);
        assert!(outcome.cost.hash_ops > 0);
        assert_eq!(outcome.cost.messages as usize, dataset.stations().len() * 2);
        assert_eq!(
            outcome.cost.scan_passes as usize,
            dataset.stations().len(),
            "one scan pass per station"
        );
    }

    #[test]
    fn bloom_baseline_runs_and_retrieves_probe() {
        let dataset = Dataset::small(25);
        let query = probe_query(&dataset, 0);
        let outcome = run_bloom(
            &dataset,
            &[query],
            &DiMatchingConfig::default(),
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        assert!(outcome.ranked.contains(&dataset.users()[0].id));
        assert!(matches!(outcome.details, MethodDetails::Bloom { .. }));
    }

    #[test]
    fn bloom_reports_at_least_wbf_candidates() {
        // Weight consistency only ever removes candidates.
        let dataset = Dataset::small(26);
        let query = probe_query(&dataset, 0);
        let config = DiMatchingConfig::default();
        let wbf = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        let bf_set: std::collections::BTreeSet<_> = bf.ranked.iter().collect();
        // Every WBF candidate that survived aggregation was reported by some
        // station under BF too (same bits are set in both filters).
        for user in &wbf.ranked {
            assert!(bf_set.contains(user), "{user:?} in WBF but not BF");
        }
    }

    #[test]
    fn batch_verdicts_match_single_query_runs() {
        // Batching must change costs, never answers: each verdict of a
        // batch equals the corresponding single-query run's ranking.
        let dataset = Dataset::small(29);
        let config = DiMatchingConfig::default();
        let queries: Vec<PatternQuery> = (0..3).map(|i| probe_query(&dataset, i * 5)).collect();
        let batch =
            run_pipeline::<Wbf>(&dataset, &queries, &config, &PipelineOptions::default()).unwrap();
        assert_eq!(batch.method, Method::Wbf);
        for (i, query) in queries.iter().enumerate() {
            let single = run_wbf(
                &dataset,
                std::slice::from_ref(query),
                &config,
                ExecutionMode::Sequential,
                None,
            )
            .unwrap();
            assert_eq!(batch.queries[i].ranked, single.ranked, "query {i} drifted");
        }
    }

    #[test]
    fn empty_batch_runs_to_an_empty_outcome() {
        let dataset = Dataset::small(30);
        let batch = run_pipeline::<Wbf>(
            &dataset,
            &[],
            &DiMatchingConfig::default(),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert!(batch.queries.is_empty());
        let merged = batch.into_merged(None);
        assert!(merged.ranked.is_empty());
    }
}
