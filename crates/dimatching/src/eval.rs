//! Retrieval-effectiveness metrics (Section V of the paper).
//!
//! Precision = TP/(TP+FP), recall = TP/(TP+FN) and F1 — the numbers behind
//! Fig. 4(a) and Table II.

use std::collections::BTreeSet;

use dipm_mobilenet::UserId;

/// Precision/recall of one retrieval against a ground-truth relevant set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effectiveness {
    /// Fraction of retrieved users that are relevant.
    pub precision: f64,
    /// Fraction of relevant users that were retrieved.
    pub recall: f64,
}

impl Effectiveness {
    /// The F-measure `2PR/(P+R)`; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Scores a retrieved ranking against the relevant set.
///
/// Edge conventions: with nothing retrieved, precision is 1 if nothing was
/// relevant (vacuously correct) and 0 otherwise; with nothing relevant,
/// recall is 1.
pub fn evaluate<I>(retrieved: I, relevant: &BTreeSet<UserId>) -> Effectiveness
where
    I: IntoIterator<Item = UserId>,
{
    let retrieved: BTreeSet<UserId> = retrieved.into_iter().collect();
    let true_positives = retrieved.intersection(relevant).count() as f64;
    let precision = if retrieved.is_empty() {
        if relevant.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        true_positives / retrieved.len() as f64
    };
    let recall = if relevant.is_empty() {
        1.0
    } else {
        true_positives / relevant.len() as f64
    };
    Effectiveness { precision, recall }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> BTreeSet<UserId> {
        raw.iter().copied().map(UserId).collect()
    }

    #[test]
    fn perfect_retrieval() {
        let relevant = ids(&[1, 2, 3]);
        let e = evaluate(relevant.iter().copied(), &relevant);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
        assert_eq!(e.f1(), 1.0);
    }

    #[test]
    fn partial_retrieval() {
        let relevant = ids(&[1, 2, 3, 4]);
        let e = evaluate(ids(&[1, 2, 9, 10]), &relevant);
        assert_eq!(e.precision, 0.5);
        assert_eq!(e.recall, 0.5);
        assert!((e.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_in_retrieval_count_once() {
        let relevant = ids(&[1]);
        let e = evaluate(vec![UserId(1), UserId(1), UserId(2)], &relevant);
        assert_eq!(e.precision, 0.5);
        assert_eq!(e.recall, 1.0);
    }

    #[test]
    fn empty_edges() {
        let empty = BTreeSet::new();
        let e = evaluate(std::iter::empty(), &empty);
        assert_eq!((e.precision, e.recall), (1.0, 1.0));

        let e = evaluate(std::iter::empty(), &ids(&[1]));
        assert_eq!((e.precision, e.recall), (0.0, 0.0));
        assert_eq!(e.f1(), 0.0);

        let e = evaluate(ids(&[1]), &empty);
        assert_eq!((e.precision, e.recall), (0.0, 1.0));
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let e = Effectiveness {
            precision: 0.98,
            recall: 0.99,
        };
        let expect = 2.0 * 0.98 * 0.99 / (0.98 + 0.99);
        assert!((e.f1() - expect).abs() < 1e-12);
    }
}
