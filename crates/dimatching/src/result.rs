//! Query outcomes: rankings plus the costs incurred producing them.

use std::time::Duration;

use dipm_distsim::CostReport;
use dipm_mobilenet::UserId;

use crate::datacenter::{BuildStats, RankedUser};

/// Which retrieval method produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Ship everything to the center, match there (Approach 1).
    Naive,
    /// DI-matching with a plain Bloom filter.
    Bloom,
    /// DI-matching with the weighted Bloom filter.
    Wbf,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Naive => "naive",
            Method::Bloom => "bf",
            Method::Wbf => "wbf",
        })
    }
}

/// Method-specific detail attached to an outcome.
#[derive(Debug, Clone)]
pub enum MethodDetails {
    /// WBF: the exact aggregated weights and filter build statistics.
    Wbf {
        /// Per-user aggregated weights in rank order.
        weights: Vec<RankedUser>,
        /// Filter construction statistics.
        build: BuildStats,
    },
    /// Bloom baseline: per-user count of reporting stations.
    Bloom {
        /// `(user, reporting-station count)` in rank order.
        station_counts: Vec<(UserId, u32)>,
        /// Filter construction statistics.
        build: BuildStats,
    },
    /// Naive baseline: per-user best Chebyshev distance to any query global.
    Naive {
        /// `(user, distance)` in rank order.
        distances: Vec<(UserId, u64)>,
    },
}

/// The result of running one method over one dataset and query set.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Which method ran.
    pub method: Method,
    /// Retrieved users in rank order (already truncated to top-K if asked).
    pub ranked: Vec<UserId>,
    /// Method-specific ranking detail.
    pub details: MethodDetails,
    /// Metered communication/storage/operation costs.
    pub cost: CostReport,
    /// Wall-clock time of the full run.
    pub elapsed: Duration,
}

impl QueryOutcome {
    /// The retrieved users as an iterator (rank order).
    pub fn retrieved(&self) -> impl Iterator<Item = UserId> + '_ {
        self.ranked.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_display() {
        assert_eq!(Method::Naive.to_string(), "naive");
        assert_eq!(Method::Bloom.to_string(), "bf");
        assert_eq!(Method::Wbf.to_string(), "wbf");
    }
}
