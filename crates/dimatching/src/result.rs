//! Query outcomes: rankings plus the costs incurred producing them.

use std::collections::BTreeMap;
use std::time::Duration;

use dipm_distsim::{CostReport, LatencyReport};
use dipm_mobilenet::UserId;

use crate::datacenter::{BuildStats, RankedUser};

/// Which retrieval method produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Ship everything to the center, match there (Approach 1).
    Naive,
    /// DI-matching with a plain Bloom filter.
    Bloom,
    /// DI-matching with the weighted Bloom filter.
    Wbf,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Method::Naive => "naive",
            Method::Bloom => "bf",
            Method::Wbf => "wbf",
        })
    }
}

/// Method-specific detail attached to an outcome.
#[derive(Debug, Clone)]
pub enum MethodDetails {
    /// WBF: the exact aggregated weights and filter build statistics.
    Wbf {
        /// Per-user aggregated weights in rank order.
        weights: Vec<RankedUser>,
        /// Filter construction statistics.
        build: BuildStats,
    },
    /// Bloom baseline: per-user count of reporting stations.
    Bloom {
        /// `(user, reporting-station count)` in rank order.
        station_counts: Vec<(UserId, u32)>,
        /// Filter construction statistics.
        build: BuildStats,
    },
    /// Naive baseline: per-user best Chebyshev distance to any query global.
    Naive {
        /// `(user, distance)` in rank order.
        distances: Vec<(UserId, u64)>,
    },
}

/// The result of running one method over one dataset and query set.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Which method ran.
    pub method: Method,
    /// Retrieved users in rank order (already truncated to top-K if asked).
    pub ranked: Vec<UserId>,
    /// Method-specific ranking detail.
    pub details: MethodDetails,
    /// Metered communication/storage/operation costs.
    pub cost: CostReport,
    /// Wall-clock time of the full run.
    pub elapsed: Duration,
}

impl QueryOutcome {
    /// The retrieved users as an iterator (rank order).
    pub fn retrieved(&self) -> impl Iterator<Item = UserId> + '_ {
        self.ranked.iter().copied()
    }
}

/// One query's answer within a batch run.
#[derive(Debug, Clone)]
pub struct QueryVerdict {
    /// Retrieved users in rank order (truncated to top-K if asked).
    pub ranked: Vec<UserId>,
    /// Method-specific ranking detail for this query.
    pub details: MethodDetails,
}

impl QueryVerdict {
    /// The retrieved users as an iterator (rank order).
    pub fn retrieved(&self) -> impl Iterator<Item = UserId> + '_ {
        self.ranked.iter().copied()
    }
}

/// The result of one batch pipeline run: per-query rankings plus the costs
/// of the *shared* run — one filter broadcast, one scan pass per station,
/// one report per station, however many queries the batch carries.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Which method ran.
    pub method: Method,
    /// One verdict per submitted query, in submission order.
    pub queries: Vec<QueryVerdict>,
    /// Metered communication/storage/operation costs of the whole batch.
    pub cost: CostReport,
    /// The latency dimension — modeled per-station critical paths and the
    /// run's makespan on the virtual clock. `Some` only under
    /// `ExecutionMode::Async`; synchronous modes do not model time.
    pub latency: Option<LatencyReport>,
    /// Wall-clock time of the full batch run.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Collapses the per-query verdicts into one merged [`QueryOutcome`] —
    /// the campaign view ("everyone matching *any* of the batch") and the
    /// contract of the legacy single-outcome entry points.
    ///
    /// Per user, the best score across queries wins: highest weight sum for
    /// WBF (ties by most reports), highest station count for Bloom, smallest
    /// distance for naive. A single-verdict batch merges to itself,
    /// truncated to `top_k` like any other merge.
    pub fn into_merged(self, top_k: Option<usize>) -> QueryOutcome {
        let method = self.method;
        let (ranked, details) = if self.queries.len() == 1 {
            let mut verdict = self.queries.into_iter().next().expect("one verdict");
            truncate_verdict(&mut verdict, top_k);
            (verdict.ranked, verdict.details)
        } else {
            merge_verdicts(method, self.queries, top_k)
        };
        QueryOutcome {
            method,
            ranked,
            details,
            cost: self.cost,
            elapsed: self.elapsed,
        }
    }
}

/// Applies a top-K cut to one verdict's ranking and its detail lists (they
/// mirror each other entry for entry).
fn truncate_verdict(verdict: &mut QueryVerdict, top_k: Option<usize>) {
    let Some(k) = top_k else { return };
    verdict.ranked.truncate(k);
    match &mut verdict.details {
        MethodDetails::Wbf { weights, .. } => weights.truncate(k),
        MethodDetails::Bloom { station_counts, .. } => station_counts.truncate(k),
        MethodDetails::Naive { distances } => distances.truncate(k),
    }
}

fn merge_verdicts(
    method: Method,
    verdicts: Vec<QueryVerdict>,
    top_k: Option<usize>,
) -> (Vec<UserId>, MethodDetails) {
    match method {
        Method::Wbf => {
            let mut best: BTreeMap<UserId, RankedUser> = BTreeMap::new();
            let mut build = BuildStats::default();
            for verdict in verdicts {
                let MethodDetails::Wbf { weights, build: b } = verdict.details else {
                    unreachable!("wbf batch carries wbf details");
                };
                build = build.merged_with(b);
                for entry in weights {
                    best.entry(entry.user)
                        .and_modify(|cur| {
                            if (entry.weight_sum, entry.reports) > (cur.weight_sum, cur.reports) {
                                *cur = entry;
                            }
                        })
                        .or_insert(entry);
                }
            }
            let mut weights: Vec<RankedUser> = best.into_values().collect();
            weights.sort_unstable_by(|a, b| {
                b.weight_sum
                    .cmp(&a.weight_sum)
                    .then_with(|| b.reports.cmp(&a.reports))
                    .then_with(|| a.user.cmp(&b.user))
            });
            if let Some(k) = top_k {
                weights.truncate(k);
            }
            let ranked = weights.iter().map(|r| r.user).collect();
            (ranked, MethodDetails::Wbf { weights, build })
        }
        Method::Bloom => {
            let mut best: BTreeMap<UserId, u32> = BTreeMap::new();
            let mut build = BuildStats::default();
            for verdict in verdicts {
                let MethodDetails::Bloom {
                    station_counts,
                    build: b,
                } = verdict.details
                else {
                    unreachable!("bloom batch carries bloom details");
                };
                build = build.merged_with(b);
                for (user, count) in station_counts {
                    best.entry(user)
                        .and_modify(|cur| *cur = (*cur).max(count))
                        .or_insert(count);
                }
            }
            let mut station_counts: Vec<(UserId, u32)> = best.into_iter().collect();
            station_counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            if let Some(k) = top_k {
                station_counts.truncate(k);
            }
            let ranked = station_counts.iter().map(|&(u, _)| u).collect();
            (
                ranked,
                MethodDetails::Bloom {
                    station_counts,
                    build,
                },
            )
        }
        Method::Naive => {
            let mut best: BTreeMap<UserId, u64> = BTreeMap::new();
            for verdict in verdicts {
                let MethodDetails::Naive { distances } = verdict.details else {
                    unreachable!("naive batch carries naive details");
                };
                for (user, distance) in distances {
                    best.entry(user)
                        .and_modify(|cur| *cur = (*cur).min(distance))
                        .or_insert(distance);
                }
            }
            let mut distances: Vec<(UserId, u64)> = best.into_iter().collect();
            distances.sort_unstable_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            if let Some(k) = top_k {
                distances.truncate(k);
            }
            let ranked = distances.iter().map(|&(u, _)| u).collect();
            (ranked, MethodDetails::Naive { distances })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_display() {
        assert_eq!(Method::Naive.to_string(), "naive");
        assert_eq!(Method::Bloom.to_string(), "bf");
        assert_eq!(Method::Wbf.to_string(), "wbf");
    }

    #[test]
    fn single_verdict_merge_still_applies_top_k() {
        // The fast path must truncate exactly like the multi-verdict merge:
        // a post-hoc `into_merged(Some(k))` cannot depend on batch size.
        let distances: Vec<(UserId, u64)> = (0..5).map(|i| (UserId(i), i)).collect();
        let batch = BatchOutcome {
            method: Method::Naive,
            queries: vec![QueryVerdict {
                ranked: distances.iter().map(|&(u, _)| u).collect(),
                details: MethodDetails::Naive { distances },
            }],
            cost: CostReport::default(),
            latency: None,
            elapsed: Duration::ZERO,
        };
        let merged = batch.into_merged(Some(2));
        assert_eq!(merged.ranked, vec![UserId(0), UserId(1)]);
        let MethodDetails::Naive { distances } = merged.details else {
            panic!("wrong detail variant");
        };
        assert_eq!(distances.len(), 2, "details must be cut with the ranking");
    }

    #[test]
    fn merge_sorts_break_every_tie_deterministically() {
        // All three merge sorts are unstable, so each comparator must reach
        // the user-id tie-breaker: tied users come out ascending and the
        // result is invariant under verdict order.
        use dipm_core::Weight;

        let wbf_users = |users: &[u64], num: u64, den: u64| -> QueryVerdict {
            let weights: Vec<RankedUser> = users
                .iter()
                .map(|&u| RankedUser {
                    user: UserId(u),
                    weight_sum: Weight::new(num, den).unwrap(),
                    reports: 2,
                })
                .collect();
            QueryVerdict {
                ranked: weights.iter().map(|r| r.user).collect(),
                details: MethodDetails::Wbf {
                    weights,
                    build: BuildStats::default(),
                },
            }
        };
        let (ranked, _) = merge_verdicts(
            Method::Wbf,
            vec![wbf_users(&[9, 4], 1, 2), wbf_users(&[7, 2], 1, 2)],
            None,
        );
        assert_eq!(ranked, vec![UserId(2), UserId(4), UserId(7), UserId(9)]);

        let bloom = |counts: Vec<(u64, u32)>| -> QueryVerdict {
            let station_counts: Vec<(UserId, u32)> =
                counts.into_iter().map(|(u, c)| (UserId(u), c)).collect();
            QueryVerdict {
                ranked: station_counts.iter().map(|&(u, _)| u).collect(),
                details: MethodDetails::Bloom {
                    station_counts,
                    build: BuildStats::default(),
                },
            }
        };
        let (ranked, _) = merge_verdicts(
            Method::Bloom,
            vec![bloom(vec![(8, 3), (1, 3)]), bloom(vec![(5, 3), (2, 9)])],
            None,
        );
        assert_eq!(
            ranked,
            vec![UserId(2), UserId(1), UserId(5), UserId(8)],
            "count 9 first, then the three-way count tie in user order"
        );

        let naive = |distances: Vec<(u64, u64)>| -> QueryVerdict {
            let distances: Vec<(UserId, u64)> =
                distances.into_iter().map(|(u, d)| (UserId(u), d)).collect();
            QueryVerdict {
                ranked: distances.iter().map(|&(u, _)| u).collect(),
                details: MethodDetails::Naive { distances },
            }
        };
        let (ranked, _) = merge_verdicts(
            Method::Naive,
            vec![naive(vec![(6, 4), (3, 4)]), naive(vec![(10, 4), (0, 1)])],
            None,
        );
        assert_eq!(ranked, vec![UserId(0), UserId(3), UserId(6), UserId(10)]);
    }
}
